"""RR-SIM: RR-set generation for SelfInfMax (paper Algorithm 2, §6.2.1).

Valid regime (Theorem 7): one-way complementarity — B complements A
(``q_{A|∅} <= q_{A|B}``) while A is indifferent to B
(``q_{B|∅} = q_{B|A}``), so B's diffusion is independent of A-seeds
(Lemma 3) and can be resolved *before* reasoning about A.

Three phases over one lazily-sampled world:

* **Phase I** (implicit) — world variables materialise on demand through a
  shared :class:`~repro.models.sources.WorldSource`.
* **Phase II** — forward labeling from the fixed B-seed set: a node is
  B-adopted iff it is a B-seed or reachable from one via live edges through
  nodes with ``alpha_B < q_{B|∅}``.
* **Phase III** — backward BFS from the root: a dequeued node joins the
  RR-set; its in-neighbours are explored only if the node could itself
  adopt A upon being informed (``alpha_A < q_{A|B}`` if B-adopted, else
  ``alpha_A < q_{A|∅}``) — otherwise it could only be A-adopted as a seed.

Batched fast path
-----------------

:meth:`RRSimGenerator.generate_batch` processes a chunk of independent
worlds at once, replacing the per-edge memoised :class:`WorldSource` calls
with bulk vectorized draws: Phase II labels the B-adopted sets of *all*
chunk worlds with one level-synchronous forward sweep (memoising each
node's ``alpha_B`` outcome in a bit-flag state array), and Phase III runs
the backward searches of all roots with one level-synchronous reverse
sweep.  Edge coins flipped during Phase II are recorded in a sorted
(world, edge) key array which Phase III consults before flipping fresh
coins, so an edge keeps a single coin across phases exactly as the
memoised oracle does.  Coins and thresholds materialise only for the
edges and nodes the sweeps touch, so batch cost tracks total RR-set size
rather than ``n + m``.  Output distribution is identical to
:meth:`generate`; ``tests/rrset/test_batch_equivalence.py`` verifies
fixed-world equality and aggregate frequencies.  The per-root path remains
the correctness oracle (and the fallback for regimes without a kernel).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

import numpy as np

from repro.errors import RegimeError
from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.models.possible_world import PossibleWorld
from repro.models.sources import ITEM_A, ITEM_B, WorldSource
from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator
from repro.rrset.pool import (
    RRSetPool,
    expand_csr,
    flatten_members,
    touches_from_keys,
    unique_keys,
)
from repro.rrset.sweep import make_flags, make_values

#: Bit flags of the batched Phase-II state matrix: the memoised
#: ``alpha_B < q_B`` outcome (pass/fail) and final B-adoption.
_B_PASS = np.int8(1)
_B_FAIL = np.int8(2)
_B_ADOPTED = np.int8(4)

#: Target size of one chunk's Phase-II edge-coin record (entries; int64
#: key + bool value each) — bounds batch memory on dense B-regions.
_COIN_BUDGET = 16 << 20


def check_rr_sim_regime(gaps: GAP) -> None:
    """Raise :class:`RegimeError` unless Theorem 7's conditions hold."""
    if not gaps.is_one_way_complementarity_for_a:
        raise RegimeError(
            "RR-SIM requires one-way complementarity: q_{A|∅} <= q_{A|B} and "
            f"q_{{B|∅}} = q_{{B|A}}; got {gaps}"
        )


def forward_label_b_adopted(
    graph: DiGraph,
    world: WorldSource,
    q_b: float,
    seeds_b: Iterable[int],
) -> set[int]:
    """Phase-II forward labeling: the B-adopted set in this world.

    Seeds adopt unconditionally; other nodes need a live-edge path of
    B-adopted nodes and ``alpha_B < q_{B|∅}``.
    """
    b_adopted: set[int] = set()
    queue: deque[int] = deque()
    for s in seeds_b:
        s = int(s)
        if s not in b_adopted:
            b_adopted.add(s)
            queue.append(s)
    while queue:
        u = queue.popleft()
        targets, probs, eids = graph.out_edges(u)
        for idx in range(targets.size):
            v = int(targets[idx])
            if v in b_adopted:
                continue
            if not world.edge_live(int(eids[idx]), float(probs[idx])):
                continue
            if world.alpha(v, ITEM_B) < q_b:
                b_adopted.add(v)
                queue.append(v)
    return b_adopted


def backward_search_a(
    graph: DiGraph,
    world: WorldSource,
    gaps: GAP,
    root: int,
    b_adopted: set[int],
) -> np.ndarray:
    """Phase-III backward BFS producing the RR-set of ``root``."""
    rr_set: list[int] = []
    visited = {root}
    queue: deque[int] = deque([root])
    while queue:
        u = queue.popleft()
        rr_set.append(u)
        threshold = gaps.q_a_given_b if u in b_adopted else gaps.q_a
        if world.alpha(u, ITEM_A) >= threshold:
            # u can only be A-adopted as a seed; don't explore beyond it.
            continue
        sources, probs, eids = graph.in_edges(u)
        for idx in range(sources.size):
            w = int(sources[idx])
            if w in visited:
                continue
            if world.edge_live(int(eids[idx]), float(probs[idx])):
                visited.add(w)
                queue.append(w)
    return np.asarray(rr_set, dtype=np.int64)


class RRSimGenerator(RRSetGenerator):
    """Random RR-set sampler for SelfInfMax (Algorithm 2)."""

    # Phase II flips coins far from the member set (B-region out-edges),
    # so repair needs the explicit per-member edge-touch record.
    touch_mode = "recorded"

    def __init__(self, graph: DiGraph, gaps: GAP, seeds_b: Iterable[int]) -> None:
        super().__init__(graph)
        check_rr_sim_regime(gaps)
        self._gaps = gaps
        self._seeds_b = [int(s) for s in seeds_b]
        for s in self._seeds_b:
            if not 0 <= s < graph.num_nodes:
                raise RegimeError(f"B-seed {s} out of range")

    @property
    def gaps(self) -> GAP:
        """The GAP configuration (one-way complementarity)."""
        return self._gaps

    @property
    def seeds_b(self) -> list[int]:
        """The fixed B-seed set."""
        return list(self._seeds_b)

    def generate(
        self, *, rng: SeedLike = None, root: Optional[int] = None, world=None
    ) -> np.ndarray:
        """``world`` injects a fixed possible world (tests/ablations)."""
        gen = make_rng(rng)
        if root is None:
            root = int(gen.integers(0, self._graph.num_nodes))
        if world is None:
            world = WorldSource(gen)
        b_adopted = forward_label_b_adopted(
            self._graph, world, self._gaps.q_b, self._seeds_b
        )
        return backward_search_a(self._graph, world, self._gaps, root, b_adopted)

    def _phase2_batch(
        self,
        b: int,
        gen: np.random.Generator,
        world: Optional[PossibleWorld],
        backend: str,
    ) -> tuple[object, np.ndarray, np.ndarray]:
        """Phase II for a whole chunk of ``b`` independent worlds.

        Returns ``(state, coin_keys, coin_vals)``.  ``state`` is one int8
        bit-flag sweep state over ``world * n + node`` keys (dense flat
        array or sparse touched-key map per ``backend``) — :data:`_B_PASS`
        / :data:`_B_FAIL` memoise each node's lazily-drawn ``alpha_B <
        q_B`` outcome, :data:`_B_ADOPTED` marks final B-adoption — packed
        together so every sweep level costs one gather and one scatter.  The sorted ``coin_keys``/``coin_vals``
        record every edge coin this phase flipped (key ``world_id * m +
        edge_id``) so Phase III can reuse them — the batched realisation
        of the oracle's memoised ``WorldSource.edge_live``.
        """
        graph = self._graph
        n, m = graph.num_nodes, graph.num_edges
        q_b = self._gaps.q_b
        out_indptr, out_dst, out_prob, out_eid = graph.csr_out()
        # Flat (world, node) -> world * n + node keys over a 1D state:
        # 1D gathers/scatters are markedly faster than 2D.
        state = make_values(b, n, np.int8, backend)
        empty_keys = np.empty(0, dtype=np.int64)
        empty_vals = np.empty(0, dtype=bool)
        # Dedupe like the oracle's frontier guard: a B-seed listed twice
        # must not expand (and flip coins for) its out-edges twice.
        seeds = np.unique(np.asarray(self._seeds_b, dtype=np.int64))
        if seeds.size == 0:
            return state, empty_keys, empty_vals
        frontier_world = np.repeat(np.arange(b, dtype=np.int64), seeds.size)
        frontier_node = np.tile(seeds, b)
        state.put(frontier_world * n + frontier_node, _B_ADOPTED)
        coin_keys: list[np.ndarray] = []
        coin_vals: list[np.ndarray] = []
        while frontier_node.size:
            reps, flat = expand_csr(out_indptr, frontier_node)
            if flat.size == 0:
                break
            if world is None:
                live = gen.random(flat.size) < out_prob[flat]
                coin_keys.append(frontier_world[reps] * m + out_eid[flat])
                coin_vals.append(live)
            else:
                live = world.live[out_eid[flat]]
            key = frontier_world[reps[live]] * n + out_dst[flat[live]]
            if key.size == 0:
                break
            key = unique_keys(key)
            st = state.get(key)
            idle = (st & _B_ADOPTED) == 0
            key, st = key[idle], st[idle]
            if key.size == 0:
                break
            if world is None:
                unknown = (st & (_B_PASS | _B_FAIL)) == 0
                if unknown.any():
                    passes = gen.random(int(unknown.sum())) < q_b
                    st[unknown] |= np.where(passes, _B_PASS, _B_FAIL)
                adopt = (st & _B_PASS) != 0
                state.put(key, st | np.where(adopt, _B_ADOPTED, 0))
            else:
                adopt = world.alpha_b[key % n] < q_b
                state.put(key[adopt], _B_ADOPTED)
            frontier_world, frontier_node = np.divmod(key[adopt], n)
        if not coin_keys:
            return state, empty_keys, empty_vals
        keys = np.concatenate(coin_keys)
        vals = np.concatenate(coin_vals)
        order = np.argsort(keys, kind="stable")
        return state, keys[order], vals[order]

    def generate_batch(
        self,
        count: int,
        *,
        rng: SeedLike = None,
        roots: Optional[np.ndarray] = None,
        out: Optional[RRSetPool] = None,
        world: Optional[PossibleWorld] = None,
    ) -> RRSetPool:
        """Vectorized batch sampling (see module docstring).

        ``world`` pins one eagerly-sampled possible world shared by every
        set in the batch (fixed-world equivalence tests); by default each
        set samples its own independent world lazily — coins and
        thresholds materialise only for the edges and nodes the sweeps
        actually touch, exactly like the oracle's :class:`WorldSource`,
        so batch cost tracks total RR-set size rather than ``n + m``.
        """
        gen = make_rng(rng)
        graph = self._graph
        n, m = graph.num_nodes, graph.num_edges
        gaps = self._gaps
        pool = out if out is not None else RRSetPool(n)
        if roots is None:
            roots = self.random_roots(count, rng=gen)
        else:
            roots = np.asarray(roots, dtype=np.int64)
        if roots.size == 0:
            return pool
        track = pool.track_touches and world is None
        in_indptr, in_src, in_prob, in_eid = graph.csr_in()
        # The sweep engine budgets the chunk's state (int8 B-state plus
        # bool visited per (world, node) dense).  Phase II's per-level
        # sweep overhead is paid once per chunk, so RR-SIM wants the
        # largest chunk memory affords — but the Phase-II coin record
        # grows with the B-region's out-degree per world, which is only
        # known after sampling.  Start with a modest probe chunk and
        # re-size from the observed coins-per-world so the record stays
        # around _COIN_BUDGET entries per chunk.
        backend = self.sweep.resolve_backend(n)
        max_chunk = self.sweep.chunk_size(
            n, backend, state_bytes_per_node=2, max_members=8192
        )
        chunk = min(max_chunk, 256)
        start = 0
        while start < roots.size:
            chunk_roots = roots[start : start + chunk]
            b = chunk_roots.size
            start += b
            b_state, coin_keys, coin_vals = self._phase2_batch(
                b, gen, world, backend
            )
            coins_per_world = max(coin_keys.size / b, 1.0)
            chunk = int(np.clip(_COIN_BUDGET / coins_per_world, 1, max_chunk))
            # Phase III: a dequeued node always joins its RR-set; the sweep
            # expands past it only where alpha_A clears the NLA threshold
            # (each node is dequeued at most once per world, so a fresh
            # draw realises the memoised alpha_A exactly).
            visited = make_flags(b, n, backend)
            ids = np.arange(b, dtype=np.int64)
            visited.mark(ids * n + chunk_roots)
            member_ids = [ids]
            member_nodes = [chunk_roots]
            touch_frags: list[np.ndarray] = [coin_keys]
            frontier_set, frontier_node = ids, chunk_roots
            while frontier_node.size:
                b_adopted = (
                    b_state.get(frontier_set * n + frontier_node) & _B_ADOPTED
                ) != 0
                threshold = np.where(b_adopted, gaps.q_a_given_b, gaps.q_a)
                if world is None:
                    grow = gen.random(frontier_node.size) < threshold
                else:
                    grow = world.alpha_a[frontier_node] < threshold
                grow_set, grow_node = frontier_set[grow], frontier_node[grow]
                if grow_node.size == 0:
                    break
                reps, flat = expand_csr(in_indptr, grow_node)
                if flat.size == 0:
                    break
                if world is None:
                    live = gen.random(flat.size) < in_prob[flat]
                    if coin_keys.size or track:
                        ekey = grow_set[reps] * m + in_eid[flat]
                        if coin_keys.size:
                            # Reuse any coin Phase II already flipped for
                            # the same (world, edge) pair.
                            pos = np.searchsorted(coin_keys, ekey)
                            pos_clipped = np.minimum(pos, coin_keys.size - 1)
                            seen = coin_keys[pos_clipped] == ekey
                            live[seen] = coin_vals[pos_clipped[seen]]
                        if track:
                            touch_frags.append(ekey)
                else:
                    live = world.live[in_eid[flat]]
                key = visited.mark_new(
                    grow_set[reps[live]] * n + in_src[flat[live]]
                )
                if key.size == 0:
                    break
                frontier_set, frontier_node = np.divmod(key, n)
                member_ids.append(frontier_set)
                member_nodes.append(frontier_node)
            nodes, lengths = flatten_members(member_nodes, member_ids, b)
            touch_edges = touch_lengths = None
            if track:
                touch_edges, touch_lengths = touches_from_keys(
                    unique_keys(np.concatenate(touch_frags)), m, b
                )
            pool.append_flat(
                nodes,
                lengths,
                roots=chunk_roots,
                touch_edges=touch_edges,
                touch_lengths=touch_lengths,
            )
        return pool
