"""Batched fast paths vs. the per-root oracle.

Three layers of evidence that ``generate_batch`` samples the same RR-set
distribution as ``generate``:

* **Fixed-world equality** — with one pinned possible world, batch and
  oracle must return *identical* sets for every root (no randomness left).
* **Deterministic regimes** — probability-0/1 edges and GAP values in
  {0, 1} make the RR-set a deterministic function of the root.
* **Aggregate frequencies** — on random graphs, per-node inclusion
  frequencies and mean set sizes of the two paths must agree within
  binomial tolerance (fixed seeds; deterministic test).

Plus: the pooled greedy must match the legacy list implementation
exactly, including the ``gain == 0`` branch that must never repeat a
seed.
"""

import numpy as np
import pytest

from repro.graph import DiGraph, path_digraph, star_digraph
from repro.graph.generators import power_law_digraph
from repro.models import GAP
from repro.models.lt import normalize_lt_weights
from repro.models.possible_world import (
    FrozenWorldSource,
    PossibleWorld,
    sample_possible_world,
)
from repro.rng import make_rng
from repro.rrset import (
    RRCimGenerator,
    RRICGenerator,
    RRLTGenerator,
    RRSetPool,
    RRSimGenerator,
    RRSimPlusGenerator,
    greedy_max_coverage,
    greedy_max_coverage_legacy,
)
from repro.rrset.rr_cim import forward_label_a_status

GAPS_ONE_WAY = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
GAPS_CIM = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=1.0)


def pinned_world(graph, alpha_a, alpha_b, live=None):
    """An all-live possible world with the given thresholds (RR-CIM case
    gadgets pin each node's label through its alpha values)."""
    n, m = graph.num_nodes, graph.num_edges
    return PossibleWorld(
        live=np.ones(m, dtype=bool) if live is None else np.asarray(live),
        priority=np.linspace(0.05, 0.95, max(m, 1))[:m],
        alpha_a=np.asarray(alpha_a, dtype=float),
        alpha_b=np.asarray(alpha_b, dtype=float),
        tau_a_first=np.ones(n, dtype=bool),
    )


@pytest.fixture(scope="module")
def random_graph() -> DiGraph:
    return power_law_digraph(120, average_degree=4.0, probability=0.4, rng=5)


def _as_sorted_sets(pool_or_list):
    return [sorted(np.asarray(rr).tolist()) for rr in pool_or_list]


class TestFixedWorldEquality:
    def test_rr_ic_matches_oracle(self, random_graph):
        world = sample_possible_world(random_graph, rng=3)
        generator = RRICGenerator(random_graph)
        roots = np.arange(random_graph.num_nodes)
        pool = generator.generate_batch(0, roots=roots, world=world, rng=0)
        oracle = [
            generator.generate(rng=0, root=int(r), world=FrozenWorldSource(world))
            for r in roots
        ]
        assert _as_sorted_sets(pool) == _as_sorted_sets(oracle)

    def test_rr_sim_matches_oracle(self, random_graph):
        world = sample_possible_world(random_graph, rng=9)
        generator = RRSimGenerator(random_graph, GAPS_ONE_WAY, [0, 3, 7])
        roots = np.arange(random_graph.num_nodes)
        pool = generator.generate_batch(0, roots=roots, world=world, rng=0)
        oracle = [
            generator.generate(rng=0, root=int(r), world=FrozenWorldSource(world))
            for r in roots
        ]
        assert _as_sorted_sets(pool) == _as_sorted_sets(oracle)

    @pytest.mark.parametrize("world_seed", [3, 9, 21])
    def test_rr_cim_matches_oracle(self, random_graph, world_seed):
        world = sample_possible_world(random_graph, rng=world_seed)
        generator = RRCimGenerator(random_graph, GAPS_CIM, [0, 3, 7])
        roots = np.arange(random_graph.num_nodes)
        pool = generator.generate_batch(0, roots=roots, world=world, rng=0)
        frozen = FrozenWorldSource(world)
        labels = forward_label_a_status(random_graph, frozen, GAPS_CIM, [0, 3, 7])
        oracle = [
            generator.generate(rng=0, root=int(r), world=frozen, labels=labels)
            for r in roots
        ]
        assert _as_sorted_sets(pool) == _as_sorted_sets(oracle)

    def test_rr_sim_plus_matches_oracle(self, random_graph):
        world = sample_possible_world(random_graph, rng=13)
        generator = RRSimPlusGenerator(random_graph, GAPS_ONE_WAY, [0, 3, 7])
        roots = np.arange(random_graph.num_nodes)
        pool = generator.generate_batch(0, roots=roots, world=world, rng=0)
        oracle = [
            generator.generate(rng=0, root=int(r), world=FrozenWorldSource(world))
            for r in roots
        ]
        assert _as_sorted_sets(pool) == _as_sorted_sets(oracle)

    def test_rr_cim_precomputed_labels_match_fresh(self, random_graph):
        # The labels= fast lane must be a pure cache: identical output to
        # recomputing the forward pass inside every call.
        world = sample_possible_world(random_graph, rng=4)
        generator = RRCimGenerator(random_graph, GAPS_CIM, [0, 3, 7])
        frozen = FrozenWorldSource(world)
        labels = forward_label_a_status(random_graph, frozen, GAPS_CIM, [0, 3, 7])
        for root in range(0, random_graph.num_nodes, 7):
            with_cache = generator.generate(
                rng=0, root=root, world=frozen, labels=labels
            )
            without = generator.generate(rng=0, root=root, world=frozen)
            assert sorted(with_cache.tolist()) == sorted(without.tolist())


class TestRRCimCaseGadgets:
    """Batch equality on the deterministic worlds that isolate each case
    of Algorithm 4 (mirrors the oracle gadgets in test_rr_generators)."""

    def _batch_vs_oracle(self, graph, world, seeds_a, roots):
        generator = RRCimGenerator(graph, GAPS_CIM, seeds_a)
        pool = generator.generate_batch(
            0, roots=np.asarray(roots, dtype=np.int64), world=world, rng=0
        )
        frozen = FrozenWorldSource(world)
        oracle = [
            generator.generate(rng=0, root=int(r), world=frozen) for r in roots
        ]
        assert _as_sorted_sets(pool) == _as_sorted_sets(oracle)
        return pool

    def test_case1_secondary_search_collects_b_feeders(self):
        # B feeder chain 3 -> 2 -> root 1; A chain 0 -> 1; root suspended
        # and AB-diffusible, so the secondary search must pull in 2, 3 and
        # the A-seed 0.
        graph = DiGraph.from_edges(4, [(0, 1, 1.0), (2, 1, 1.0), (3, 2, 1.0)])
        world = pinned_world(
            graph, alpha_a=[0.0, 0.5, 0.9, 0.9], alpha_b=[0.0, 0.2, 0.2, 0.9]
        )
        pool = self._batch_vs_oracle(graph, world, [0], range(4))
        assert sorted(pool[1].tolist()) == [0, 1, 2, 3]

    def test_case2_not_ab_diffusible_only_root(self):
        # Root suspended but not AB-diffusible: only a B-seed at the root
        # itself can unlock it.
        graph = DiGraph.from_edges(3, [(0, 1, 1.0), (2, 1, 1.0)])
        world = pinned_world(
            graph, alpha_a=[0.0, 0.5, 0.9], alpha_b=[0.0, 0.9, 0.2]
        )
        pool = self._batch_vs_oracle(graph, world, [0], range(3))
        assert pool[1].tolist() == [1]

    def test_case4_zigzag(self):
        # Figure-3-style gadget: a(0) -> u0(1); u0 <-> u(2); u -> v(3).
        # u is potential and not AB-diffusible, but seeding B at u unlocks
        # the suspended u0 which zig-zags A+B back through u to v.
        graph = DiGraph.from_edges(
            4, [(0, 1, 1.0), (1, 2, 1.0), (2, 1, 1.0), (2, 3, 1.0)]
        )
        world = pinned_world(
            graph, alpha_a=[0.0, 0.5, 0.5, 0.1], alpha_b=[0.0, 0.2, 0.9, 0.2]
        )
        pool = self._batch_vs_oracle(graph, world, [0], range(4))
        assert 2 in pool[3].tolist()

    def test_case4_zigzag_failure_is_excluded(self):
        # Same gadget but u0's alpha_B fails: u0 is no longer B-diffusible
        # from u, the zig-zag dies, and u must stay out of the RR-set.
        graph = DiGraph.from_edges(
            4, [(0, 1, 1.0), (1, 2, 1.0), (2, 1, 1.0), (2, 3, 1.0)]
        )
        world = pinned_world(
            graph, alpha_a=[0.0, 0.5, 0.5, 0.1], alpha_b=[0.0, 0.9, 0.9, 0.2]
        )
        pool = self._batch_vs_oracle(graph, world, [0], range(4))
        assert 2 not in pool[3].tolist()


class TestDeterministicRegimes:
    def test_rr_ic_deterministic_path(self):
        graph = path_digraph(6, probability=1.0)
        pool = RRICGenerator(graph).generate_batch(0, roots=np.arange(6), rng=0)
        for root in range(6):
            assert sorted(pool[root].tolist()) == list(range(root + 1))

    def test_rr_ic_dead_edges(self):
        graph = path_digraph(5, probability=0.0)
        pool = RRICGenerator(graph).generate_batch(0, roots=np.arange(5), rng=0)
        assert _as_sorted_sets(pool) == [[r] for r in range(5)]

    def test_rr_sim_full_adoption_equals_ancestors(self):
        # q values of 1 make every node expandable: the RR-set is the full
        # live-edge ancestor set, independent of B.
        graph = path_digraph(6, probability=1.0)
        gaps = GAP(q_a=1.0, q_a_given_b=1.0, q_b=1.0, q_b_given_a=1.0)
        generator = RRSimGenerator(graph, gaps, [0])
        pool = generator.generate_batch(0, roots=np.arange(6), rng=0)
        for root in range(6):
            assert sorted(pool[root].tolist()) == list(range(root + 1))

    def test_rr_sim_zero_adoption_is_root_only(self):
        graph = star_digraph(8, probability=1.0)
        gaps = GAP(q_a=0.0, q_a_given_b=0.0, q_b=1.0, q_b_given_a=1.0)
        generator = RRSimGenerator(graph, gaps, [0])
        roots = np.arange(8)
        pool = generator.generate_batch(0, roots=roots, rng=1)
        assert _as_sorted_sets(pool) == [[r] for r in range(8)]


class TestAggregateFrequencies:
    N_SAMPLES = 4000
    # Binomial noise on an inclusion frequency is ~sqrt(0.25 / N) per path;
    # 0.05 is ~4.5 sigma for the difference of two paths at N=4000.
    TOLERANCE = 0.05

    def _frequency_gap(self, generator, n):
        oracle_freq = np.zeros(n)
        for rr in generator.generate_many(self.N_SAMPLES, rng=11):
            oracle_freq[rr] += 1
        pool = generator.generate_batch(self.N_SAMPLES, rng=22)
        batch_freq = np.bincount(pool.nodes, minlength=n).astype(np.float64)
        return np.abs(oracle_freq - batch_freq).max() / self.N_SAMPLES

    def test_rr_ic_inclusion_frequencies(self, random_graph):
        gap = self._frequency_gap(RRICGenerator(random_graph), random_graph.num_nodes)
        assert gap < self.TOLERANCE

    def test_rr_sim_inclusion_frequencies(self, random_graph):
        generator = RRSimGenerator(random_graph, GAPS_ONE_WAY, [0, 3, 7])
        gap = self._frequency_gap(generator, random_graph.num_nodes)
        assert gap < self.TOLERANCE

    def test_rr_cim_inclusion_frequencies(self, random_graph):
        generator = RRCimGenerator(random_graph, GAPS_CIM, [0, 3, 7])
        gap = self._frequency_gap(generator, random_graph.num_nodes)
        assert gap < self.TOLERANCE

    def test_rr_sim_plus_inclusion_frequencies(self, random_graph):
        generator = RRSimPlusGenerator(random_graph, GAPS_ONE_WAY, [0, 3, 7])
        gap = self._frequency_gap(generator, random_graph.num_nodes)
        assert gap < self.TOLERANCE

    def test_rr_lt_inclusion_frequencies(self, random_graph):
        generator = RRLTGenerator(normalize_lt_weights(random_graph))
        gap = self._frequency_gap(generator, random_graph.num_nodes)
        assert gap < self.TOLERANCE

    def test_rr_lt_deterministic_path_walks_to_source(self):
        # Unit weights on a path: the triggering selection is certain, so
        # every batch RR-set must be the full ancestor chain.
        graph = path_digraph(6, probability=1.0)
        pool = RRLTGenerator(graph).generate_batch(0, roots=np.arange(6), rng=0)
        for root in range(6):
            assert sorted(pool[root].tolist()) == list(range(root + 1))

    def test_rr_sim_duplicate_b_seeds_not_double_expanded(self):
        # Regression: a duplicated B-seed must flip each out-edge coin once,
        # like the oracle's frontier dedupe — not once per occurrence.  On
        # edge 0 -> 1 with p = 0.5 and q_B = 1, P[1 is B-adopted] is one
        # liveness coin, 0.5; double expansion would give 1 - 0.25 = 0.75.
        # The always-live edge 2 -> 1 witnesses B-adoption independently of
        # that shared coin: |RR(1)| >= 2 iff node 1 was B-adopted (then its
        # threshold is q_a_given_b = 1 and node 2 always joins).
        graph = DiGraph.from_edges(3, [(0, 1, 0.5), (2, 1, 1.0)])
        gaps = GAP(q_a=0.0, q_a_given_b=1.0, q_b=1.0, q_b_given_a=1.0)
        generator = RRSimGenerator(graph, gaps, [0, 0])
        samples = 4000
        pool = generator.generate_batch(
            0, roots=np.full(samples, 1, dtype=np.int64), rng=13
        )
        fraction_b_adopted = (pool.lengths >= 2).mean()
        assert fraction_b_adopted == pytest.approx(0.5, abs=0.035)

    def test_batch_respects_out_pool_and_count(self, random_graph):
        generator = RRICGenerator(random_graph)
        pool = RRSetPool(random_graph.num_nodes)
        generator.generate_batch(10, rng=0, out=pool)
        generator.generate_batch(15, rng=1, out=pool)
        assert len(pool) == 25


class TestPooledGreedyParity:
    def _random_sets(self, rng, n=60, count=400):
        gen = make_rng(rng)
        return [
            np.unique(gen.integers(0, n, size=int(gen.integers(1, 9))))
            for _ in range(count)
        ]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_legacy_on_random_inputs(self, seed):
        sets = self._random_sets(seed)
        pooled = greedy_max_coverage(sets, 60, 12)
        legacy = greedy_max_coverage_legacy(sets, 60, 12)
        assert pooled == legacy

    def test_matches_legacy_from_pool_object(self):
        sets = self._random_sets(7)
        pool = RRSetPool.from_sets(60, sets)
        assert greedy_max_coverage(pool, 60, 5) == greedy_max_coverage_legacy(sets, 60, 5)

    def test_matches_legacy_on_generated_pool(self):
        graph = power_law_digraph(80, average_degree=4.0, probability=0.3, rng=2)
        pool = RRICGenerator(graph).generate_batch(800, rng=3)
        pooled = greedy_max_coverage(pool, 80, 8)
        legacy = greedy_max_coverage_legacy(pool.to_list(), 80, 8)
        assert pooled == legacy

    def test_k_exceeding_coverable_nodes_never_repeats(self):
        # Regression for the gain == 0 / counts[best] = -1 branch: only two
        # distinct nodes are coverable but k asks for five seeds.
        sets = [np.array([1]), np.array([1]), np.array([4])]
        seeds, covered, gains = greedy_max_coverage(sets, 6, 5)
        assert covered == 3
        assert len(seeds) == 5
        assert len(set(seeds)) == 5  # no node picked twice
        assert seeds[:2] == [1, 4]
        assert gains[2:] == [0, 0, 0]
        assert greedy_max_coverage_legacy(sets, 6, 5) == (seeds, covered, gains)

    def test_empty_pool(self):
        pool = RRSetPool(4)
        seeds, covered, gains = greedy_max_coverage(pool, 4, 2)
        assert covered == 0
        assert len(seeds) == 2
        assert len(set(seeds)) == 2
