"""Tests for seed-set comparison metrics and spread curves."""

import pytest

from repro.analysis import (
    rank_weighted_overlap,
    seed_jaccard,
    spread_curve,
)
from repro.errors import SeedSetError
from repro.graph import star_digraph
from repro.models import GAP


class TestSeedJaccard:
    def test_identical(self):
        assert seed_jaccard([1, 2, 3], [3, 2, 1]) == 1.0

    def test_disjoint(self):
        assert seed_jaccard([1, 2], [3, 4]) == 0.0

    def test_partial(self):
        assert seed_jaccard([1, 2], [2, 3]) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert seed_jaccard([], []) == 1.0

    def test_one_empty(self):
        assert seed_jaccard([1], []) == 0.0


class TestRankWeightedOverlap:
    def test_identical_rankings(self):
        assert rank_weighted_overlap([4, 2, 9], [4, 2, 9]) == 1.0

    def test_disjoint_rankings(self):
        assert rank_weighted_overlap([1, 2], [3, 4]) == 0.0

    def test_swap_costs_less_at_depth(self):
        # Same set, swapped order: depth-1 prefix misses, depth-2 matches.
        value = rank_weighted_overlap([1, 2], [2, 1])
        assert value == pytest.approx((0.0 + 1.0) / 2)

    def test_prefix_agreement_beats_suffix_agreement(self):
        early = rank_weighted_overlap([1, 2, 3], [1, 9, 8])
        late = rank_weighted_overlap([1, 2, 3], [8, 9, 3])
        assert early > late

    def test_duplicates_rejected(self):
        with pytest.raises(SeedSetError):
            rank_weighted_overlap([1, 1], [1, 2])

    def test_empty_lists(self):
        assert rank_weighted_overlap([], []) == 1.0
        assert rank_weighted_overlap([1], []) == 0.0


class TestSpreadCurve:
    @pytest.fixture(scope="class")
    def curve(self):
        graph = star_digraph(25, probability=1.0)
        gaps = GAP.classic_ic()
        # Hub first, then two leaves.
        return spread_curve(
            graph, gaps, [0, 1, 2], [], budgets=[1, 2, 3], runs=30, rng=1
        )

    def test_budgets_and_lengths(self, curve):
        assert curve.budgets == [1, 2, 3]
        assert len(curve.spreads) == len(curve.stderrs) == 3

    def test_deterministic_star_values(self, curve):
        # Hub alone reaches all 25; leaves add nothing new.
        assert curve.spreads[0] == pytest.approx(25.0)
        assert curve.spreads[2] == pytest.approx(25.0)

    def test_monotone(self, curve):
        assert curve.is_monotone(slack=1e-9)

    def test_as_rows(self, curve):
        rows = curve.as_rows()
        assert rows[0]["k"] == 1
        assert rows[0]["spread"] == pytest.approx(25.0)

    def test_duplicate_seeds_rejected(self):
        graph = star_digraph(5)
        with pytest.raises(SeedSetError):
            spread_curve(graph, GAP.classic_ic(), [0, 0], [], runs=5)

    def test_budget_out_of_range_rejected(self):
        graph = star_digraph(5)
        with pytest.raises(SeedSetError):
            spread_curve(
                graph, GAP.classic_ic(), [0, 1], [], budgets=[3], runs=5
            )
