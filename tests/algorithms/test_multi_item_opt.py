"""Tests for k-item seed selection and the extended MultiItemGaps helpers."""

import numpy as np
import pytest

from repro.errors import GapError, SeedSetError
from repro.graph import path_digraph, star_digraph
from repro.models import (
    GAP,
    MultiItemGaps,
    estimate_multi_item_spread,
)
from repro.algorithms import (
    greedy_multi_item_selfinfmax,
    round_robin_multi_item,
)


class TestAdditiveConstructor:
    def test_complementary_table(self):
        gaps = MultiItemGaps.additive(3, base=0.3, boost_per_item=0.2)
        assert gaps.q(0, frozenset()) == pytest.approx(0.3)
        assert gaps.q(0, frozenset({1})) == pytest.approx(0.5)
        assert gaps.q(0, frozenset({1, 2})) == pytest.approx(0.7)
        assert gaps.is_mutually_complementary
        assert not gaps.is_mutually_competitive

    def test_competitive_table(self):
        gaps = MultiItemGaps.additive(3, base=0.8, boost_per_item=-0.3)
        assert gaps.q(1, frozenset({0, 2})) == pytest.approx(0.2)
        assert gaps.is_mutually_competitive

    def test_clipping(self):
        gaps = MultiItemGaps.additive(4, base=0.9, boost_per_item=0.5)
        assert gaps.q(0, frozenset({1, 2, 3})) == 1.0
        gaps = MultiItemGaps.additive(4, base=0.2, boost_per_item=-0.5)
        assert gaps.q(0, frozenset({1, 2, 3})) == 0.0

    def test_uniform_is_both_monotone(self):
        gaps = MultiItemGaps.uniform(3, 0.5)
        assert gaps.is_mutually_complementary
        assert gaps.is_mutually_competitive  # constant tables satisfy both

    def test_pairwise_embedding_monotonicity_matches_gap(self):
        q_plus = GAP(q_a=0.2, q_a_given_b=0.8, q_b=0.3, q_b_given_a=0.9)
        multi = MultiItemGaps.from_pairwise_gap(q_plus)
        assert multi.is_mutually_complementary
        q_minus = GAP(q_a=0.8, q_a_given_b=0.2, q_b=0.9, q_b_given_a=0.3)
        assert MultiItemGaps.from_pairwise_gap(q_minus).is_mutually_competitive


class TestEstimateSpread:
    def test_deterministic_chain(self):
        graph = path_digraph(4, probability=1.0)
        gaps = MultiItemGaps.uniform(2, 1.0)
        spreads = estimate_multi_item_spread(graph, gaps, [[0], []], runs=20, rng=1)
        assert spreads[0] == pytest.approx(4.0)
        assert spreads[1] == pytest.approx(0.0)

    def test_complementarity_raises_spread(self):
        graph = star_digraph(30, probability=1.0)
        comp = MultiItemGaps.additive(2, base=0.2, boost_per_item=0.7)
        alone = estimate_multi_item_spread(graph, comp, [[0], []], runs=400, rng=2)
        helped = estimate_multi_item_spread(graph, comp, [[0], [0]], runs=400, rng=2)
        assert helped[0] > alone[0] * 1.5

    def test_three_items_all_tracked(self):
        graph = star_digraph(10, probability=1.0)
        gaps = MultiItemGaps.uniform(3, 0.5)
        spreads = estimate_multi_item_spread(
            graph, gaps, [[0], [0], [0]], runs=200, rng=3
        )
        assert spreads.shape == (3,)
        # Symmetric seeding: all items spread equally (within MC noise).
        assert np.ptp(spreads) < 1.5

    def test_runs_validated(self):
        graph = path_digraph(2)
        with pytest.raises(ValueError):
            estimate_multi_item_spread(
                graph, MultiItemGaps.uniform(2, 0.5), [[0], []], runs=0
            )


class TestGreedyFocalItem:
    def test_hub_found_on_star(self):
        graph = star_digraph(20, probability=1.0)
        gaps = MultiItemGaps.uniform(2, 0.8)
        seeds = greedy_multi_item_selfinfmax(
            graph, gaps, 0, [[], []], 1, runs=40, rng=4
        )
        assert seeds == [0]

    def test_item_and_seed_set_validation(self):
        graph = star_digraph(5)
        gaps = MultiItemGaps.uniform(2, 0.5)
        with pytest.raises(SeedSetError):
            greedy_multi_item_selfinfmax(graph, gaps, 2, [[], []], 1)
        with pytest.raises(SeedSetError):
            greedy_multi_item_selfinfmax(graph, gaps, 0, [[]], 1)
        with pytest.raises(SeedSetError):
            greedy_multi_item_selfinfmax(graph, gaps, 0, [[], []], -1)

    def test_candidates_respected(self):
        graph = star_digraph(8, probability=1.0)
        gaps = MultiItemGaps.uniform(2, 0.9)
        seeds = greedy_multi_item_selfinfmax(
            graph, gaps, 0, [[], []], 2, runs=20, rng=5, candidates=[3, 4, 5]
        )
        assert set(seeds) <= {3, 4, 5}

    def test_complementary_items_pull_seeds_together(self):
        """With strong complementarity and item 1 seeded at one hub of a
        two-hub graph, item 0's greedy seed should co-locate at that hub."""
        from repro.graph import DiGraph

        edges = [(0, v) for v in range(2, 12)] + [(1, v) for v in range(12, 22)]
        graph = DiGraph.from_edges(22, edges, default_probability=1.0)
        gaps = MultiItemGaps.additive(2, base=0.1, boost_per_item=0.9)
        seeds = greedy_multi_item_selfinfmax(
            graph, gaps, 0, [[], [0]], 1, runs=60, rng=6, candidates=[0, 1]
        )
        assert seeds == [0]


class TestRoundRobin:
    def test_budget_split_across_items(self):
        graph = star_digraph(15, probability=1.0)
        gaps = MultiItemGaps.uniform(2, 0.7)
        sets = round_robin_multi_item(
            graph, gaps, 4, runs=20, rng=7, candidates=[0, 1, 2, 3, 4]
        )
        assert len(sets) == 2
        assert len(sets[0]) == 2 and len(sets[1]) == 2
        # The hub is the first pick for both items.
        assert sets[0][0] == 0 and sets[1][0] == 0

    def test_zero_budget(self):
        graph = star_digraph(5)
        sets = round_robin_multi_item(
            graph, MultiItemGaps.uniform(3, 0.5), 0, runs=5, rng=8
        )
        assert sets == [[], [], []]

    def test_negative_budget_rejected(self):
        graph = star_digraph(5)
        with pytest.raises(SeedSetError):
            round_robin_multi_item(graph, MultiItemGaps.uniform(2, 0.5), -1)
