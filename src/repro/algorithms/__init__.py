"""Seed-selection algorithms: problem solvers and baselines (§6–§7).

* :func:`~repro.algorithms.selfinfmax.solve_selfinfmax` /
  :func:`~repro.algorithms.compinfmax.solve_compinfmax` — GeneralTIM over
  RR-SIM/RR-SIM+/RR-CIM, wrapped in Sandwich Approximation outside the
  provably-submodular GAP regimes;
* :mod:`~repro.algorithms.greedy` — CELF-accelerated Monte-Carlo greedy,
  the paper's "Greedy" comparison algorithm;
* :mod:`~repro.algorithms.baselines` — HighDegree, PageRank, Random,
  Copying and VanillaIC from §7;
* :mod:`~repro.algorithms.heuristics` — DegreeDiscount / SingleDiscount
  (Chen et al. [9]), the near-linear heuristics of the paper's baselines'
  lineage.
"""

from repro.algorithms.baselines import (
    copying_seeds,
    high_degree_seeds,
    pagerank_scores,
    pagerank_seeds,
    random_seeds,
    vanilla_ic_seeds,
)
from repro.algorithms.blocking import estimate_suppression, greedy_blocking
from repro.algorithms.compinfmax import CompInfMaxResult, solve_compinfmax, theorem2_optimal_b_seeds
from repro.algorithms.greedy import (
    celf_greedy,
    celf_plus_plus_greedy,
    greedy_compinfmax,
    greedy_selfinfmax,
)
from repro.algorithms.heuristics import degree_discount_seeds, single_discount_seeds
from repro.algorithms.multi_item import (
    greedy_multi_item_selfinfmax,
    round_robin_multi_item,
)
from repro.algorithms.sandwich import SandwichResult, sandwich_select
from repro.algorithms.selfinfmax import SelfInfMaxResult, solve_selfinfmax

__all__ = [
    "solve_selfinfmax",
    "SelfInfMaxResult",
    "solve_compinfmax",
    "CompInfMaxResult",
    "theorem2_optimal_b_seeds",
    "estimate_suppression",
    "greedy_blocking",
    "sandwich_select",
    "SandwichResult",
    "celf_greedy",
    "celf_plus_plus_greedy",
    "greedy_selfinfmax",
    "greedy_compinfmax",
    "degree_discount_seeds",
    "single_discount_seeds",
    "greedy_multi_item_selfinfmax",
    "round_robin_multi_item",
    "high_degree_seeds",
    "pagerank_scores",
    "pagerank_seeds",
    "random_seeds",
    "copying_seeds",
    "vanilla_ic_seeds",
]
