"""PoolStore: round-trips, mmap loads, and manifest/corruption rejection."""

import json

import numpy as np
import pytest

from repro.errors import StoreError, StoreIntegrityError
from repro.models import GAP
from repro.rrset.pool import RRSetPool
from repro.store import PoolKey, PoolStore
from repro.store.pool_store import INDPTR_FILE, MANIFEST_FILE, NODES_FILE

GAPS = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
FP = "a" * 64
KEY = PoolKey.make("rr-sim", GAPS, [0, 1])


def make_pool(num_nodes=40, sets=25, rng_seed=0):
    gen = np.random.default_rng(rng_seed)
    pool = RRSetPool(num_nodes)
    for _ in range(sets):
        size = int(gen.integers(0, 6))
        pool.append(gen.integers(0, num_nodes, size=size))
    return pool


def assert_pools_equal(a, b):
    assert len(a) == len(b)
    assert a.num_nodes == b.num_nodes
    assert np.array_equal(a.nodes, b.nodes)
    assert np.array_equal(a.indptr, b.indptr)


@pytest.fixture
def store(tmp_path):
    return PoolStore(tmp_path / "pools")


class TestRoundTrip:
    @pytest.mark.parametrize("mmap", [False, True])
    def test_save_load_equality(self, store, mmap):
        pool = make_pool()
        store.save(KEY, pool, graph_fingerprint=FP)
        loaded = store.load(KEY, graph_fingerprint=FP, mmap=mmap)
        assert_pools_equal(pool, loaded)
        assert store.stats.hits == 1 and store.stats.saves == 1

    def test_empty_and_zero_length_sets_survive(self, store):
        pool = RRSetPool(10)
        pool.append(np.array([], dtype=np.int64))
        pool.append(np.array([3, 7]))
        pool.append(np.array([], dtype=np.int64))
        store.save(KEY, pool, graph_fingerprint=FP)
        loaded = store.load(KEY, graph_fingerprint=FP)
        assert_pools_equal(pool, loaded)
        assert list(loaded[0]) == [] and list(loaded[1]) == [3, 7]

    def test_mmap_loaded_pool_is_appendable(self, store):
        pool = make_pool()
        store.save(KEY, pool, graph_fingerprint=FP)
        loaded = store.load(KEY, graph_fingerprint=FP, mmap=True)
        loaded.append(np.array([1, 2, 3]))
        assert len(loaded) == len(pool) + 1
        assert list(loaded[len(pool)]) == [1, 2, 3]
        # the on-disk entry is untouched by the in-memory growth
        again = store.load(KEY, graph_fingerprint=FP, mmap=True)
        assert_pools_equal(pool, again)

    def test_save_overwrites_previous_entry(self, store):
        store.save(KEY, make_pool(sets=5), graph_fingerprint=FP)
        bigger = make_pool(sets=50, rng_seed=2)
        store.save(KEY, bigger, graph_fingerprint=FP)
        loaded = store.load(KEY, graph_fingerprint=FP)
        assert_pools_equal(bigger, loaded)

    def test_manifest_records_identity_and_provenance(self, store):
        pool = make_pool()
        store.save(
            KEY, pool, graph_fingerprint=FP, provenance={"creator": "test"}
        )
        manifest = store.manifest(KEY)
        assert manifest.key == KEY
        assert manifest.graph_fingerprint == FP
        assert manifest.num_sets == len(pool)
        assert manifest.provenance["creator"] == "test"
        assert manifest.provenance["created_unix"] > 0


class TestMissesAndInvalidation:
    def test_unknown_key_is_a_miss(self, store):
        assert store.load(KEY, graph_fingerprint=FP) is None
        assert store.stats.misses == 1
        assert store.stats.invalidations == 0

    def test_fingerprint_mismatch_is_invalidation(self, store):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        # load_strict diagnoses without healing; the entry stays put.
        with pytest.raises(StoreIntegrityError, match="different graph"):
            store.load_strict(KEY, graph_fingerprint="b" * 64)
        # the forgiving load counts the invalidation and quarantines.
        assert store.load(KEY, graph_fingerprint="b" * 64) is None
        assert store.stats.invalidations == 1
        assert store.stats.quarantined == 1

    def test_corrupted_nodes_column_rejected(self, store):
        pool = make_pool()
        store.save(KEY, pool, graph_fingerprint=FP)
        path = store.entry_dir(KEY) / NODES_FILE
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip one payload byte; shapes stay valid
        path.write_bytes(bytes(blob))
        with pytest.raises(StoreIntegrityError, match="CRC-32"):
            store.load_strict(KEY, graph_fingerprint=FP)
        assert store.load(KEY, graph_fingerprint=FP) is None
        assert store.stats.invalidations == 1

    def test_truncated_indptr_column_rejected(self, store):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        entry = store.entry_dir(KEY)
        np.save(entry / INDPTR_FILE, np.load(entry / INDPTR_FILE)[:2])
        with pytest.raises(StoreIntegrityError, match="shape"):
            store.load_strict(KEY, graph_fingerprint=FP)
        assert store.load(KEY, graph_fingerprint=FP) is None

    def test_tampered_manifest_rejected(self, store):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        path = store.entry_dir(KEY) / MANIFEST_FILE
        data = json.loads(path.read_text())
        data["key"]["opposite_seeds"] = [7, 8]  # claims a different pool
        path.write_text(json.dumps(data))
        with pytest.raises(StoreIntegrityError, match="does not match"):
            store.load_strict(KEY, graph_fingerprint=FP)

    def test_garbage_manifest_rejected(self, store):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        (store.entry_dir(KEY) / MANIFEST_FILE).write_text("{not json")
        assert store.load(KEY, graph_fingerprint=FP) is None
        assert store.stats.invalidations == 1

    def test_foreign_format_rejected(self, store):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        path = store.entry_dir(KEY) / MANIFEST_FILE
        data = json.loads(path.read_text())
        data["format"] = "something-else"
        path.write_text(json.dumps(data))
        with pytest.raises(StoreIntegrityError, match="manifest"):
            store.load_strict(KEY, graph_fingerprint=FP)

    def test_wrong_format_version_rejected(self, store):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        path = store.entry_dir(KEY) / MANIFEST_FILE
        data = json.loads(path.read_text())
        data["format_version"] = 999
        path.write_text(json.dumps(data))
        with pytest.raises(StoreIntegrityError, match="format_version"):
            store.load_strict(KEY, graph_fingerprint=FP)


class TestInventory:
    def test_contains_entries_delete_clear(self, store):
        other = PoolKey.make("rr-cim", GAPS, [3])
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        store.save(other, make_pool(rng_seed=1), graph_fingerprint=FP)
        assert store.contains(KEY, graph_fingerprint=FP)
        assert not store.contains(KEY, graph_fingerprint="c" * 64)
        assert {m.key for m in store.entries()} == {KEY, other}
        assert store.delete(other)
        assert not store.delete(other)
        store.clear()
        assert list(store.entries()) == []

    def test_stale_staging_dirs_are_not_inventory(self, store):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        # simulate a crash-orphaned staging dir holding a manifest
        orphan = store.root / ".staging.deadbeef.1"
        orphan.mkdir()
        (orphan / MANIFEST_FILE).write_text(
            (store.entry_dir(KEY) / MANIFEST_FILE).read_text()
        )
        assert [m.key for m in store.entries()] == [KEY]
        # a fresh save for the same key sweeps its own stale staging
        store.save(KEY, make_pool(rng_seed=3), graph_fingerprint=FP)
        assert [m.key for m in store.entries()] == [KEY]

    def test_save_unaffected_by_stale_staging(self, store):
        """Temp names are per-call unique; an orphan never collides with a
        new save, and the open-time sweep — not save — retires it."""
        staging = store.root / f".staging.{KEY.digest()}.{__import__('os').getpid()}"
        staging.mkdir()
        (staging / "leftover").write_text("x")
        pool = make_pool()
        store.save(KEY, pool, graph_fingerprint=FP)
        loaded = store.load(KEY, graph_fingerprint=FP)
        assert_pools_equal(pool, loaded)
        swept = PoolStore(store.root, stale_temp_age_s=0.0)
        assert not staging.exists()
        assert swept.stats.temp_dirs_gcd >= 1

    def test_failed_install_restores_previous_entry(self, store, monkeypatch):
        """A rename failure must not destroy the old, still-valid entry."""
        import os as os_module

        old_pool = make_pool(rng_seed=5)
        store.save(KEY, old_pool, graph_fingerprint=FP)
        entry = store.entry_dir(KEY)
        real_replace = os_module.replace

        def failing_replace(src, dst):
            if os_module.fspath(dst) == str(entry) and ".staging." in os_module.fspath(src):
                raise OSError("I/O error")
            return real_replace(src, dst)

        monkeypatch.setattr("repro.store.pool_store.os.replace", failing_replace)
        with pytest.raises(StoreError, match="failed to install"):
            store.save(KEY, make_pool(rng_seed=6), graph_fingerprint=FP)
        monkeypatch.undo()
        restored = store.load(KEY, graph_fingerprint=FP)
        assert_pools_equal(old_pool, restored)

    def test_failed_retirement_raises_instead_of_reporting_success(
        self, store, monkeypatch
    ):
        """An EACCES-style move-aside failure must surface, not silently
        leave the stale entry while claiming the save happened."""
        import os as os_module

        old_pool = make_pool(rng_seed=5)
        store.save(KEY, old_pool, graph_fingerprint=FP)
        saves_before = store.stats.saves
        real_replace = os_module.replace

        def failing_replace(src, dst):
            if ".trash." in os_module.fspath(dst):
                raise OSError("permission denied")
            return real_replace(src, dst)

        monkeypatch.setattr("repro.store.pool_store.os.replace", failing_replace)
        with pytest.raises(StoreError, match="failed to retire"):
            store.save(KEY, make_pool(rng_seed=6), graph_fingerprint=FP)
        monkeypatch.undo()
        assert store.stats.saves == saves_before
        assert_pools_equal(old_pool, store.load(KEY, graph_fingerprint=FP))

    def test_root_must_be_a_directory(self, tmp_path):
        rogue = tmp_path / "file"
        rogue.write_text("x")
        with pytest.raises(StoreError, match="not a directory"):
            PoolStore(rogue)

    def test_non_poolkey_rejected(self, store):
        with pytest.raises(StoreError, match="PoolKey"):
            store.entry_dir(("rr-sim", GAPS.as_tuple(), (0,)))


class TestUint32Diet:
    """Offset columns shrink to uint32 on disk whenever they fit."""

    def test_save_installs_uint32_offsets_and_round_trips(self, store):
        pool = make_pool()
        store.save(KEY, pool, graph_fingerprint=FP)
        on_disk = np.load(store.entry_dir(KEY) / INDPTR_FILE)
        assert on_disk.dtype == np.uint32
        manifest = store.manifest(KEY)
        assert manifest.column_dtypes == {"indptr": "uint32"}
        assert manifest.column_dtype("indptr") == np.dtype(np.uint32)
        loaded = store.load(KEY, graph_fingerprint=FP)
        assert_pools_equal(pool, loaded)
        assert store.stats.invalidations == 0

    def test_incremental_append_keeps_the_dieted_dtype(self, store):
        pool = make_pool()
        store.save(KEY, pool, graph_fingerprint=FP)
        gen = np.random.default_rng(5)
        for _ in range(10):
            pool.append(gen.integers(0, pool.num_nodes, size=4))
        store.save(KEY, pool, graph_fingerprint=FP)
        assert store.stats.appends == 1
        on_disk = np.load(store.entry_dir(KEY) / INDPTR_FILE)
        assert on_disk.dtype == np.uint32
        assert_pools_equal(pool, store.load(KEY, graph_fingerprint=FP))

    def test_adopted_uint32_pool_widens_on_growth(self, store):
        # a loaded pool adopts the uint32 column zero-copy; its first
        # append must transparently widen back to int64
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        loaded = store.load(KEY, graph_fingerprint=FP)
        assert np.asarray(loaded.indptr).dtype == np.uint32
        loaded.append(np.array([1, 2, 3]))
        assert np.asarray(loaded.indptr).dtype == np.int64
        assert list(loaded[len(loaded) - 1]) == [1, 2, 3]

    def test_diet_declined_when_offsets_overflow_uint32(self):
        from repro.store.pool_store import _diet_column

        fits = _diet_column(np.array([0, 3, 2**32 - 1], dtype=np.int64))
        assert fits.dtype == np.uint32
        too_big = _diet_column(np.array([0, 3, 2**32], dtype=np.int64))
        assert too_big.dtype == np.int64

    def test_illegal_recorded_dtype_rejected(self, store):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        path = store.entry_dir(KEY) / MANIFEST_FILE
        data = json.loads(path.read_text())
        data["column_dtypes"] = {"indptr": "float64"}
        path.write_text(json.dumps(data))
        with pytest.raises(StoreIntegrityError, match="illegal dtype"):
            store.load_strict(KEY, graph_fingerprint=FP)
        assert store.load(KEY, graph_fingerprint=FP) is None
        assert store.stats.invalidations == 1

    def test_file_dtype_contradicting_manifest_rejected(self, store):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        entry = store.entry_dir(KEY)
        # rewrite the column as int64 while the manifest still says uint32
        np.save(
            entry / INDPTR_FILE,
            np.load(entry / INDPTR_FILE).astype(np.int64),
        )
        with pytest.raises(StoreIntegrityError, match="do not match"):
            store.load_strict(KEY, graph_fingerprint=FP)

    def test_classic_manifest_without_record_means_int64(self, store):
        # pre-diet entries carry no column_dtypes key and default to int64
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        entry = store.entry_dir(KEY)
        path = entry / MANIFEST_FILE
        data = json.loads(path.read_text())
        assert "column_dtypes" in data
        del data["column_dtypes"]
        path.write_text(json.dumps(data))
        np.save(
            entry / INDPTR_FILE,
            np.load(entry / INDPTR_FILE).astype(np.int64),
        )
        with pytest.raises(StoreIntegrityError, match="CRC-32"):
            # same values, different bytes: the recorded CRC covers the
            # uint32 file this entry was actually saved with
            store.load_strict(KEY, graph_fingerprint=FP)
