"""RR-sets for the classic IC model (Borgs et al. [2], Tang et al. [24]).

In an IC possible world (live-edge graph), the singleton ``{u}`` activates
``v`` iff ``u`` can reach ``v`` via live edges; the RR-set of ``v`` is
therefore the set of nodes that reach ``v``, found by a reverse BFS that
flips each in-edge's coin lazily on first touch.  This generator powers the
VanillaIC baseline of §7 (TIM under plain IC, ignoring the NLA).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.graph.digraph import DiGraph
from repro.models.sources import WorldSource
from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator


class RRICGenerator(RRSetGenerator):
    """Random RR-set sampler for single-item IC."""

    def generate(
        self, *, rng: SeedLike = None, root: Optional[int] = None, world=None
    ) -> np.ndarray:
        gen = make_rng(rng)
        if root is None:
            root = int(gen.integers(0, self._graph.num_nodes))
        if world is None:
            world = WorldSource(gen)
        graph = self._graph
        visited = {root}
        queue: deque[int] = deque([root])
        while queue:
            u = queue.popleft()
            sources, probs, eids = graph.in_edges(u)
            for idx in range(sources.size):
                w = int(sources[idx])
                if w in visited:
                    continue
                if world.edge_live(int(eids[idx]), float(probs[idx])):
                    visited.add(w)
                    queue.append(w)
        return np.fromiter(visited, dtype=np.int64, count=len(visited))
