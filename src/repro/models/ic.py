"""Classic single-item Independent Cascade model (Kempe et al. [15]).

Used by the VanillaIC baseline (§7) and as the reduction target of the
NP-hardness constructions.  The frontier edge tests are vectorised with
numpy: each step gathers all out-edges of the newly-activated frontier in
one shot and flips all their coins at once — each node enters the frontier
at most once, so each edge is tested at most once, exactly the IC process.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import SeedSetError
from repro.graph.digraph import DiGraph, expand_csr
from repro.models.spread import SpreadEstimate, _summarize
from repro.rng import SeedLike, make_rng


def gather_out_edges(
    graph: DiGraph, nodes: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All out-edges of ``nodes`` as flat ``(targets, probs, edge_ids)``.

    Vectorised CSR gather: O(total out-degree) with no Python loop.
    """
    indptr, targets, probs, eids = graph.csr_out()
    _reps, flat = expand_csr(indptr, nodes, with_reps=False)
    if flat.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=np.float64), empty
    return targets[flat], probs[flat], eids[flat]


def simulate_ic(
    graph: DiGraph,
    seeds: Iterable[int],
    *,
    rng: SeedLike = None,
) -> np.ndarray:
    """One IC cascade; returns the boolean activation mask."""
    gen = make_rng(rng)
    active = np.zeros(graph.num_nodes, dtype=bool)
    frontier_list: list[int] = []
    for s in seeds:
        v = int(s)
        if not 0 <= v < graph.num_nodes:
            raise SeedSetError(f"seed {v} out of range [0, {graph.num_nodes - 1}]")
        if not active[v]:
            active[v] = True
            frontier_list.append(v)
    frontier = np.asarray(frontier_list, dtype=np.int64)
    while frontier.size:
        targets, probs, _eids = gather_out_edges(graph, frontier)
        if targets.size == 0:
            break
        live = gen.random(targets.size) < probs
        hit = targets[live]
        fresh = hit[~active[hit]]
        if fresh.size == 0:
            break
        # A node may be hit by several frontier edges in one step; its
        # activation is idempotent, and its own out-edges fire next step.
        fresh = np.unique(fresh)
        active[fresh] = True
        frontier = fresh
    return active


def ic_spread(
    graph: DiGraph,
    seeds: Iterable[int],
    *,
    runs: int = 1000,
    rng: SeedLike = None,
) -> SpreadEstimate:
    """Monte-Carlo estimate of the IC spread ``sigma_IC(seeds)``."""
    gen = make_rng(rng)
    seeds = list(seeds)
    values = np.empty(runs, dtype=np.float64)
    for i in range(runs):
        values[i] = int(simulate_ic(graph, seeds, rng=gen).sum())
    return _summarize(values)
