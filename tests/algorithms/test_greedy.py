"""Tests for CELF greedy and the MC-greedy problem wrappers."""

import pytest

from repro.errors import SeedSetError
from repro.graph import DiGraph, path_digraph, star_digraph
from repro.models import GAP, estimate_spread
from repro.algorithms import celf_greedy, greedy_compinfmax, greedy_selfinfmax


class TestCelfGreedy:
    def test_matches_plain_greedy_on_submodular_function(self):
        """Coverage function: CELF must return the same chain as exhaustive
        greedy."""
        sets = {0: {1, 2, 3}, 1: {3, 4}, 2: {5}, 3: {1}}

        def coverage(seed_list):
            covered = set()
            for s in seed_list:
                covered |= sets[s]
            return float(len(covered))

        seeds, trace = celf_greedy(sets.keys(), 3, coverage)
        assert seeds[0] == 0
        assert coverage(seeds) == trace[-1]
        # Exhaustive greedy chain: 0 covers {1,2,3}; then 1 adds only {4}
        # (+1), then 2 adds {5} (+1).
        assert seeds == [0, 1, 2]
        assert trace == [3.0, 4.0, 5.0]

    def test_counts_objective_calls_lazily(self):
        calls = {"n": 0}
        sets = {i: {i} for i in range(6)}
        sets[0] = {10, 11, 12}

        def coverage(seed_list):
            calls["n"] += 1
            covered = set()
            for s in seed_list:
                covered |= sets[s]
            return float(len(covered))

        celf_greedy(sets.keys(), 2, coverage)
        # Plain greedy would need 1 + 6 + 6 = 13 calls; CELF does the
        # initial 1 + 6 plus at most a couple of re-evaluations.
        assert calls["n"] <= 10

    def test_k_zero(self):
        seeds, trace = celf_greedy([1, 2], 0, lambda s: float(len(s)))
        assert seeds == [] and trace == []

    def test_k_exceeds_pool(self):
        with pytest.raises(SeedSetError):
            celf_greedy([1], 2, lambda s: 0.0)


class TestGreedyProblems:
    def test_selfinfmax_star(self):
        graph = star_digraph(8)
        gaps = GAP(0.5, 0.9, 0.5, 0.5)
        seeds = greedy_selfinfmax(graph, gaps, [], 1, runs=60, rng=0)
        assert seeds == [0]

    def test_selfinfmax_candidate_pool(self):
        graph = star_digraph(8)
        gaps = GAP(0.5, 0.9, 0.5, 0.5)
        seeds = greedy_selfinfmax(
            graph, gaps, [], 1, runs=40, rng=0, candidates=[3, 4]
        )
        assert seeds[0] in (3, 4)

    def test_compinfmax_picks_booster(self):
        """A-seed at the head of a path, q_a tiny, boost huge: the best
        single B-seed must be on the path (to unlock A), not off it."""
        edges = [(0, 1, 1.0), (1, 2, 1.0)]
        graph = DiGraph.from_edges(4, edges)  # node 3 isolated
        gaps = GAP(q_a=0.1, q_a_given_b=1.0, q_b=1.0, q_b_given_a=1.0)
        seeds = greedy_compinfmax(graph, gaps, [0], 1, runs=120, rng=1)
        assert seeds[0] in (0, 1, 2)
        assert seeds[0] != 3

    def test_greedy_quality_close_to_exhaustive(self):
        graph = star_digraph(6)
        gaps = GAP(0.6, 0.9, 0.4, 0.8)
        seeds = greedy_selfinfmax(graph, gaps, [1], 2, runs=80, rng=2)
        got = estimate_spread(graph, gaps, seeds, [1], runs=800, rng=3).mean
        best = estimate_spread(graph, gaps, [0, 2], [1], runs=800, rng=3).mean
        assert got >= 0.8 * best
