"""ComICSession: cross-query pool reuse, stats, and the four workloads."""

import pytest

from repro.api import (
    BlockingQuery,
    ComICSession,
    CompInfMaxQuery,
    EngineConfig,
    MultiItemQuery,
    SelfInfMaxQuery,
)
from repro.errors import QueryError
from repro.graph import power_law_digraph, weighted_cascade_probabilities
from repro.models import GAP, estimate_spread

INDIFFERENT = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
COMPLEMENTARY = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.4, q_b_given_a=0.9)
COMPETITIVE = GAP(q_a=0.8, q_a_given_b=0.1, q_b=0.8, q_b_given_a=0.1)
#: One-way competition: the RR-Block regime (B indifferent to A).
ONE_WAY_COMPETITIVE = GAP(q_a=0.7, q_a_given_b=0.1, q_b=0.8, q_b_given_a=0.8)


@pytest.fixture(scope="module")
def graph():
    return weighted_cascade_probabilities(power_law_digraph(250, rng=9))


class TestPoolReuse:
    def test_identical_query_samples_nothing_new(self, graph):
        session = ComICSession(
            graph, INDIFFERENT, config=EngineConfig(theta_override=500), rng=0
        )
        first = session.run(SelfInfMaxQuery(seeds_b=(0,), k=3))
        assert first.diagnostics["rr_sets_sampled"] == 500
        second = session.run(SelfInfMaxQuery(seeds_b=(0,), k=3))
        assert second.diagnostics["rr_sets_sampled"] == 0
        assert session.stats.pool_hits == 1
        assert session.stats.pool_misses == 1
        assert second.seeds == first.seeds  # same pool, same greedy

    def test_larger_theta_appends_to_cached_pool(self, graph):
        session = ComICSession(
            graph, INDIFFERENT, config=EngineConfig(theta_override=400), rng=1
        )
        session.run(SelfInfMaxQuery(seeds_b=(0, 1), k=3))
        (entry,) = session._pools.values()
        pool_before = entry.pool
        assert len(pool_before) == 400

        bigger = session.run(
            SelfInfMaxQuery(seeds_b=(0, 1), k=3),
            config=EngineConfig(theta_override=1000),
        )
        (entry_after,) = session._pools.values()
        # Same pool object, grown in place — not a fresh resample.
        assert entry_after.pool is pool_before
        assert len(entry_after.pool) == 1000
        assert bigger.diagnostics["rr_sets_sampled"] == 600
        assert session.stats.rr_sets_sampled == 1000

    def test_pool_keys_separate_gaps_and_opposite_seeds(self, graph):
        session = ComICSession(
            graph, INDIFFERENT, config=EngineConfig(theta_override=200), rng=2
        )
        session.run(SelfInfMaxQuery(seeds_b=(0,), k=2))
        session.run(SelfInfMaxQuery(seeds_b=(1,), k=2))
        session.run(
            SelfInfMaxQuery(seeds_b=(0,), k=2, gaps=GAP(0.2, 0.9, 0.5, 0.5))
        )
        assert len(session._pools) == 3
        assert session.stats.pool_misses == 3
        # Opposite-seed order/duplicates do not split the cache.
        session.run(SelfInfMaxQuery(seeds_b=(1, 1), k=2))
        assert len(session._pools) == 3

    def test_sandwich_query_pools_both_bounds(self, graph):
        session = ComICSession(
            graph, COMPLEMENTARY, config=EngineConfig(theta_override=300), rng=3
        )
        result = session.run(
            SelfInfMaxQuery(seeds_b=(0,), k=2, evaluation_runs=40)
        )
        assert result.method == "sandwich"
        assert session.stats.pool_misses == 2  # nu and mu pools
        again = session.run(
            SelfInfMaxQuery(seeds_b=(0,), k=3, evaluation_runs=40)
        )
        assert again.diagnostics["rr_sets_sampled"] == 0
        assert session.stats.pool_hits == 2

    def test_imm_engine_reuses_pool(self, graph):
        session = ComICSession(
            graph, INDIFFERENT,
            config=EngineConfig(engine="imm", max_rr_sets=2000), rng=4,
        )
        first = session.run(SelfInfMaxQuery(seeds_b=(0,), k=3))
        assert first.diagnostics["rr_sets_sampled"] > 0
        second = session.run(SelfInfMaxQuery(seeds_b=(0,), k=2))
        # Smaller k needs no more sets than the pool already holds.
        assert second.diagnostics["rr_sets_sampled"] == 0

    def test_theta_override_pins_selection_on_warm_pool(self, graph):
        """A pinned theta selects over exactly theta sets, warm pool or not."""
        session = ComICSession(
            graph, INDIFFERENT, config=EngineConfig(theta_override=800), rng=6
        )
        session.run(SelfInfMaxQuery(seeds_b=(0,), k=2))
        pinned = session.run(
            SelfInfMaxQuery(seeds_b=(0,), k=2),
            config=EngineConfig(theta_override=300),
        )
        assert pinned.diagnostics["theta"] == 300  # not the 800-set pool
        assert pinned.diagnostics["rr_sets_sampled"] == 0
        assert session.pool_sets_total == 800  # pool itself untouched

    def test_max_rr_sets_caps_warm_pool_use(self, graph):
        """A query's sample cap bounds selection even on a larger warm pool."""
        session = ComICSession(
            graph, INDIFFERENT, config=EngineConfig(theta_override=900), rng=17
        )
        session.run(SelfInfMaxQuery(seeds_b=(0,), k=2))
        capped = session.run(
            SelfInfMaxQuery(seeds_b=(0,), k=2),
            config=EngineConfig(max_rr_sets=300),
        )
        assert capped.diagnostics["theta"] <= 300
        capped_imm = session.run(
            SelfInfMaxQuery(seeds_b=(0,), k=2),
            config=EngineConfig(engine="imm", max_rr_sets=400),
        )
        assert capped_imm.diagnostics["theta"] <= 400
        assert session.pool_sets_total == 900  # pool itself untouched

    def test_clear_pools_resamples(self, graph):
        session = ComICSession(
            graph, INDIFFERENT, config=EngineConfig(theta_override=200), rng=5
        )
        session.run(SelfInfMaxQuery(seeds_b=(0,), k=2))
        session.clear_pools()
        assert session.pool_sets_total == 0
        result = session.run(SelfInfMaxQuery(seeds_b=(0,), k=2))
        assert result.diagnostics["rr_sets_sampled"] == 200


class TestKSweepAcceptance:
    def test_k_sweep_samples_strictly_fewer_with_spread_parity(self, graph):
        """One session serving a k-sweep beats independent solver calls."""
        ks = (2, 4, 6, 8, 10)
        seeds_b = (0, 1)
        config = EngineConfig(max_rr_sets=4000, epsilon=0.5)

        def run_sweep(shared: bool):
            session = ComICSession(graph, INDIFFERENT, config=config, rng=7)
            total, last_seeds = 0, []
            for k in ks:
                if not shared:
                    session = ComICSession(
                        graph, INDIFFERENT, config=config, rng=7
                    )
                result = session.run(SelfInfMaxQuery(seeds_b=seeds_b, k=k))
                last_seeds = result.seeds
                if not shared:
                    total += session.stats.rr_sets_sampled
            if shared:
                total = session.stats.rr_sets_sampled
            return total, last_seeds

        independent_total, independent_seeds = run_sweep(shared=False)
        shared_total, shared_seeds = run_sweep(shared=True)
        assert shared_total < independent_total

        spread_shared = estimate_spread(
            graph, INDIFFERENT, shared_seeds, seeds_b, runs=250, rng=8
        ).mean
        spread_independent = estimate_spread(
            graph, INDIFFERENT, independent_seeds, seeds_b, runs=250, rng=8
        ).mean
        # Seed quality parity within MC noise.
        assert spread_shared >= 0.85 * spread_independent


class TestWorkloads:
    def test_compinfmax_submodular_and_reuse(self, graph):
        gaps = GAP(0.2, 0.9, 0.5, 1.0)
        session = ComICSession(
            graph, gaps, config=EngineConfig(theta_override=300), rng=10
        )
        result = session.run(CompInfMaxQuery(seeds_a=(0, 1), k=3))
        assert result.method == "submodular"
        assert len(result.seeds) == 3
        again = session.run(CompInfMaxQuery(seeds_a=(0, 1), k=2))
        assert again.diagnostics["rr_sets_sampled"] == 0

    def test_blocking_query(self, graph):
        session = ComICSession(graph, COMPETITIVE, rng=11)
        result = session.run(
            BlockingQuery(
                seeds_a=(0, 1), k=2, runs=30, candidates=tuple(range(12))
            )
        )
        assert len(result.seeds) == 2
        assert result.engine == "mc"
        assert result.estimate is not None and result.estimate >= 0.0

    def test_multi_item_round_robin_and_focal(self, graph):
        from repro.models import MultiItemGaps

        session = ComICSession(
            graph, multi_item_gaps=MultiItemGaps.uniform(2, 0.5), rng=12
        )
        rr = session.run(
            MultiItemQuery(budget=2, runs=15, candidates=tuple(range(8)))
        )
        assert rr.method == "round-robin"
        assert sum(len(s) for s in rr.seed_sets) == 2
        focal = session.run(
            MultiItemQuery(
                budget=1, item=0, fixed_seed_sets=((), ()),
                runs=15, candidates=tuple(range(8)),
            )
        )
        assert len(focal.seeds) == 1

    def test_round_robin_extends_fixed_seed_sets(self, graph):
        from repro.models import MultiItemGaps

        session = ComICSession(
            graph, multi_item_gaps=MultiItemGaps.uniform(2, 0.5), rng=15
        )
        result = session.run(
            MultiItemQuery(
                budget=2, fixed_seed_sets=((0, 1), (2,)),
                runs=10, candidates=tuple(range(8)),
            )
        )
        # The supplied allocation is the starting state, not discarded.
        assert result.seed_sets[0][:2] == [0, 1]
        assert result.seed_sets[1][:1] == [2]
        assert sum(len(s) for s in result.seed_sets) == 5

    def test_round_robin_resume_continues_rotation(self, graph):
        """Extending an uneven allocation feeds the least-seeded items."""
        from repro.models import MultiItemGaps

        session = ComICSession(
            graph, multi_item_gaps=MultiItemGaps.uniform(3, 0.5), rng=18
        )
        result = session.run(
            MultiItemQuery(
                budget=2, fixed_seed_sets=((0, 1), (2,), ()),
                runs=10, candidates=tuple(range(8)),
            )
        )
        # (2,1,0) + 2 seeds -> (2,2,1), not (3,2,0).
        assert [len(s) for s in result.seed_sets] == [2, 2, 1]

    def test_round_robin_fixed_seed_sets_length_checked(self, graph):
        from repro.errors import SeedSetError
        from repro.models import MultiItemGaps

        session = ComICSession(
            graph, multi_item_gaps=MultiItemGaps.uniform(2, 0.5), rng=16
        )
        with pytest.raises(SeedSetError, match="expected 2 seed sets"):
            session.run(MultiItemQuery(budget=1, fixed_seed_sets=((0,),)))

    def test_multi_item_lifts_pairwise_gaps(self, graph):
        session = ComICSession(graph, INDIFFERENT, rng=13)
        result = session.run(
            MultiItemQuery(budget=1, runs=10, candidates=(0, 1, 2))
        )
        assert result.seed_sets is not None


class TestBlockingRR:
    """The RR-Block route of BlockingQuery (and its MC fallbacks)."""

    def test_auto_takes_rr_route_in_regime(self, graph):
        session = ComICSession(
            graph, ONE_WAY_COMPETITIVE,
            config=EngineConfig(theta_override=2000), rng=20,
        )
        result = session.run(BlockingQuery(seeds_a=(0, 1), k=3))
        assert result.method == "rr-greedy"
        assert result.engine == "tim"
        assert result.diagnostics["regime"] == "rr-block"
        assert result.diagnostics["theta"] == 2000
        assert result.diagnostics["mc_runs"] is None
        assert len(result.seeds) == 3
        assert set(result.seeds).isdisjoint({0, 1})
        # k-sweep reuse: a smaller k answers entirely from the pool.
        again = session.run(BlockingQuery(seeds_a=(0, 1), k=2))
        assert again.diagnostics["rr_sets_sampled"] == 0
        assert session.stats.pool_hits == 1

    def test_auto_falls_back_to_mc_outside_regime(self, graph):
        session = ComICSession(graph, COMPETITIVE, rng=21)
        result = session.run(
            BlockingQuery(
                seeds_a=(0,), k=1, runs=10, candidates=tuple(range(6))
            )
        )
        assert result.method == "celf-greedy"
        assert result.engine == "mc"
        assert "fallback" in result.diagnostics
        assert result.diagnostics["theta"] is None

    def test_explicit_rr_outside_regime_raises(self, graph):
        from repro.errors import RegimeError

        session = ComICSession(graph, COMPETITIVE, rng=22)
        with pytest.raises(RegimeError, match="one-way competition"):
            session.run(BlockingQuery(seeds_a=(0,), k=1, method="rr"))

    def test_explicit_mc_forces_celf(self, graph):
        session = ComICSession(graph, ONE_WAY_COMPETITIVE, rng=23)
        result = session.run(
            BlockingQuery(
                seeds_a=(0,), k=1, runs=10, method="mc",
                candidates=tuple(range(6)),
            )
        )
        assert result.method == "celf-greedy"
        assert result.engine == "mc"
        assert "fallback" not in result.diagnostics

    def test_rr_suppression_matches_mc_within_noise(self, graph):
        """The heuristic RR estimate must track the MC suppression."""
        from repro.algorithms.blocking import estimate_suppression

        seeds_a = (0, 1, 2)
        session = ComICSession(
            graph, ONE_WAY_COMPETITIVE,
            config=EngineConfig(engine="imm", max_rr_sets=6000), rng=24,
        )
        result = session.run(BlockingQuery(seeds_a=seeds_a, k=3))
        mc = estimate_suppression(
            graph, ONE_WAY_COMPETITIVE, list(seeds_a), result.seeds,
            runs=900, rng=25,
        )
        # Interception-at-the-root undercounts (cut blockades) and
        # B-wins-ties overcounts: allow MC noise plus heuristic slack.
        slack = 0.35 * max(mc.mean, 1.0) + 4.0 * mc.stderr
        assert abs(result.estimate - mc.mean) <= slack
        assert mc.mean > 0.0  # the chosen blockers genuinely suppress

    def test_candidates_exclude_a_seeds(self, graph):
        # Regression: the default pool used to include seeds_a, wasting
        # greedy budget on occupied nodes; explicit pools are filtered too.
        session = ComICSession(graph, ONE_WAY_COMPETITIVE, rng=26)
        result = session.run(
            BlockingQuery(
                seeds_a=(0, 1), k=2, runs=10, method="mc",
                candidates=(0, 1, 2, 3, 4),
            )
        )
        assert set(result.seeds).isdisjoint({0, 1})
        assert result.diagnostics["candidate_pool"] == 3
        rr = session.run(
            BlockingQuery(seeds_a=(0, 1), k=2, candidates=(0, 1, 2, 3, 4)),
            config=EngineConfig(theta_override=500),
        )
        assert set(rr.seeds).isdisjoint({0, 1})
        assert rr.diagnostics["candidate_pool"] == 3

    def test_default_pool_excludes_a_seeds(self, graph):
        session = ComICSession(graph, ONE_WAY_COMPETITIVE, rng=27)
        result = session.run(
            BlockingQuery(seeds_a=(0, 1), k=1),
            config=EngineConfig(theta_override=500),
        )
        assert result.diagnostics["candidate_pool"] == graph.num_nodes - 2

    def test_k_larger_than_pool_raises(self, graph):
        from repro.errors import SeedSetError

        session = ComICSession(graph, ONE_WAY_COMPETITIVE, rng=28)
        with pytest.raises(SeedSetError, match="cannot select"):
            session.run(
                BlockingQuery(seeds_a=(0, 1), k=2, candidates=(0, 1, 2))
            )


class TestMultiItemRR:
    """The focal-item RR route (SelfInfMax reduction) of MultiItemQuery."""

    def test_focal_rr_route_and_pool_sharing(self, graph):
        from repro.models import MultiItemGaps

        session = ComICSession(
            graph,
            INDIFFERENT,
            multi_item_gaps=MultiItemGaps.from_pairwise_gap(INDIFFERENT),
            config=EngineConfig(theta_override=800),
            rng=30,
        )
        focal = session.run(
            MultiItemQuery(budget=2, item=0, fixed_seed_sets=((), (4, 5)))
        )
        assert focal.method == "rr-greedy"
        assert focal.engine == "tim"
        assert focal.diagnostics["regime"] == "rr-sim+"
        assert len(focal.seeds) == 2
        # The reduction shares the rr-sim+ pool with plain SelfInfMax
        # over the same context seeds.
        self_result = session.run(SelfInfMaxQuery(seeds_b=(4, 5), k=2))
        assert self_result.diagnostics["rr_sets_sampled"] == 0
        assert self_result.seeds == focal.seeds

    def test_focal_rr_requires_regime(self, graph):
        from repro.errors import RegimeError
        from repro.models import MultiItemGaps

        # Competitive two-item model: focal reduction is not in RR-SIM.
        session = ComICSession(
            graph,
            multi_item_gaps=MultiItemGaps.from_pairwise_gap(COMPETITIVE),
            rng=31,
        )
        with pytest.raises(RegimeError, match="RR-SIM regime"):
            session.run(
                MultiItemQuery(
                    budget=1, item=0, fixed_seed_sets=((), (3,)), method="rr"
                )
            )
        # auto falls back to MC silently-but-visibly.
        result = session.run(
            MultiItemQuery(
                budget=1, item=0, fixed_seed_sets=((), (3,)),
                runs=10, candidates=(0, 1, 2),
            )
        )
        assert result.method == "celf-greedy"
        assert result.engine == "mc"

    def test_focal_rr_requires_empty_focal_base(self, graph):
        from repro.errors import RegimeError
        from repro.models import MultiItemGaps

        session = ComICSession(
            graph,
            multi_item_gaps=MultiItemGaps.from_pairwise_gap(INDIFFERENT),
            rng=32,
        )
        with pytest.raises(RegimeError, match="empty focal seed set"):
            session.run(
                MultiItemQuery(
                    budget=1, item=0, fixed_seed_sets=((7,), ()), method="rr"
                )
            )

    def test_round_robin_rejects_forced_rr(self, graph):
        # Regression: method="rr" on a round-robin query must fail loudly
        # instead of silently running the MC allocation.
        from repro.errors import RegimeError
        from repro.models import MultiItemGaps

        session = ComICSession(
            graph, multi_item_gaps=MultiItemGaps.uniform(2, 0.5), rng=34
        )
        with pytest.raises(RegimeError, match="no RR route"):
            session.run(MultiItemQuery(budget=1, method="rr"))

    def test_focal_candidates_exclude_fixed_seeds(self, graph):
        # Regression: explicit candidate pools never re-seed the focal
        # item's occupied nodes.
        from repro.models import MultiItemGaps

        session = ComICSession(
            graph,
            multi_item_gaps=MultiItemGaps.from_pairwise_gap(COMPETITIVE),
            rng=33,
        )
        result = session.run(
            MultiItemQuery(
                budget=2, item=0, fixed_seed_sets=((0, 1), ()),
                runs=10, candidates=(0, 1, 2, 3, 4),
            )
        )
        assert set(result.seeds).isdisjoint({0, 1})
        assert result.diagnostics["candidate_pool"] == 3


class TestDiagnosticsEnvelope:
    """All workloads share one diagnostics envelope (no KeyErrors)."""

    ENVELOPE = ("regime", "theta", "mc_runs", "candidate_pool",
                "wall_s", "rr_sets_sampled", "pool_sets_total",
                "pool_bytes_total")

    def test_every_workload_fills_the_envelope(self, graph):
        from repro.models import MultiItemGaps

        cfg = EngineConfig(theta_override=300)
        session = ComICSession(
            graph, INDIFFERENT,
            multi_item_gaps=MultiItemGaps.from_pairwise_gap(INDIFFERENT),
            config=cfg, rng=40,
        )
        block_session = ComICSession(
            graph, ONE_WAY_COMPETITIVE, config=cfg, rng=41
        )
        results = [
            session.run(SelfInfMaxQuery(seeds_b=(0,), k=1)),
            session.run(CompInfMaxQuery(seeds_a=(0,), k=1, gaps=COMPLEMENTARY)),
            block_session.run(BlockingQuery(seeds_a=(0,), k=1)),
            block_session.run(
                BlockingQuery(
                    seeds_a=(0,), k=1, runs=5, method="mc",
                    candidates=(1, 2, 3),
                )
            ),
            session.run(
                MultiItemQuery(budget=1, item=0, fixed_seed_sets=((), (2,)))
            ),
            session.run(
                MultiItemQuery(budget=1, runs=5, candidates=(0, 1, 2))
            ),
        ]
        for result in results:
            for key in self.ENVELOPE:
                assert key in result.diagnostics, (result.objective, key)


class TestBoundedPoolCache:
    """max_pool_bytes: LRU eviction keeps the cache under the cap."""

    def test_sweep_never_exceeds_cap(self, graph):
        cap = 60_000
        session = ComICSession(
            graph, ONE_WAY_COMPETITIVE,
            config=EngineConfig(theta_override=2000, max_pool_bytes=cap),
            rng=50,
        )
        for seeds_a in [(0,), (1,), (2,), (3,), (4,)]:
            session.run(BlockingQuery(seeds_a=seeds_a, k=2))
            assert session.pool_bytes_total <= cap
        assert session.stats.pool_evictions > 0
        assert session.stats.pool_bytes_evicted > 0
        assert session.stats.as_dict()["pool_evictions"] > 0

    def test_lru_order_evicts_least_recently_used(self, graph):
        session = ComICSession(
            graph, INDIFFERENT,
            config=EngineConfig(theta_override=400), rng=51,
        )
        session.run(SelfInfMaxQuery(seeds_b=(0,), k=1))
        session.run(SelfInfMaxQuery(seeds_b=(1,), k=1))
        # Touch the first pool again: (1,) becomes least recent.
        session.run(SelfInfMaxQuery(seeds_b=(0,), k=1))
        (first, second) = session.pool_info()
        by_seeds = {info.opposite_seeds: info.last_used for info in (first, second)}
        assert by_seeds[(0,)] > by_seeds[(1,)]
        # Cap to one pool's bytes: the (1,) pool is the one dropped.
        one_pool_bytes = max(info.nbytes for info in (first, second))
        session.run(
            SelfInfMaxQuery(seeds_b=(0,), k=1),
            config=EngineConfig(
                theta_override=400, max_pool_bytes=one_pool_bytes
            ),
        )
        (info,) = session.pool_info()
        assert info.opposite_seeds == (0,)
        assert session.stats.pool_evictions == 1

    def test_unbounded_by_default(self, graph):
        session = ComICSession(
            graph, INDIFFERENT,
            config=EngineConfig(theta_override=300), rng=52,
        )
        for b in range(4):
            session.run(SelfInfMaxQuery(seeds_b=(b,), k=1))
        assert len(session.pool_info()) == 4
        assert session.stats.pool_evictions == 0

    def test_config_validation(self):
        from repro.api import EngineConfig as EC

        with pytest.raises(QueryError, match="max_pool_bytes"):
            EC(max_pool_bytes=0)
        cfg = EC(max_pool_bytes=1 << 20)
        assert EC.from_json(cfg.to_json()) == cfg


class TestRunManyOverrides:
    """run_many threads config/rng to every query (regression: they
    used to be silently dropped)."""

    def test_config_override_applies(self, graph):
        session = ComICSession(
            graph, INDIFFERENT,
            config=EngineConfig(theta_override=500), rng=60,
        )
        results = session.run_many(
            [SelfInfMaxQuery(seeds_b=(0,), k=1)],
            config=EngineConfig(theta_override=250),
        )
        assert results[0].diagnostics["theta"] == 250

    def test_rng_override_reproduces_sweep(self, graph):
        queries = [
            BlockingQuery(
                seeds_a=(0,), k=1, runs=5, method="mc",
                candidates=(1, 2, 3, 4),
            )
            for _ in range(2)
        ]
        first = ComICSession(graph, ONE_WAY_COMPETITIVE, rng=1).run_many(
            queries, rng=99
        )
        second = ComICSession(graph, ONE_WAY_COMPETITIVE, rng=2).run_many(
            queries, rng=99
        )
        assert [r.seeds for r in first] == [r.seeds for r in second]


class TestSessionValidation:
    def test_graph_type_checked(self):
        with pytest.raises(QueryError, match="DiGraph"):
            ComICSession("not a graph")

    def test_gaps_type_checked(self, graph):
        with pytest.raises(QueryError, match="GAP"):
            ComICSession(graph, gaps=(0.3, 0.8, 0.5, 0.5))

    def test_legacy_options_config_rejected(self, graph):
        from repro.rrset import TIMOptions

        with pytest.raises(QueryError, match="EngineConfig"):
            ComICSession(graph, INDIFFERENT, config=TIMOptions())
        session = ComICSession(graph, INDIFFERENT)
        with pytest.raises(QueryError, match="EngineConfig"):
            session.run(
                SelfInfMaxQuery(seeds_b=(0,), k=1), config=TIMOptions()
            )

    def test_query_without_gaps_rejected(self, graph):
        session = ComICSession(graph)
        with pytest.raises(QueryError, match="needs GAPs"):
            session.run(SelfInfMaxQuery(seeds_b=(0,), k=1))
        # ... unless the query carries its own.
        result = session.run(
            SelfInfMaxQuery(seeds_b=(0,), k=1, gaps=INDIFFERENT),
            config=EngineConfig(theta_override=100),
        )
        assert len(result.seeds) == 1

    def test_run_many_and_result_envelope(self, graph):
        session = ComICSession(
            graph, INDIFFERENT, config=EngineConfig(theta_override=250), rng=14
        )
        results = session.run_many(
            [SelfInfMaxQuery(seeds_b=(0,), k=k) for k in (1, 2)]
        )
        assert [len(r.seeds) for r in results] == [1, 2]
        payload = results[0].to_dict()
        assert payload["objective"] == "selfinfmax"
        assert payload["query"]["k"] == 1
        assert "wall_s" in payload["diagnostics"]
        (info,) = session.pool_info()
        assert info.sets == 250
        assert info.regime == "rr-sim+"
        assert info.nbytes > 0
