"""ComICSession × PoolStore: cross-process warm starts without resampling."""

import pytest

from repro.api import ComICSession, EngineConfig, PoolKey, SelfInfMaxQuery
from repro.errors import QueryError
from repro.graph import power_law_digraph, weighted_cascade_probabilities
from repro.models import GAP
from repro.store import PoolStore

GAPS = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
QUERY = SelfInfMaxQuery(seeds_b=(0, 1), k=5)
CONFIG = EngineConfig(engine="imm", max_rr_sets=1500)


@pytest.fixture(scope="module")
def graph():
    return weighted_cascade_probabilities(power_law_digraph(250, rng=9))


class TestWarmStart:
    def test_second_session_samples_nothing(self, graph, tmp_path):
        cold = ComICSession(graph, GAPS, config=CONFIG, store=tmp_path, rng=1)
        first = cold.run(QUERY)
        assert first.diagnostics["rr_sets_sampled"] > 0
        assert cold.stats.store_misses == 1
        assert cold.stats.store_saves >= 1

        warm = ComICSession(graph, GAPS, config=CONFIG, store=tmp_path, rng=77)
        second = warm.run(QUERY)
        assert second.diagnostics["rr_sets_sampled"] == 0
        assert warm.stats.store_hits == 1
        assert warm.stats.rr_sets_sampled == 0
        # identical pool => the deterministic greedy picks identical seeds
        assert second.seeds == first.seeds
        (info,) = warm.pool_info()
        assert info.origin == "store"

    def test_store_accepts_poolstore_instance_and_path(self, graph, tmp_path):
        store = PoolStore(tmp_path / "x")
        session = ComICSession(graph, GAPS, store=store)
        assert session.store is store
        session2 = ComICSession(graph, GAPS, store=str(tmp_path / "y"))
        assert isinstance(session2.store, PoolStore)
        assert ComICSession(graph, GAPS).store is None
        with pytest.raises(QueryError, match="store must be"):
            ComICSession(graph, GAPS, store=42)

    def test_different_graph_invalidates(self, graph, tmp_path):
        ComICSession(graph, GAPS, config=CONFIG, store=tmp_path, rng=1).run(QUERY)
        other = weighted_cascade_probabilities(power_law_digraph(250, rng=10))
        session = ComICSession(other, GAPS, config=CONFIG, store=tmp_path, rng=1)
        result = session.run(QUERY)
        assert result.diagnostics["rr_sets_sampled"] > 0
        assert session.stats.store_invalidations == 1
        assert session.stats.store_hits == 0

    def test_fingerprint_is_in_diagnostics(self, graph, tmp_path):
        session = ComICSession(graph, GAPS, config=CONFIG, rng=1)
        result = session.run(QUERY)
        assert result.diagnostics["graph_fingerprint"] == graph.fingerprint()


class TestWriteThrough:
    def test_evicted_pool_reloads_from_store(self, graph, tmp_path):
        config = EngineConfig(
            engine="imm", max_rr_sets=1500, max_pool_bytes=1
        )  # evict everything after every selection
        session = ComICSession(graph, GAPS, config=config, store=tmp_path, rng=1)
        session.run(QUERY)
        assert session.stats.pool_evictions == 1
        repeat = session.run(QUERY)
        # the cache was empty, but the store answered: nothing resampled
        assert repeat.diagnostics["rr_sets_sampled"] == 0
        assert session.stats.store_hits == 1

    def test_growth_updates_the_entry(self, graph, tmp_path):
        session = ComICSession(
            graph, GAPS, config=CONFIG, store=tmp_path, rng=1
        )
        session.run(QUERY)
        small = session.store.manifest(
            PoolKey.make("rr-sim+", GAPS, (0, 1))
        ).num_sets
        # a tighter epsilon needs more sets: the entry must grow on disk
        session.run(
            QUERY, config=EngineConfig(engine="imm", max_rr_sets=3000, epsilon=0.3)
        )
        grown = session.store.manifest(
            PoolKey.make("rr-sim+", GAPS, (0, 1))
        ).num_sets
        assert grown > small

    def test_write_through_failure_degrades_to_warning(self, graph, tmp_path):
        """A dead store must not discard an already-computed selection."""
        import shutil

        session = ComICSession(graph, GAPS, config=CONFIG, store=tmp_path, rng=1)

        def broken_save(*args, **kwargs):
            raise OSError("disk full")

        session.store.save = broken_save
        with pytest.warns(RuntimeWarning, match="write-through failed"):
            result = session.run(QUERY)
        assert len(result.seeds) == QUERY.k
        assert session.stats.store_saves == 0
        shutil.rmtree(tmp_path, ignore_errors=True)

    def test_save_pools_requires_store(self, graph, tmp_path):
        session = ComICSession(graph, GAPS, config=CONFIG, rng=1)
        with pytest.raises(QueryError, match="no store"):
            session.save_pools()
        stored = ComICSession(graph, GAPS, config=CONFIG, store=tmp_path, rng=1)
        stored.run(QUERY)
        assert stored.save_pools() == 1
