"""Tests for action-log storage and queries."""

import pytest

from repro.errors import ActionLogError
from repro.learning import INFORM, RATE, ActionEvent, ActionLog


def small_log() -> ActionLog:
    log = ActionLog()
    # u1: informed of A at 1, rates A at 2; rates B at 5.
    log.record("u1", "A", INFORM, 1.0)
    log.record("u1", "A", RATE, 2.0)
    log.record("u1", "B", RATE, 5.0)
    # u2: rates B at 1, informed of A at 3 (never rates A).
    log.record("u2", "B", RATE, 1.0)
    log.record("u2", "A", INFORM, 3.0)
    # u3: informed of A only.
    log.record("u3", "A", INFORM, 0.5)
    return log


class TestEvents:
    def test_invalid_action_rejected(self):
        with pytest.raises(ActionLogError, match="unknown action"):
            ActionEvent(time=0.0, user="u", item="i", action="buy")

    def test_non_finite_time_rejected(self):
        with pytest.raises(ActionLogError, match="non-finite"):
            ActionEvent(time=float("nan"), user="u", item="i", action=RATE)

    def test_events_ordered_by_time(self):
        early = ActionEvent(time=1.0, user="u", item="i", action=RATE)
        late = ActionEvent(time=2.0, user="u", item="i", action=RATE)
        assert early < late


class TestQueries:
    def test_raters_and_informed(self):
        log = small_log()
        assert log.raters("A") == {"u1"}
        assert log.informed("A") == {"u1", "u2", "u3"}
        assert log.raters("B") == {"u1", "u2"}

    def test_rating_implies_inform(self):
        log = ActionLog()
        log.record("u", "X", RATE, 4.0)
        assert log.inform_time("u", "X") == 4.0
        assert log.informed("X") == {"u"}

    def test_earliest_event_wins(self):
        log = ActionLog()
        log.record("u", "X", RATE, 4.0)
        log.record("u", "X", RATE, 2.0)
        log.record("u", "X", INFORM, 1.0)
        assert log.rate_time("u", "X") == 2.0
        assert log.inform_time("u", "X") == 1.0

    def test_rated_before_rating(self):
        log = small_log()
        # u2 rated B (t=1) and never rated A; u1 rated B after A.
        assert log.rated_before_rating("B", "A") == set()
        assert log.rated_before_rating("A", "B") == {"u1"}

    def test_rated_before_informed(self):
        log = small_log()
        # u2 rated B at 1 and was informed of A at 3.
        assert log.rated_before_informed("B", "A") == {"u2"}

    def test_missing_lookups_return_none(self):
        log = small_log()
        assert log.rate_time("u3", "A") is None
        assert log.inform_time("nobody", "A") is None

    def test_users_items_len(self):
        log = small_log()
        assert log.users == {"u1", "u2", "u3"}
        assert log.items == {"A", "B"}
        assert len(log) == 6

    def test_events_of_user(self):
        log = small_log()
        events = set(log.events_of_user("u1"))
        assert ("A", RATE, 2.0) in events
        assert ("A", INFORM, 1.0) in events
