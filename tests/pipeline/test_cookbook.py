"""docs/pipeline.md SQL cookbook: every fence executes on a real run DB."""

import pathlib
import re
import sqlite3

import pytest

from repro.pipeline import DEBUG_DB_FILE

DOC = pathlib.Path(__file__).parent.parent.parent / "docs" / "pipeline.md"
_SQL_FENCE = re.compile(r"```sql\n(.*?)```", re.DOTALL)


def cookbook_queries():
    return _SQL_FENCE.findall(DOC.read_text(encoding="utf-8"))


def test_cookbook_is_not_empty():
    assert len(cookbook_queries()) >= 5


@pytest.mark.parametrize(
    "index", range(len(cookbook_queries())), ids=lambda i: f"fence{i}"
)
def test_query_executes_on_real_run_db(index, pipeline_runs):
    """Each fence is a single SELECT runnable against a live debug DB."""
    workdir, _cold, _warm = pipeline_runs
    sql = cookbook_queries()[index]
    conn = sqlite3.connect(workdir / DEBUG_DB_FILE)
    try:
        cursor = conn.execute(sql)
        rows = cursor.fetchall()
        assert cursor.description is not None  # it's a SELECT, not DDL
    finally:
        conn.close()
    assert isinstance(rows, list)


def test_health_query_sees_all_stages(pipeline_runs):
    """Fence #0 (latest-run health) lists every stage of the latest run."""
    workdir, _cold, warm = pipeline_runs
    conn = sqlite3.connect(workdir / DEBUG_DB_FILE)
    try:
        rows = conn.execute(cookbook_queries()[0]).fetchall()
    finally:
        conn.close()
    by_stage = {row[0]: row[1] for row in rows}
    assert set(by_stage) == {"fit_edges", "fit_gap", "query"}


def test_ci_violation_query_is_clean_on_healthy_fit(pipeline_runs):
    """The CI-violation fence flags nothing for the well-sampled fixture."""
    workdir, _cold, _warm = pipeline_runs
    violation_sql = next(
        sql for sql in cookbook_queries() if "inside_ci = 0" in sql
    )
    conn = sqlite3.connect(workdir / DEBUG_DB_FILE)
    try:
        rows = conn.execute(violation_sql).fetchall()
    finally:
        conn.close()
    assert rows == []
