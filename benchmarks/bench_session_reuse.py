"""Cross-query RR-pool reuse benchmark -> BENCH_session.json.

Quantifies the ISSUE-2 acceptance claim: a k-sweep (k in {10..50}) served
by one :class:`~repro.api.session.ComICSession` samples strictly fewer
RR-sets than the same five queries answered by independent solver calls
(fresh session per query), at matching seed quality.  An epsilon sweep
shows the same effect for accuracy re-tuning: tight-epsilon pools are
reused outright by looser settings.

For each sweep the report records RR-sets sampled, wall seconds, the pool
cache stats, and the Monte-Carlo spread of the largest-k seed sets from
both strategies (parity check).

Usage::

    PYTHONPATH=src python benchmarks/bench_session_reuse.py [--quick] \
        [--nodes 4000] [--engine tim|imm] [--output BENCH_session.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.api import ComICSession, EngineConfig, SelfInfMaxQuery
from repro.graph.generators import power_law_digraph
from repro.graph.weights import weighted_cascade_probabilities
from repro.models.gaps import GAP
from repro.models.spread import estimate_spread

GAPS = GAP(q_a=0.3, q_a_given_b=0.75, q_b=0.5, q_b_given_a=0.5)


def run_sweep(graph, queries, configs, *, shared: bool, engine: str) -> dict:
    """Run ``queries[i]`` under ``configs[i]``; one session or one each.

    Every ``run`` call passes its explicit per-query config, so the
    sessions need no default config of their own.
    """
    session = ComICSession(graph, GAPS, rng=11) if shared else None
    started = time.perf_counter()
    seeds_by_query = []
    sampled = 0
    for query, config in zip(queries, configs):
        if not shared:
            session = ComICSession(graph, GAPS, rng=11)
        result = session.run(query, config=config)
        seeds_by_query.append(result.seeds)
        if not shared:
            sampled += session.stats.rr_sets_sampled
    if shared:
        sampled = session.stats.rr_sets_sampled
    wall = time.perf_counter() - started
    return {
        "rr_sets_sampled": sampled,
        "wall_s": round(wall, 3),
        "pool_stats": session.stats.as_dict() if shared else None,
        "seeds_last": seeds_by_query[-1],
    }


def spread_of(graph, seeds, seeds_b, runs, rng):
    est = estimate_spread(graph, GAPS, seeds, seeds_b, runs=runs, rng=rng)
    return round(est.mean, 2), round(est.stderr, 2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=4000)
    parser.add_argument("--engine", choices=("tim", "imm"), default="tim")
    parser.add_argument("--max-rr-sets", type=int, default=30_000)
    parser.add_argument("--mc-runs", type=int, default=300)
    parser.add_argument("--quick", action="store_true",
                        help="smaller graph / budgets for CI")
    parser.add_argument("--output", default="BENCH_session.json")
    args = parser.parse_args(argv)

    if args.quick:
        args.nodes = min(args.nodes, 1500)
        args.max_rr_sets = min(args.max_rr_sets, 8000)
        args.mc_runs = min(args.mc_runs, 120)

    graph = weighted_cascade_probabilities(
        power_law_digraph(args.nodes, exponent=2.16, average_degree=8.0,
                          probability=0.2, rng=1)
    )
    seeds_b = list(range(10))
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges; "
          f"engine={args.engine}", flush=True)

    report: dict = {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "engine": args.engine,
        "sweeps": {},
    }

    # ---- k-sweep: one pool serves every budget --------------------------
    ks = (10, 20, 30, 40, 50)
    queries = [SelfInfMaxQuery(seeds_b=tuple(seeds_b), k=k) for k in ks]
    config = EngineConfig(engine=args.engine, max_rr_sets=args.max_rr_sets)
    configs = [config] * len(ks)
    independent = run_sweep(graph, queries, configs, shared=False,
                            engine=args.engine)
    shared = run_sweep(graph, queries, configs, shared=True,
                       engine=args.engine)
    parity = {
        "independent": spread_of(graph, independent["seeds_last"], seeds_b,
                                 args.mc_runs, 5),
        "shared": spread_of(graph, shared["seeds_last"], seeds_b,
                            args.mc_runs, 5),
    }
    saving = 1.0 - shared["rr_sets_sampled"] / max(
        independent["rr_sets_sampled"], 1
    )
    report["sweeps"]["k_sweep"] = {
        "ks": list(ks),
        "independent": independent,
        "shared": shared,
        "spread_at_max_k": parity,
        "sampling_saved_pct": round(100 * saving, 1),
    }
    print(f"k-sweep {list(ks)}: independent sampled "
          f"{independent['rr_sets_sampled']} RR-sets in "
          f"{independent['wall_s']}s; shared session sampled "
          f"{shared['rr_sets_sampled']} in {shared['wall_s']}s "
          f"({100 * saving:.1f}% fewer samples)", flush=True)
    print(f"  spread parity at k={ks[-1]}: "
          f"independent {parity['independent'][0]} ± "
          f"{parity['independent'][1]}, shared {parity['shared'][0]} ± "
          f"{parity['shared'][1]}", flush=True)
    if shared["rr_sets_sampled"] >= independent["rr_sets_sampled"]:
        raise SystemExit(
            "ACCEPTANCE FAILURE: shared session must sample strictly fewer "
            f"RR-sets ({shared['rr_sets_sampled']} vs "
            f"{independent['rr_sets_sampled']})"
        )

    # ---- epsilon-sweep: tighter pools serve looser queries --------------
    epsilons = (0.3, 0.5, 0.75, 1.0)
    k = ks[1]
    eps_queries = [SelfInfMaxQuery(seeds_b=tuple(seeds_b), k=k)
                   for _ in epsilons]
    eps_configs = [
        EngineConfig(engine=args.engine, epsilon=eps,
                     max_rr_sets=args.max_rr_sets)
        for eps in epsilons
    ]
    independent_e = run_sweep(graph, eps_queries, eps_configs, shared=False,
                              engine=args.engine)
    shared_e = run_sweep(graph, eps_queries, eps_configs, shared=True,
                         engine=args.engine)
    saving_e = 1.0 - shared_e["rr_sets_sampled"] / max(
        independent_e["rr_sets_sampled"], 1
    )
    report["sweeps"]["eps_sweep"] = {
        "epsilons": list(epsilons),
        "k": k,
        "independent": independent_e,
        "shared": shared_e,
        "sampling_saved_pct": round(100 * saving_e, 1),
    }
    print(f"eps-sweep {list(epsilons)} at k={k}: independent sampled "
          f"{independent_e['rr_sets_sampled']}, shared sampled "
          f"{shared_e['rr_sets_sampled']} ({100 * saving_e:.1f}% fewer)",
          flush=True)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
