"""Tests for the product-dependent edge-probability extension (§8)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import DiGraph, path_digraph
from repro.models import (
    GAP,
    exact_spread,
    simulate,
    simulate_product_dependent,
)
from repro.models.sources import WorldSource
from repro.rng import make_rng


def two_prob_graphs():
    base = path_digraph(3)
    graph_a = base.with_probabilities(np.array([1.0, 1.0]))
    graph_b = base.with_probabilities(np.array([0.0, 0.0]))
    return graph_a, graph_b


class TestValidation:
    def test_topology_mismatch_rejected(self):
        with pytest.raises(GraphError, match="identical topology"):
            simulate_product_dependent(
                path_digraph(3), path_digraph(4), GAP.independent(), [0], [0]
            )

    def test_different_edges_rejected(self):
        a = DiGraph.from_edges(3, [(0, 1, 1.0)])
        b = DiGraph.from_edges(3, [(0, 2, 1.0)])
        with pytest.raises(GraphError, match="identical topology"):
            simulate_product_dependent(a, b, GAP.independent(), [0], [0])


class TestDynamics:
    def test_item_b_blocked_on_its_own_channel(self):
        """p_A = 1, p_B = 0: A spreads down the path, B stays at its seed."""
        graph_a, graph_b = two_prob_graphs()
        out = simulate_product_dependent(
            graph_a, graph_b, GAP.independent(), [0], [0], rng=0
        )
        assert out.num_a_adopted == 3
        assert out.num_b_adopted == 1

    def test_reduces_to_comic_when_either_item_absent(self):
        """With no B-seeds the model marginally equals base Com-IC on p_A."""
        graph_a, graph_b = two_prob_graphs()
        gaps = GAP(q_a=0.5, q_a_given_b=0.5, q_b=0.0, q_b_given_a=0.0)
        gen = make_rng(3)
        runs = 4000
        total = 0
        for _ in range(runs):
            out = simulate_product_dependent(
                graph_a, graph_b, gaps, [0], [], rng=gen
            )
            total += out.num_a_adopted
        expected, _ = exact_spread(graph_a, gaps, [0], [])
        assert total / runs == pytest.approx(expected, abs=0.06)

    def test_independent_channels_decouple_items(self):
        """Statistical check: with independent items, each item's adoption
        frequency matches base Com-IC run on its own graph."""
        base = path_digraph(3)
        graph_a = base.with_probabilities(np.array([0.8, 0.8]))
        graph_b = base.with_probabilities(np.array([0.3, 0.3]))
        gaps = GAP.independent(1.0, 1.0)
        gen = make_rng(5)
        runs = 4000
        count_a = np.zeros(3)
        count_b = np.zeros(3)
        for _ in range(runs):
            out = simulate_product_dependent(
                graph_a, graph_b, gaps, [0], [0], rng=gen
            )
            count_a += out.a_adopted
            count_b += out.b_adopted
        exact_a, _ = (np.array([1.0, 0.8, 0.64]), None)
        exact_b = np.array([1.0, 0.3, 0.09])
        tol = 4.5 / np.sqrt(runs)
        assert np.all(np.abs(count_a / runs - exact_a) < tol)
        assert np.all(np.abs(count_b / runs - exact_b) < tol)

    def test_world_source_reusable(self):
        graph_a, graph_b = two_prob_graphs()
        world = WorldSource(7)
        gaps = GAP.independent(0.7, 0.7)
        first = simulate_product_dependent(
            graph_a, graph_b, gaps, [0], [0], source=world
        )
        second = simulate_product_dependent(
            graph_a, graph_b, gaps, [0], [0], source=world
        )
        assert np.array_equal(first.a_adopted, second.a_adopted)
        assert np.array_equal(first.b_adopted, second.b_adopted)

    def test_equal_probabilities_marginals_match_base_comic(self):
        """When p_A = p_B, per-item marginals agree with base Com-IC even
        though the joint coupling differs (two coins vs one)."""
        graph = path_digraph(3, probability=0.6)
        gaps = GAP(0.4, 0.9, 0.5, 0.8)
        gen = make_rng(11)
        runs = 5000
        count_a = np.zeros(3)
        for _ in range(runs):
            out = simulate_product_dependent(graph, graph, gaps, [0], [], rng=gen)
            count_a += out.a_adopted
        from repro.models import exact_adoption_probabilities

        exact_a, _ = exact_adoption_probabilities(graph, gaps, [0], [])
        tol = 4.5 / np.sqrt(runs)
        assert np.all(np.abs(count_a / runs - exact_a) < tol)
