"""Lemma 1: the stochastic Com-IC process and the possible-world model
induce the same distribution of (A-adopted, B-adopted) configurations.

The engine realises both views through different randomness sources, so we
compare per-node adoption frequencies of :class:`CoinSource` runs against
(i) lazily-sampled :class:`WorldSource` runs and (ii) eagerly-sampled
:class:`FrozenWorldSource` runs, and both against the exact oracle.
"""

import numpy as np
import pytest

from repro.graph import DiGraph
from repro.models import GAP, exact_adoption_probabilities, simulate
from repro.models.possible_world import FrozenWorldSource, sample_possible_world
from repro.models.sources import CoinSource, WorldSource
from repro.rng import make_rng

RUNS = 4000


def fixture_graph() -> DiGraph:
    # A small diamond-with-tail graph mixing fan-in, fan-out and depth.
    return DiGraph.from_edges(
        5,
        [
            (0, 1, 0.8),
            (0, 2, 0.6),
            (1, 3, 0.7),
            (2, 3, 0.9),
            (3, 4, 0.5),
        ],
    )


GAP_CASES = [
    pytest.param(GAP(0.3, 0.8, 0.5, 0.9), id="mutual-complementarity"),
    pytest.param(GAP(0.8, 0.2, 0.7, 0.3), id="mutual-competition"),
    pytest.param(GAP(0.4, 0.9, 0.6, 0.6), id="one-way-complementarity"),
    pytest.param(GAP.pure_competition(), id="pure-competition"),
    pytest.param(GAP.independent(0.7, 0.5), id="independent"),
]


def frequencies(graph, gaps, seeds_a, seeds_b, make_source, runs=RUNS):
    gen = make_rng(12345)
    count_a = np.zeros(graph.num_nodes)
    count_b = np.zeros(graph.num_nodes)
    for _ in range(runs):
        out = simulate(graph, gaps, seeds_a, seeds_b, source=make_source(gen))
        count_a += out.a_adopted
        count_b += out.b_adopted
    return count_a / runs, count_b / runs


@pytest.mark.parametrize("gaps", GAP_CASES)
def test_coin_process_matches_exact_oracle(gaps):
    graph = fixture_graph()
    seeds_a, seeds_b = [0], [1]
    exact_a, exact_b = exact_adoption_probabilities(graph, gaps, seeds_a, seeds_b)
    freq_a, freq_b = frequencies(graph, gaps, seeds_a, seeds_b, CoinSource)
    tolerance = 4.5 / np.sqrt(RUNS)  # ~4.5 sigma of a Bernoulli frequency
    assert np.all(np.abs(freq_a - exact_a) < tolerance)
    assert np.all(np.abs(freq_b - exact_b) < tolerance)


@pytest.mark.parametrize("gaps", GAP_CASES)
def test_lazy_world_matches_exact_oracle(gaps):
    graph = fixture_graph()
    seeds_a, seeds_b = [0], [1]
    exact_a, exact_b = exact_adoption_probabilities(graph, gaps, seeds_a, seeds_b)
    freq_a, freq_b = frequencies(graph, gaps, seeds_a, seeds_b, WorldSource)
    tolerance = 4.5 / np.sqrt(RUNS)
    assert np.all(np.abs(freq_a - exact_a) < tolerance)
    assert np.all(np.abs(freq_b - exact_b) < tolerance)


def test_eager_world_matches_exact_oracle():
    graph = fixture_graph()
    gaps = GAP(0.3, 0.8, 0.5, 0.9)
    seeds_a, seeds_b = [0], [1]
    exact_a, exact_b = exact_adoption_probabilities(graph, gaps, seeds_a, seeds_b)

    gen = make_rng(777)
    count_a = np.zeros(graph.num_nodes)
    count_b = np.zeros(graph.num_nodes)
    for _ in range(RUNS):
        world = sample_possible_world(graph, rng=gen)
        out = simulate(graph, gaps, seeds_a, seeds_b, source=FrozenWorldSource(world))
        count_a += out.a_adopted
        count_b += out.b_adopted
    tolerance = 4.5 / np.sqrt(RUNS)
    assert np.all(np.abs(count_a / RUNS - exact_a) < tolerance)
    assert np.all(np.abs(count_b / RUNS - exact_b) < tolerance)


def test_dual_seed_overlap_equivalence():
    graph = fixture_graph()
    gaps = GAP.pure_competition()
    seeds_a, seeds_b = [0], [0]  # overlapping seeds exercise the tau coin
    exact_a, exact_b = exact_adoption_probabilities(graph, gaps, seeds_a, seeds_b)
    freq_a, freq_b = frequencies(graph, gaps, seeds_a, seeds_b, WorldSource)
    tolerance = 4.5 / np.sqrt(RUNS)
    assert np.all(np.abs(freq_a - exact_a) < tolerance)
    assert np.all(np.abs(freq_b - exact_b) < tolerance)
