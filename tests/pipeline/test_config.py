"""PipelineConfig: validation, JSON round-trips, content digests."""

import json

import pytest

from repro.api import EngineConfig, SelfInfMaxQuery
from repro.errors import PipelineError
from repro.pipeline import PipelineConfig
from repro.pipeline.config import canonical_json, digest_of

from .conftest import make_config


class TestValidation:
    def test_defaults_are_valid(self):
        config = PipelineConfig()
        assert config.edge_backend == "em"
        assert config.queries == ()

    def test_unknown_backend_rejected(self):
        with pytest.raises(PipelineError, match="edge_backend"):
            PipelineConfig(edge_backend="magic")

    def test_equal_items_rejected(self):
        with pytest.raises(PipelineError, match="must differ"):
            PipelineConfig(item_a="x", item_b="x")

    def test_bool_item_rejected(self):
        with pytest.raises(PipelineError, match="item_a"):
            PipelineConfig(item_a=True)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"em_max_iterations": 0},
            {"em_tolerance": -1e-9},
            {"em_initial": 0.0},
            {"em_initial": 1.5},
            {"goyal_window": 0.0},
            {"goyal_smoothing": -0.5},
            {"seed": "seven"},
            {"engine": {"engine": "imm"}},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(PipelineError):
            PipelineConfig(**kwargs)

    def test_non_query_object_rejected(self):
        with pytest.raises(PipelineError, match="queries\\[0\\]"):
            PipelineConfig(queries=({"objective": "selfinfmax"},))

    def test_query_list_coerced_to_tuple(self):
        query = SelfInfMaxQuery(seeds_b=(0,), k=2)
        config = PipelineConfig(queries=[query])
        assert config.queries == (query,)


class TestRoundTrip:
    def test_json_round_trip_equality(self):
        config = make_config(seed=42)
        assert PipelineConfig.from_json(config.to_json()) == config

    def test_to_dict_is_plain_json(self):
        payload = make_config().to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_unknown_field_rejected(self):
        payload = PipelineConfig().to_dict()
        payload["warp_factor"] = 9
        with pytest.raises(PipelineError, match="warp_factor"):
            PipelineConfig.from_dict(payload)

    def test_queries_rebuilt_from_payloads(self):
        config = make_config()
        rebuilt = PipelineConfig.from_dict(config.to_dict())
        assert rebuilt.queries == config.queries

    def test_bad_query_payload_rejected(self):
        payload = PipelineConfig().to_dict()
        payload["queries"] = "selfinfmax"
        with pytest.raises(PipelineError, match="queries"):
            PipelineConfig.from_dict(payload)

    def test_engine_rebuilt(self):
        config = make_config(engine=EngineConfig(engine="imm"))
        rebuilt = PipelineConfig.from_dict(config.to_dict())
        assert rebuilt.engine == config.engine


class TestDigest:
    def test_digest_stable_across_round_trip(self):
        config = make_config()
        assert PipelineConfig.from_json(config.to_json()).digest() == config.digest()

    def test_digest_changes_with_any_field(self):
        assert make_config(seed=1).digest() != make_config(seed=2).digest()
        assert (
            make_config(em_max_iterations=10).digest()
            != make_config(em_max_iterations=11).digest()
        )

    def test_canonical_json_is_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )
        assert digest_of({"b": 1, "a": 2}) == digest_of({"a": 2, "b": 1})
        assert len(digest_of({})) == 16
