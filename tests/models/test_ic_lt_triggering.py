"""Tests for the classic single-item substrates: IC, LT, Triggering."""

import numpy as np
import pytest

from repro.errors import GraphError, SeedSetError
from repro.graph import DiGraph, path_digraph, star_digraph
from repro.models import (
    GAP,
    estimate_spread,
    normalize_lt_weights,
    simulate,
    simulate_ic,
    simulate_lt,
    simulate_triggering,
)
from repro.models.ic import gather_out_edges, ic_spread
from repro.models.triggering import ic_trigger_sampler, lt_trigger_sampler
from repro.rng import make_rng


class TestGatherOutEdges:
    def test_gathers_all_frontier_edges(self):
        g = DiGraph.from_edges(4, [(0, 1, 0.1), (0, 2, 0.2), (1, 3, 0.3)])
        targets, probs, eids = gather_out_edges(g, np.array([0, 1]))
        assert sorted(targets.tolist()) == [1, 2, 3]
        assert len(probs) == len(eids) == 3

    def test_empty_frontier(self):
        g = path_digraph(3)
        targets, probs, eids = gather_out_edges(g, np.array([], dtype=np.int64))
        assert targets.size == 0

    def test_frontier_without_out_edges(self):
        g = path_digraph(3)
        targets, _, _ = gather_out_edges(g, np.array([2]))
        assert targets.size == 0


class TestIC:
    def test_deterministic_cascade(self):
        active = simulate_ic(path_digraph(5), [0], rng=0)
        assert active.all()

    def test_blocked_graph(self):
        g = path_digraph(5, probability=0.0)
        active = simulate_ic(g, [0], rng=0)
        assert active.sum() == 1

    def test_seed_validation(self):
        with pytest.raises(SeedSetError):
            simulate_ic(path_digraph(3), [9], rng=0)

    def test_spread_estimate_on_bernoulli_path(self):
        g = path_digraph(3, probability=0.5)
        est = ic_spread(g, [0], runs=4000, rng=0)
        assert est.mean == pytest.approx(1.75, abs=5 * est.stderr)

    def test_matches_comic_with_classic_gaps(self):
        """Com-IC with q_{A|∅}=1 and B absent degenerates to IC (§3)."""
        g = DiGraph.from_edges(
            5, [(0, 1, 0.6), (0, 2, 0.4), (1, 3, 0.7), (2, 3, 0.5), (3, 4, 0.8)]
        )
        gen = make_rng(0)
        runs = 4000
        ic_total = sum(simulate_ic(g, [0], rng=gen).sum() for _ in range(runs))
        comic = estimate_spread(g, GAP.classic_ic(), [0], [], runs=runs, rng=1)
        assert ic_total / runs == pytest.approx(comic.mean, abs=6 * comic.stderr)


class TestLT:
    def test_normalize_weights(self):
        g = DiGraph.from_edges(3, [(0, 2, 0.8), (1, 2, 0.8)])
        normalized = normalize_lt_weights(g)
        assert normalized.edge_probability(0, 2) == pytest.approx(0.5)

    def test_normalize_denormal_weight_regression(self):
        """1/total used to overflow to inf for denormal weights (found by
        hypothesis); the ratio form keeps the result exactly 1."""
        g = DiGraph.from_edges(2, [(0, 1, 5e-324)])
        assert normalize_lt_weights(g).edge_probability(0, 1) == 1.0

    def test_normalize_zero_weight_untouched(self):
        g = DiGraph.from_edges(2, [(0, 1, 0.0)])
        assert normalize_lt_weights(g).edge_probability(0, 1) == 0.0

    def test_rejects_overweight_instance(self):
        g = DiGraph.from_edges(3, [(0, 2, 0.8), (1, 2, 0.8)])
        with pytest.raises(GraphError, match="incoming weights"):
            simulate_lt(g, [0], rng=0)

    def test_deterministic_activation_with_weight_one(self):
        g = path_digraph(4)  # every edge weight 1 = full in-weight
        active = simulate_lt(g, [0], rng=0)
        assert active.all()

    def test_threshold_blocks_partial_weight(self):
        # Node 2's in-weight from node 0 alone is 0.5: activates only when
        # threshold <= 0.5, i.e. about half the runs.
        g = DiGraph.from_edges(3, [(0, 2, 0.5), (1, 2, 0.5)])
        gen = make_rng(0)
        hits = sum(simulate_lt(g, [0], rng=gen)[2] for _ in range(2000))
        assert 850 < hits < 1150

    def test_seed_validation(self):
        with pytest.raises(SeedSetError):
            simulate_lt(path_digraph(3), [-2], rng=0)


class TestTriggering:
    def test_ic_sampler_matches_ic(self):
        g = DiGraph.from_edges(
            5, [(0, 1, 0.6), (0, 2, 0.4), (1, 3, 0.7), (2, 3, 0.5), (3, 4, 0.8)]
        )
        gen1, gen2 = make_rng(10), make_rng(11)
        runs = 4000
        trig = sum(
            simulate_triggering(g, [0], sampler=ic_trigger_sampler, rng=gen1).sum()
            for _ in range(runs)
        )
        ic = sum(simulate_ic(g, [0], rng=gen2).sum() for _ in range(runs))
        assert trig / runs == pytest.approx(ic / runs, abs=0.1)

    def test_lt_sampler_matches_lt(self):
        g = normalize_lt_weights(
            DiGraph.from_edges(4, [(0, 2, 0.9), (1, 2, 0.9), (2, 3, 1.0)])
        )
        gen1, gen2 = make_rng(20), make_rng(21)
        runs = 4000
        trig = sum(
            simulate_triggering(g, [0], sampler=lt_trigger_sampler, rng=gen1).sum()
            for _ in range(runs)
        )
        lt = sum(simulate_lt(g, [0], rng=gen2).sum() for _ in range(runs))
        assert trig / runs == pytest.approx(lt / runs, abs=0.1)

    def test_deterministic_star(self):
        active = simulate_triggering(star_digraph(5), [0], rng=0)
        assert active.all()

    def test_seed_validation(self):
        with pytest.raises(SeedSetError):
            simulate_triggering(path_digraph(3), [7], rng=0)
