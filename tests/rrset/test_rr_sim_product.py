"""Tests for RR-SIM under product-dependent edge probabilities."""

import numpy as np
import pytest

from repro.errors import GraphError, RegimeError
from repro.graph import DiGraph
from repro.models import GAP, simulate_product_dependent
from repro.rng import make_rng
from repro.rrset import RRSimProductGenerator, TIMOptions, general_tim


def two_views() -> tuple[DiGraph, DiGraph]:
    """One topology; A spreads easily left-to-right, B only via 0->2->3."""
    edges = [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]
    graph_a = DiGraph.from_edges(
        5, [(u, v, p) for (u, v), p in zip(edges, [0.8, 0.5, 0.7, 0.6, 0.9])]
    )
    graph_b = DiGraph.from_edges(
        5, [(u, v, p) for (u, v), p in zip(edges, [0.0, 0.9, 0.0, 0.9, 0.2])]
    )
    return graph_a, graph_b

GAPS = GAP(q_a=0.3, q_a_given_b=0.9, q_b=0.7, q_b_given_a=0.7)


class TestValidation:
    def test_topology_mismatch_rejected(self):
        graph_a = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        graph_b = DiGraph.from_edges(3, [(0, 1), (0, 2)])
        with pytest.raises(GraphError):
            RRSimProductGenerator(graph_a, graph_b, GAPS, [0])

    def test_regime_enforced(self):
        graph_a, graph_b = two_views()
        not_one_way = GAP(q_a=0.3, q_a_given_b=0.9, q_b=0.4, q_b_given_a=0.8)
        with pytest.raises(RegimeError):
            RRSimProductGenerator(graph_a, graph_b, not_one_way, [0])

    def test_seed_range_checked(self):
        graph_a, graph_b = two_views()
        with pytest.raises(RegimeError):
            RRSimProductGenerator(graph_a, graph_b, GAPS, [99])


class TestRRSets:
    def test_root_always_included(self):
        graph_a, graph_b = two_views()
        generator = RRSimProductGenerator(graph_a, graph_b, GAPS, [0])
        gen = make_rng(1)
        for _ in range(50):
            rr = generator.generate(rng=gen, root=3)
            assert 3 in rr.tolist()

    def test_nodes_unique(self):
        graph_a, graph_b = two_views()
        generator = RRSimProductGenerator(graph_a, graph_b, GAPS, [0])
        gen = make_rng(2)
        for _ in range(100):
            rr = generator.generate(rng=gen).tolist()
            assert len(rr) == len(set(rr))

    def test_activation_equivalence_statistical(self):
        """P[{u} activates root] from the forward simulator must match the
        frequency of u in RR-sets of that root."""
        graph_a, graph_b = two_views()
        generator = RRSimProductGenerator(graph_a, graph_b, GAPS, seeds_b=[0])
        root, seed = 4, 0
        draws = 8000
        gen = make_rng(3)
        rr_hits = sum(
            seed in generator.generate(rng=gen, root=root).tolist()
            for _ in range(draws)
        )
        gen = make_rng(4)
        mc_hits = sum(
            bool(
                simulate_product_dependent(
                    graph_a, graph_b, GAPS, [seed], [0], rng=gen
                ).a_adopted[root]
            )
            for _ in range(draws)
        )
        tolerance = 4.5 / np.sqrt(draws) * 2
        assert rr_hits / draws == pytest.approx(mc_hits / draws, abs=tolerance)

    def test_b_edges_gate_the_boost(self):
        """With q_{A|∅}=0, A needs B everywhere; B-dead edges must shrink
        RR-sets relative to B-live edges."""
        edges = [(0, 1), (1, 2)]
        graph_a = DiGraph.from_edges(3, edges, default_probability=1.0)
        b_live = DiGraph.from_edges(3, edges, default_probability=1.0)
        b_dead = DiGraph.from_edges(
            3, [(u, v, 0.0) for u, v in edges]
        )
        gaps = GAP(q_a=0.0, q_a_given_b=1.0, q_b=1.0, q_b_given_a=1.0)
        gen = make_rng(5)
        rich = RRSimProductGenerator(graph_a, b_live, gaps, [0])
        poor = RRSimProductGenerator(graph_a, b_dead, gaps, [0])
        rich_sizes = [rich.generate(rng=gen, root=2).size for _ in range(50)]
        poor_sizes = [poor.generate(rng=gen, root=2).size for _ in range(50)]
        assert np.mean(rich_sizes) > np.mean(poor_sizes)
        # With B dead, node 2 is never boostable: RR-set is just the root.
        assert all(size == 1 for size in poor_sizes)


class TestEndToEnd:
    def test_tim_runs_over_product_generator(self):
        graph_a, graph_b = two_views()
        generator = RRSimProductGenerator(graph_a, graph_b, GAPS, [0])
        result = general_tim(
            generator, 2, options=TIMOptions(theta_override=600), rng=6
        )
        assert len(result.seeds) == 2
        assert len(set(result.seeds)) == 2
