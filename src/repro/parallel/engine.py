"""`ParallelEngine`: multiprocess sharded RR-set generation.

RR-set sampling is embarrassingly parallel — every set draws an
independent possible world — yet the batched kernels are single-core
(numpy releases the GIL but one process drives one sweep at a time).
This engine shards a ``generate_batch`` request across worker
*processes*: each worker holds a pickled copy of the wrapped
:class:`~repro.rrset.base.RRSetGenerator` (shipped once, at pool
start-up), runs the regime's existing vectorized kernel on its shard
with its own :class:`numpy.random.SeedSequence` child stream, and
returns the shard's flat CSR columns; the parent folds shards back into
one :class:`~repro.rrset.pool.RRSetPool` with the O(total-size) merge
kernel (:meth:`RRSetPool.extend_pool`).

Design points:

* **It is itself an** :class:`RRSetGenerator` wrapping another one, so
  TIM, IMM and :class:`~repro.api.session.ComICSession` scale across
  cores with zero changes — IMM's incremental top-ups simply arrive as
  sharded batches.  The per-root oracle :meth:`generate` delegates to
  the wrapped generator in-process.
* **Spawn-safe**: workers use the ``spawn`` start method (no fork-time
  state smuggling, works identically on macOS/Windows), receive the
  generator via a pool initializer, and stay resident across calls, so
  interpreter start-up is paid once per worker, not per batch.
* **Deterministic given the seed**: shard ``i`` of a call always draws
  from child stream ``i`` of a sequence derived from the caller's rng,
  and shards are merged in shard order — the output pool is a pure
  function of (generator, workers, rng state), independent of worker
  scheduling.  It is *not* the same stream layout as a serial
  ``generate_batch`` call, so parallel and serial pools are equal in
  distribution, not element-wise.
* **Graceful degradation**: requests smaller than
  ``min_batch_per_worker * 2`` run serially in-process (IPC would beat
  the savings), and a broken worker pool (e.g. a worker OOM-killed)
  permanently falls back to the serial path with a warning instead of
  failing the query.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from typing import Optional

import numpy as np

from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator
from repro.rrset.pool import RRSetPool

#: per-process generator replica, installed by :func:`_initialize_worker`.
_WORKER_GENERATOR: Optional[RRSetGenerator] = None


def _initialize_worker(payload: bytes) -> None:
    """Worker-pool initializer: unpickle the generator replica once."""
    global _WORKER_GENERATOR
    _WORKER_GENERATOR = pickle.loads(payload)


def _generate_shard(
    task: tuple[int, Optional[np.ndarray], np.random.SeedSequence],
) -> tuple[np.ndarray, np.ndarray]:
    """Run one shard in a worker; returns the shard pool's flat columns."""
    count, roots, seed_seq = task
    rng = np.random.default_rng(seed_seq)
    pool = _WORKER_GENERATOR.generate_batch(count, rng=rng, roots=roots)
    return np.asarray(pool.nodes), np.asarray(pool.indptr)


def _worker_ready(deadline: float) -> int:
    """Warm-up task: hold the worker until ``deadline`` (wall clock)."""
    time.sleep(max(0.0, deadline - time.time()))
    return os.getpid()


class ParallelEngine(RRSetGenerator):
    """Wrap an :class:`RRSetGenerator` with a persistent worker pool.

    ``workers`` is the number of worker processes; ``workers <= 1`` makes
    the engine a transparent serial pass-through.  Workers are spawned
    lazily on the first parallel batch (or eagerly via :meth:`warm_up`)
    and live until :meth:`close` — use the engine as a context manager
    when its lifetime is scoped.  Not picklable (it owns OS processes).
    """

    def __init__(
        self,
        generator: RRSetGenerator,
        workers: int,
        *,
        min_batch_per_worker: int = 256,
    ) -> None:
        if isinstance(generator, ParallelEngine):
            raise ValueError("refusing to nest ParallelEngine in ParallelEngine")
        super().__init__(generator.graph)
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if min_batch_per_worker < 1:
            raise ValueError(
                f"min_batch_per_worker must be >= 1, got {min_batch_per_worker}"
            )
        self._inner = generator
        self._workers = workers
        self._min_batch = int(min_batch_per_worker)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._broken = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def inner(self) -> RRSetGenerator:
        """The wrapped serial generator."""
        return self._inner

    @property
    def workers(self) -> int:
        """Configured worker-process count."""
        return self._workers

    # ------------------------------------------------------------------
    # Worker-pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=get_context("spawn"),
                initializer=_initialize_worker,
                initargs=(pickle.dumps(self._inner),),
            )
        return self._executor

    def warm_up(self, *, settle_s: float = 1.0) -> None:
        """Spawn the workers now (best effort) instead of on first use.

        Each queued task holds its worker until a common deadline, which
        coaxes the executor into starting every process up front —
        benchmarks call this so the first timed batch does not pay
        interpreter start-up.
        """
        if self._workers <= 1 or self._broken:
            return
        executor = self._ensure_executor()
        deadline = time.time() + max(settle_s, 0.0)
        try:
            list(executor.map(_worker_ready, [deadline] * self._workers))
        except BrokenProcessPool:
            self._mark_broken()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass

    def _mark_broken(self) -> None:
        warnings.warn(
            "parallel RR-set workers died; falling back to serial generation",
            RuntimeWarning,
            stacklevel=3,
        )
        self._broken = True
        self.close()

    # ------------------------------------------------------------------
    # RRSetGenerator interface
    # ------------------------------------------------------------------
    def generate(
        self, *, rng: SeedLike = None, root: Optional[int] = None
    ) -> np.ndarray:
        """Per-root oracle: delegates to the wrapped generator in-process."""
        return self._inner.generate(rng=rng, root=root)

    def generate_batch(
        self,
        count: int,
        *,
        rng: SeedLike = None,
        roots: Optional[np.ndarray] = None,
        out: Optional[RRSetPool] = None,
    ) -> RRSetPool:
        """Generate ``count`` RR-sets, sharded across the worker pool.

        Same contract as the serial engines: ``roots`` pins roots
        (sharded alongside the counts), ``out`` receives a top-up.
        Small batches and a 1-worker engine run serially in-process.
        """
        gen = make_rng(rng)
        if roots is not None:
            roots = np.asarray(roots, dtype=np.int64)
            count = int(roots.size)
        count = int(count)
        shards = min(self._workers, max(count // self._min_batch, 1))
        if shards <= 1 or self._broken:
            return self._inner.generate_batch(count, rng=gen, roots=roots, out=out)
        # Child streams are derived from the caller's rng (consuming it, so
        # successive calls differ) and assigned to shards positionally:
        # the merged pool is scheduling-independent.
        entropy = [int(v) for v in gen.integers(0, 2**32, size=4)]
        children = np.random.SeedSequence(entropy).spawn(shards)
        base, rem = divmod(count, shards)
        counts = [base + 1] * rem + [base] * (shards - rem)
        root_parts: list[Optional[np.ndarray]] = (
            list(np.split(roots, np.cumsum(counts)[:-1]))
            if roots is not None
            else [None] * shards
        )
        tasks = list(zip(counts, root_parts, children))
        executor = self._ensure_executor()
        try:
            results = list(executor.map(_generate_shard, tasks))
        except BrokenProcessPool:
            self._mark_broken()
            return self._inner.generate_batch(count, rng=gen, roots=roots, out=out)
        pool = out if out is not None else RRSetPool(self._graph.num_nodes)
        for shard_nodes, shard_indptr in results:
            pool.extend_pool(
                RRSetPool.from_flat(
                    self._graph.num_nodes, shard_nodes, shard_indptr,
                    validate=False,
                )
            )
        return pool

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "broken" if self._broken else (
            "live" if self._executor is not None else "cold"
        )
        return (
            f"ParallelEngine({type(self._inner).__name__}, "
            f"workers={self._workers}, {state})"
        )
