"""Directed influence-graph substrate.

The influence graph ``G = (V, E, p)`` of the paper (§2) is realised by
:class:`~repro.graph.digraph.DiGraph`, a compressed-sparse-row structure with
both out- and in-adjacency so that forward diffusion and reverse-reachable
searches are equally cheap.  Companion modules provide random generators,
edge-probability assignment schemes, plain-text I/O and summary statistics.
"""

from repro.graph.delta import DeltaEffect, GraphDelta, apply_delta
from repro.graph.digraph import DiGraph, induced_subgraph
from repro.graph.generators import (
    complete_digraph,
    cycle_digraph,
    erdos_renyi_digraph,
    grid_digraph,
    path_digraph,
    power_law_digraph,
    star_digraph,
)
from repro.graph.io import load_edge_list, save_edge_list
from repro.graph.stats import (
    degree_tail_ratio,
    out_degree_distribution,
    reciprocity,
    GraphStats,
    graph_stats,
    largest_scc,
    reachable_from,
    strongly_connected_components,
)
from repro.graph.weights import (
    constant_probabilities,
    trivalency_probabilities,
    uniform_random_probabilities,
    weighted_cascade_probabilities,
)

__all__ = [
    "DiGraph",
    "GraphDelta",
    "DeltaEffect",
    "apply_delta",
    "induced_subgraph",
    "erdos_renyi_digraph",
    "power_law_digraph",
    "path_digraph",
    "cycle_digraph",
    "star_digraph",
    "complete_digraph",
    "grid_digraph",
    "load_edge_list",
    "save_edge_list",
    "GraphStats",
    "graph_stats",
    "out_degree_distribution",
    "degree_tail_ratio",
    "reciprocity",
    "strongly_connected_components",
    "largest_scc",
    "reachable_from",
    "constant_probabilities",
    "weighted_cascade_probabilities",
    "trivalency_probabilities",
    "uniform_random_probabilities",
]
