"""CompInfMax solver (Problem 2): GeneralTIM + RR-CIM + Sandwich.

Given a fixed A-seed set and mutually complementary GAPs, find ``k``
B-seeds maximising the boost ``sigma_A(S_A, S_B) - sigma_A(S_A, ∅)``:

* when ``q_{B|A} = 1`` the boost is monotone and cross-submodular
  (Theorems 3, 5) and one GeneralTIM run over RR-CIM carries the guarantee
  (Theorem 8);
* otherwise the solver applies the one-sided Sandwich Approximation of
  §6.4: the upper bound ``nu`` raises ``q_{B|A}`` to 1 (Theorem 10), its
  seed set — plus optionally an MC-greedy candidate on the true boost —
  is evaluated under the unmodified GAPs and the best candidate wins.

:func:`theorem2_optimal_b_seeds` implements the provably-optimal special
case of Theorem 2 (``q_{B|∅} = 1`` and ``k >= |S_A|``): copy the A-seeds
and pad arbitrarily.

.. deprecated::
    :func:`solve_compinfmax` is a thin shim over the declarative query
    API — construct a :class:`~repro.api.session.ComICSession` and run a
    :class:`~repro.api.queries.CompInfMaxQuery` instead.  The solver core
    lives in :mod:`repro.api.solvers`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import SeedSetError
from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.rng import SeedLike, make_rng
from repro.rrset.engines import ENGINES, SelectionResult
from repro.rrset.imm import IMMOptions
from repro.rrset.tim import TIMOptions
from repro.algorithms.sandwich import SandwichResult


@dataclass
class CompInfMaxResult:
    """Solution of one CompInfMax instance."""

    seeds: list[int]
    #: "submodular" (single TIM/IMM run), "sandwich", or "theorem2".
    method: str
    tim_results: dict[str, SelectionResult] = field(default_factory=dict)
    sandwich: Optional[SandwichResult] = None
    #: MC estimate of the boost at the returned seeds (sandwich path only).
    estimated_boost: Optional[float] = None


def theorem2_optimal_b_seeds(
    graph: DiGraph,
    seeds_a: Sequence[int],
    k: int,
    *,
    rng: SeedLike = None,
) -> list[int]:
    """Optimal B-seeds when ``q_{B|∅} = 1`` and ``k >= |S_A|`` (Theorem 2).

    Returns ``S_A`` plus ``k - |S_A|`` arbitrary (here: random) extra nodes.
    """
    seeds_a = [int(s) for s in dict.fromkeys(int(s) for s in seeds_a)]
    if k < len(seeds_a):
        raise SeedSetError(
            f"Theorem 2 needs k >= |S_A|; got k={k}, |S_A|={len(seeds_a)}"
        )
    gen = make_rng(rng)
    chosen = list(seeds_a)
    remaining = [v for v in range(graph.num_nodes) if v not in set(chosen)]
    extra = k - len(chosen)
    if extra > len(remaining):
        raise SeedSetError(f"cannot select {k} seeds from {graph.num_nodes} nodes")
    if extra:
        picked = gen.choice(len(remaining), size=extra, replace=False)
        chosen.extend(remaining[int(i)] for i in picked)
    return chosen


def solve_compinfmax(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: Sequence[int],
    k: int,
    *,
    options: Optional[TIMOptions] = None,
    rng: SeedLike = None,
    evaluation_runs: int = 200,
    include_greedy_candidate: bool = False,
    greedy_runs: int = 50,
    engine: str = "tim",
    imm_options: Optional[IMMOptions] = None,
) -> CompInfMaxResult:
    """Solve one CompInfMax instance (deprecated one-shot entry point).

    Delegates to a throwaway :class:`~repro.api.session.ComICSession`;
    prefer the session API directly when issuing more than one query over
    the same network.
    """
    warnings.warn(
        "solve_compinfmax() is deprecated; use "
        "ComICSession.run(CompInfMaxQuery(...)) from repro.api instead",
        DeprecationWarning,
        stacklevel=2,
    )
    # Legacy error contract: invalid k / engine raised SeedSetError /
    # ValueError, not the query API's QueryError.
    if k < 0:
        raise SeedSetError(f"k must be non-negative, got {k}")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    from repro.api import ComICSession, CompInfMaxQuery, EngineConfig

    session = ComICSession(
        graph,
        gaps,
        config=EngineConfig.from_tim_options(
            options, engine=engine, imm_options=imm_options
        ),
        rng=rng,
    )
    # The submodular path (q_B|A = 1) never touches the MC knobs; legacy
    # accepted degenerate values there, so clamp only in that case.  On the
    # sandwich path a degenerate value always errored and still does.
    mc_unused = gaps.q_b_given_a == 1.0
    query = CompInfMaxQuery(
        seeds_a=tuple(int(s) for s in seeds_a),
        k=k,
        evaluation_runs=(
            max(evaluation_runs, 1) if mc_unused else evaluation_runs
        ),
        include_greedy_candidate=include_greedy_candidate,
        # greedy_runs is consumed only when the greedy candidate actually
        # runs (sandwich path AND include_greedy_candidate).
        greedy_runs=(
            greedy_runs
            if not mc_unused and include_greedy_candidate
            else max(greedy_runs, 1)
        ),
    )
    return session.run(query).raw
