"""Tests for the RRSetGenerator base interface."""

import numpy as np

from repro.graph import path_digraph
from repro.rng import make_rng
from repro.rrset import RRICGenerator


class TestBaseInterface:
    def test_random_root_in_range(self):
        generator = RRICGenerator(path_digraph(7))
        gen = make_rng(0)
        roots = {generator.random_root(gen) for _ in range(200)}
        assert roots <= set(range(7))
        assert len(roots) > 3  # actually random

    def test_generate_many_count_and_types(self):
        generator = RRICGenerator(path_digraph(5))
        sets = generator.generate_many(7, rng=1)
        assert len(sets) == 7
        for rr in sets:
            assert isinstance(rr, np.ndarray)
            assert rr.dtype == np.int64

    def test_generate_many_deterministic_given_seed(self):
        generator = RRICGenerator(path_digraph(5, probability=0.5))
        first = [sorted(rr.tolist()) for rr in generator.generate_many(10, rng=3)]
        second = [sorted(rr.tolist()) for rr in generator.generate_many(10, rng=3)]
        assert first == second

    def test_graph_property(self):
        graph = path_digraph(4)
        assert RRICGenerator(graph).graph is graph
