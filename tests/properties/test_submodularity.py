"""Property-based tests of the paper's positive submodularity results.

Verified by the exact oracle on hypothesis-generated tiny instances:

* Theorem 4 — one-way complementarity (``q_{A|∅} <= q_{A|B}``,
  ``q_{B|∅} = q_{B|A}``): sigma_A is self-submodular in S_A;
* Theorem 5 — Q+ with ``q_{B|A} = 1``: sigma_A is cross-submodular in S_B;
* Theorem 11 — Q- with ``q_{A|∅} = q_{B|∅} = 1``: sigma_A is
  self-submodular in S_A.

(The matching *negative* results — violations outside these regimes — are
deterministic counter-example tests in tests/models/test_counter_examples.)
"""

import hypothesis.strategies as st
from hypothesis import given

from tests.properties._profiles import ci_settings

from repro.graph import DiGraph
from repro.models import GAP, exact_spread

MAX_NODES = 5
_Q = st.sampled_from([0.0, 0.2, 0.5, 0.8, 1.0])


@st.composite
def tiny_graphs(draw) -> DiGraph:
    n = draw(st.integers(min_value=3, max_value=MAX_NODES))
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    count = draw(st.integers(min_value=2, max_value=min(len(pairs), 6)))
    chosen = draw(
        st.lists(st.sampled_from(pairs), min_size=count, max_size=count, unique=True)
    )
    probs = draw(
        st.lists(
            st.sampled_from([0.4, 1.0]), min_size=len(chosen), max_size=len(chosen)
        )
    )
    return DiGraph.from_edges(n, [(u, v, p) for (u, v), p in zip(chosen, probs)])


@st.composite
def nested_sets_with_extra(draw, n: int):
    """Random S ⊆ T ⊆ V and u ∉ T."""
    t = draw(st.lists(st.integers(0, n - 1), min_size=0, max_size=n - 1, unique=True))
    s = [v for v in t if draw(st.booleans())]
    u = draw(st.integers(0, n - 1).filter(lambda v: v not in t))
    return s, t, u


@ci_settings(35)
@given(graph=tiny_graphs(), data=st.data())
def test_theorem4_self_submodularity_one_way_complementarity(graph, data):
    n = graph.num_nodes
    q_a = data.draw(_Q)
    q_ab = data.draw(_Q.filter(lambda v: v >= q_a))
    q_b = data.draw(_Q)
    gaps = GAP(q_a, q_ab, q_b, q_b)  # B indifferent to A
    seeds_b = data.draw(
        st.lists(st.integers(0, n - 1), min_size=0, max_size=2, unique=True)
    )
    s, t, u = data.draw(nested_sets_with_extra(n))

    def sigma(seeds_a):
        value, _ = exact_spread(graph, gaps, seeds_a, seeds_b)
        return value

    small_gain = sigma(s + [u]) - sigma(s)
    large_gain = sigma(t + [u]) - sigma(t)
    assert small_gain >= large_gain - 1e-9


def _with_b_dummies(graph: DiGraph) -> tuple[DiGraph, list[int]]:
    """Footnote-1 construction: dummy feeder ``d_v -> v`` per node.

    Selecting B-seeds among the dummies is the paper's "seeds go through
    the NLA" formulation: seeding ``d_v`` guarantees ``v`` is *informed*
    of B but still runs v's adoption test.
    """
    n = graph.num_nodes
    edges = list(graph.iter_edges())
    edges += [(n + v, v, 1.0) for v in range(n)]
    return DiGraph.from_edges(2 * n, edges), [n + v for v in range(n)]


@ci_settings(35)
@given(graph=tiny_graphs(), data=st.data())
def test_theorem5_cross_submodularity_q_ba_one(graph, data):
    """Theorem 5 under the footnote-1 (dummy-seed) formulation.

    Reproduction finding: with *direct* seeding (seeds adopt without the
    NLA test, the main-text convention), Theorem 5 admits exact
    counterexamples — see
    ``test_theorem5_boundary_counterexample_direct_seeding`` below.  The
    proof's Claim 4 assumes every B-adoption on the activation path passes
    a threshold test, which a B-seed sitting on the path does not; routing
    seeds through dummy feeders (paper footnote 1) restores the argument,
    and under that formulation the property holds.
    """
    n = graph.num_nodes
    q_a = data.draw(_Q)
    q_ab = data.draw(_Q.filter(lambda v: v >= q_a))
    q_b = data.draw(_Q)
    gaps = GAP(q_a, q_ab, q_b, 1.0)
    seeds_a = data.draw(
        st.lists(st.integers(0, n - 1), min_size=1, max_size=2, unique=True)
    )
    s, t, u = data.draw(nested_sets_with_extra(n))
    dummy_graph, dummies = _with_b_dummies(graph)

    def sigma(seeds_b):
        value, _ = exact_spread(
            dummy_graph, gaps, seeds_a, [dummies[v] for v in seeds_b]
        )
        return value

    small_gain = sigma(s + [u]) - sigma(s)
    large_gain = sigma(t + [u]) - sigma(t)
    assert small_gain >= large_gain - 1e-9


def test_theorem5_boundary_counterexample_direct_seeding():
    """Exact counterexample to Theorem 5 under direct seeding.

    Graph 3 -> 0 -> {1, 2}, Q = (q_A|∅=0, q_A|B=0.2, q_B|∅=0, q_B|A=1),
    S_A = {3}: the pair of B-seeds {0, 2} makes node 2 adopt A with
    probability 0.04 (node 0 unlocks via its own B-seed status, then node
    2 — itself a B-seed — accepts A with q_{A|B}), while neither singleton
    flips anything.  Marginal gains of u = 2: 0 at S = ∅ versus 0.04 at
    T = {0} — cross-submodularity violated even though Q ∈ Q+ and
    q_{B|A} = 1.  The mechanism needs a B-seed *on the activation path*
    whose B-adoption bypasses the NLA, exactly the case footnote 1's
    dummy construction excludes.
    """
    graph = DiGraph.from_edges(4, [(3, 0, 1.0), (0, 1, 1.0), (0, 2, 1.0)])
    gaps = GAP(0.0, 0.2, 0.0, 1.0)
    assert gaps.is_mutually_complementary and gaps.q_b_given_a == 1.0

    def sigma(seeds_b):
        value, _ = exact_spread(graph, gaps, [3], seeds_b)
        return value

    assert sigma([]) == 1.0
    assert sigma([2]) == 1.0          # u alone: nothing unlocks
    assert sigma([0]) == 1.2          # node 0 unlocks itself
    assert sigma([0, 2]) == 1.24      # ... and then boosts node 2
    small_gain = sigma([2]) - sigma([])
    large_gain = sigma([0, 2]) - sigma([0])
    assert large_gain > small_gain  # the violation


@ci_settings(35)
@given(graph=tiny_graphs(), data=st.data())
def test_theorem11_self_submodularity_competitive_saturated(graph, data):
    n = graph.num_nodes
    q_ab = data.draw(_Q)
    q_ba = data.draw(_Q)
    gaps = GAP(1.0, q_ab, 1.0, q_ba)  # q_{A|∅} = q_{B|∅} = 1, Q-
    assert gaps.is_mutually_competitive
    seeds_b = data.draw(
        st.lists(st.integers(0, n - 1), min_size=0, max_size=2, unique=True)
    )
    s, t, u = data.draw(nested_sets_with_extra(n))

    def sigma(seeds_a):
        value, _ = exact_spread(graph, gaps, seeds_a, seeds_b)
        return value

    small_gain = sigma(s + [u]) - sigma(s)
    large_gain = sigma(t + [u]) - sigma(t)
    assert small_gain >= large_gain - 1e-9
