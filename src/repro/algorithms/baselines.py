"""Baseline seed-selection heuristics compared against in §7.

* **HighDegree** — the ``k`` nodes of highest out-degree;
* **PageRank** — the ``k`` nodes of highest PageRank (own power iteration);
* **Random** — ``k`` uniform nodes;
* **Copying** — copy the top of the opposite item's seed set;
* **VanillaIC** — TIM under the classic IC model, i.e. GeneralTIM with the
  :class:`~repro.rrset.rr_ic.RRICGenerator`, ignoring the NLA entirely.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import SeedSetError
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng
from repro.rrset.rr_ic import RRICGenerator
from repro.rrset.tim import TIMOptions, general_tim


def _validated_k(graph: DiGraph, k: int, excluded: set[int]) -> int:
    if k < 0:
        raise SeedSetError(f"k must be non-negative, got {k}")
    available = graph.num_nodes - len(excluded)
    if k > available:
        raise SeedSetError(
            f"cannot select {k} seeds from {available} eligible nodes"
        )
    return k


def high_degree_seeds(
    graph: DiGraph, k: int, *, exclude: Iterable[int] = ()
) -> list[int]:
    """Top-``k`` nodes by out-degree (ties by node id, ascending)."""
    excluded = {int(v) for v in exclude}
    k = _validated_k(graph, k, excluded)
    degrees = graph.out_degrees
    # argsort on (-degree, id): stable sort of ids by descending degree.
    order = np.argsort(-degrees, kind="stable")
    seeds: list[int] = []
    for v in order:
        v = int(v)
        if v in excluded:
            continue
        seeds.append(v)
        if len(seeds) == k:
            break
    return seeds


def pagerank_scores(
    graph: DiGraph,
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 200,
) -> np.ndarray:
    """PageRank by power iteration with uniform teleportation.

    Dangling mass (nodes without out-edges) is redistributed uniformly, the
    standard convention.  Influence probabilities are ignored: PageRank is a
    purely structural baseline, as in the paper.
    """
    n = graph.num_nodes
    if n == 0:
        return np.empty(0, dtype=np.float64)
    out_deg = graph.out_degrees.astype(np.float64)
    src = graph.edge_sources
    dst = graph.edge_targets
    scores = np.full(n, 1.0 / n, dtype=np.float64)
    dangling = out_deg == 0
    for _ in range(max_iterations):
        contrib = np.zeros(n, dtype=np.float64)
        if src.size:
            per_edge = scores[src] / out_deg[src]
            np.add.at(contrib, dst, per_edge)
        dangling_mass = float(scores[dangling].sum())
        updated = (1.0 - damping) / n + damping * (contrib + dangling_mass / n)
        if np.abs(updated - scores).sum() < tol:
            scores = updated
            break
        scores = updated
    return scores


def pagerank_seeds(
    graph: DiGraph,
    k: int,
    *,
    exclude: Iterable[int] = (),
    damping: float = 0.85,
) -> list[int]:
    """Top-``k`` nodes by PageRank score."""
    excluded = {int(v) for v in exclude}
    k = _validated_k(graph, k, excluded)
    scores = pagerank_scores(graph, damping=damping)
    order = np.argsort(-scores, kind="stable")
    seeds: list[int] = []
    for v in order:
        v = int(v)
        if v in excluded:
            continue
        seeds.append(v)
        if len(seeds) == k:
            break
    return seeds


def random_seeds(
    graph: DiGraph,
    k: int,
    *,
    rng: SeedLike = None,
    exclude: Iterable[int] = (),
) -> list[int]:
    """``k`` distinct uniform-random nodes."""
    excluded = {int(v) for v in exclude}
    k = _validated_k(graph, k, excluded)
    gen = make_rng(rng)
    eligible = np.asarray(
        [v for v in range(graph.num_nodes) if v not in excluded], dtype=np.int64
    )
    picked = gen.choice(eligible, size=k, replace=False)
    return [int(v) for v in picked]


def copying_seeds(
    graph: DiGraph,
    k: int,
    opposite_seeds: Sequence[int],
    *,
    rng: SeedLike = None,
) -> list[int]:
    """The Copying baseline: take the top-``k`` of the opposite seed set.

    Opposite seeds are assumed ordered by influence rank (as the paper's
    construction guarantees).  If fewer than ``k`` are available, pads with
    uniform-random non-seed nodes to honour the budget.
    """
    if k < 0:
        raise SeedSetError(f"k must be non-negative, got {k}")
    seeds = [int(v) for v in opposite_seeds[:k]]
    if len(seeds) < k:
        padding = random_seeds(graph, k - len(seeds), rng=rng, exclude=seeds)
        seeds.extend(padding)
    return seeds


def vanilla_ic_seeds(
    graph: DiGraph,
    k: int,
    *,
    options: Optional[TIMOptions] = None,
    rng: SeedLike = None,
) -> list[int]:
    """VanillaIC: TIM seed selection under the classic IC model.

    Returned in selection (rank) order, which Tables 2–4 use to pick the
    "top" and "mid-tier" opposite seed sets.
    """
    result = general_tim(RRICGenerator(graph), k, options=options, rng=rng)
    return result.seeds
