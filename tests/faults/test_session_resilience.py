"""End-to-end degradation provenance through ComICSession.

Every query's ``diagnostics`` must carry a machine-readable trace of
what (if anything) went wrong and how it was absorbed: the fixed-key
``resilience`` counter dict, the ``degraded`` stamp, and the
chronological ``events``.  These tests drive each failure mode through
the public API and assert the exact keys an operator dashboard would
consume.
"""

import pytest

from repro.api import ComICSession, EngineConfig, SelfInfMaxQuery
from repro.api.session import RESILIENCE_COUNTERS
from repro.errors import QueryError
from repro.faults import FaultPlan, FaultSpec, fault_scope
from repro.graph import power_law_digraph, weighted_cascade_probabilities
from repro.models import GAP
from repro.store import PoolStore
from repro.store.pool_store import NODES_FILE

GAPS = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
QUERY = SelfInfMaxQuery(seeds_b=(0, 1), k=3)
FOREVER = 10**6

#: a budget that is gone by the first cooperative check.
INSTANT_BUDGET = 1e-6


@pytest.fixture(scope="module")
def graph():
    return weighted_cascade_probabilities(power_law_digraph(250, rng=9))


def resilience_of(result):
    assert "resilience" in result.diagnostics
    return result.diagnostics["resilience"]


class TestProvenanceEnvelope:
    def test_every_result_carries_the_full_resilience_schema(self, graph):
        session = ComICSession(
            graph, GAPS, config=EngineConfig(theta_override=300), rng=0
        )
        result = session.run(QUERY)
        resilience = resilience_of(result)
        # exact schema: all counters present (zero here) plus events.
        assert set(resilience) == set(RESILIENCE_COUNTERS) | {"events"}
        assert all(resilience[name] == 0 for name in RESILIENCE_COUNTERS)
        assert resilience["events"] == []
        assert result.diagnostics["degraded"] is False
        assert result.diagnostics["degraded_reason"] is None


class TestDeadlineExpiry:
    def config(self, **kwargs):
        kwargs.setdefault("deadline_s", INSTANT_BUDGET)
        kwargs.setdefault("min_rr_sets", 50)
        kwargs.setdefault("max_rr_sets", 5000)
        return EngineConfig(**kwargs)

    def test_expired_deadline_returns_degraded_result_fast(self, graph):
        session = ComICSession(graph, GAPS, config=self.config(), rng=0)
        result = session.run(QUERY)
        assert result.diagnostics["degraded"] is True
        assert "expired" in result.diagnostics["degraded_reason"]
        assert resilience_of(result)["deadline_expiries"] == 1
        assert [e["kind"] for e in resilience_of(result)["events"]] == [
            "deadline"
        ]
        assert session.stats.deadline_expiries == 1
        # best-effort: the floor was sampled, the cap was not
        assert result.diagnostics["rr_sets_sampled"] == 50
        assert len(result.seeds) == 3  # still a full seed set
        # bounded wall-clock: expiry cut sampling off at the floor
        assert result.diagnostics["wall_s"] < 30.0

    def test_imm_engine_degrades_identically(self, graph):
        session = ComICSession(
            graph, GAPS, config=self.config(engine="imm"), rng=0
        )
        result = session.run(QUERY)
        assert result.diagnostics["degraded"] is True
        assert resilience_of(result)["deadline_expiries"] == 1

    def test_generous_deadline_is_not_degraded(self, graph):
        session = ComICSession(
            graph, GAPS, config=self.config(deadline_s=600.0), rng=0
        )
        result = session.run(QUERY)
        assert result.diagnostics["degraded"] is False
        assert resilience_of(result)["deadline_expiries"] == 0

    def test_deadline_s_validation(self):
        with pytest.raises(QueryError, match="deadline_s"):
            EngineConfig(deadline_s=0.0)
        with pytest.raises(QueryError, match="deadline_s"):
            EngineConfig(deadline_s=-1.0)


class TestParallelFallbackProvenance:
    def test_persistent_crashes_leave_fallback_trace_and_serial_seeds(
        self, graph
    ):
        cfg = EngineConfig(theta_override=600, workers=2)
        serial = ComICSession(graph, GAPS, rng=5).run(
            QUERY, config=EngineConfig(theta_override=600)
        )
        session = ComICSession(graph, GAPS, config=cfg, rng=5)
        plan = FaultPlan(
            [FaultSpec("parallel.shard", "crash", times=FOREVER)]
        )
        with fault_scope(plan), pytest.warns(RuntimeWarning, match="serially"):
            result = session.run(QUERY)
        session.close()
        resilience = resilience_of(result)
        assert resilience["serial_fallbacks"] == 1
        assert resilience["parallel_retries"] >= 1
        assert resilience["parallel_restarts"] >= 1
        assert "serial_fallback" in [
            e["kind"] for e in resilience["events"]
        ]
        # a recovered batch is exact, not degraded …
        assert result.diagnostics["degraded"] is False
        # … and the fallback rewound the rng: seeds match the serial run.
        assert result.seeds == serial.seeds
        assert session.stats.serial_fallbacks == 1

    def test_single_crash_recovers_without_fallback(self, graph):
        cfg = EngineConfig(theta_override=600, workers=2)
        baseline = ComICSession(graph, GAPS, config=cfg, rng=5)
        expected = baseline.run(QUERY)
        baseline.close()
        session = ComICSession(graph, GAPS, config=cfg, rng=5)
        plan = FaultPlan([FaultSpec("parallel.shard", "crash", at=0)])
        with fault_scope(plan):
            result = session.run(QUERY)
        session.close()
        resilience = resilience_of(result)
        assert resilience["parallel_retries"] >= 1
        assert resilience["serial_fallbacks"] == 0
        assert result.diagnostics["degraded"] is False
        # recovery is invisible in the answer
        assert result.seeds == expected.seeds


class TestStoreProvenance:
    def test_quarantined_entry_is_traced_and_resampled(self, graph, tmp_path):
        store_dir = tmp_path / "pools"
        cfg = EngineConfig(theta_override=300)
        writer = ComICSession(graph, GAPS, config=cfg, rng=3, store=store_dir)
        writer.run(QUERY)
        assert writer.stats.store_saves == 1

        # corrupt the persisted entry's nodes column on disk
        store = PoolStore(store_dir)
        (manifest,) = store.entries()
        path = store.entry_dir(manifest.key) / NODES_FILE
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))

        reader = ComICSession(graph, GAPS, config=cfg, rng=3, store=store_dir)
        result = reader.run(QUERY)
        resilience = resilience_of(result)
        assert resilience["store_quarantines"] == 1
        assert "store_quarantine" in [e["kind"] for e in resilience["events"]]
        assert reader.stats.store_quarantines == 1
        assert reader.stats.store_invalidations == 1
        # the query healed by resampling — exact result, fresh entry saved
        assert result.diagnostics["degraded"] is False
        assert result.diagnostics["rr_sets_sampled"] == 300

        # the bad entry was moved aside exactly once, never re-read
        final = ComICSession(graph, GAPS, config=cfg, rng=3, store=store_dir)
        final.run(QUERY)
        assert final.stats.store_quarantines == 0
        assert final.stats.store_hits == 1

    def test_save_failure_degrades_to_warning_with_trace(
        self, graph, tmp_path
    ):
        cfg = EngineConfig(theta_override=300)
        session = ComICSession(
            graph, GAPS, config=cfg, rng=3, store=tmp_path / "pools"
        )
        plan = FaultPlan([FaultSpec("store.save.columns", "enospc")])
        with fault_scope(plan):
            with pytest.warns(RuntimeWarning, match="write-through failed"):
                result = session.run(QUERY)
        resilience = resilience_of(result)
        assert resilience["store_save_failures"] == 1
        assert "store_save_failure" in [
            e["kind"] for e in resilience["events"]
        ]
        assert session.stats.store_save_failures == 1
        assert session.stats.store_saves == 0
        # the query itself succeeded with the in-memory pool
        assert result.diagnostics["degraded"] is False
        assert len(result.seeds) == 3


class TestSessionLifecycle:
    def test_close_shuts_worker_pools_exactly_once(self, graph):
        cfg = EngineConfig(theta_override=600, workers=2)
        session = ComICSession(graph, GAPS, config=cfg, rng=1)
        session.run(QUERY)
        (entry,) = session._pools.values()
        engine = entry.parallel
        assert engine is not None and not engine.closed
        session.close()
        assert engine.closed
        assert entry.parallel is None  # closed exactly once, then detached
        session.close()  # second close is a no-op
        # the session stays usable: a new engine is built on demand
        result = session.run(QUERY)
        assert len(result.seeds) == 3
        session.close()

    def test_context_manager_closes_engines(self, graph):
        cfg = EngineConfig(theta_override=600, workers=2)
        with ComICSession(graph, GAPS, config=cfg, rng=1) as session:
            session.run(QUERY)
            (entry,) = session._pools.values()
            engine = entry.parallel
        assert engine is not None and engine.closed

    def test_eviction_closes_engines_exactly_once(self, graph):
        cfg = EngineConfig(theta_override=600, workers=2, max_pool_bytes=1)
        session = ComICSession(graph, GAPS, config=cfg, rng=1)
        session.run(QUERY)
        # the byte cap evicted (and closed) the entry right after selection
        assert session._pools == {}
        assert session.stats.pool_evictions == 1
        session.close()  # nothing left to close; must not raise
