"""Tests for degree-distribution and reciprocity statistics."""

import numpy as np
import pytest

from repro.graph import (
    DiGraph,
    degree_tail_ratio,
    erdos_renyi_digraph,
    out_degree_distribution,
    path_digraph,
    power_law_digraph,
    reciprocity,
    star_digraph,
)


class TestOutDegreeDistribution:
    def test_star(self):
        dist = out_degree_distribution(star_digraph(5))
        # Hub has degree 4; four leaves have degree 0.
        assert dist[0] == 4
        assert dist[4] == 1

    def test_counts_sum_to_n(self):
        graph = power_law_digraph(200, rng=1)
        assert int(out_degree_distribution(graph).sum()) == 200

    def test_empty_graph(self):
        dist = out_degree_distribution(DiGraph.from_edges(0, []))
        assert dist.tolist() == [0]


class TestDegreeTailRatio:
    def test_star_tail_is_n_minus_one(self):
        # avg degree = (n-1)/n, max = n-1, ratio = n.
        assert degree_tail_ratio(star_digraph(10)) == pytest.approx(10.0)

    def test_regular_graph_is_one(self):
        assert degree_tail_ratio(path_digraph(2)) == pytest.approx(2.0)
        cycle = DiGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert degree_tail_ratio(cycle) == pytest.approx(1.0)

    def test_power_law_heavier_than_er(self):
        pl = power_law_digraph(2000, exponent=2.16, average_degree=5.0, rng=2)
        er = erdos_renyi_digraph(2000, edge_probability=5.0 / 1999, rng=3)
        assert degree_tail_ratio(pl) > degree_tail_ratio(er)

    def test_edgeless(self):
        assert degree_tail_ratio(DiGraph.from_edges(4, [])) == 0.0


class TestReciprocity:
    def test_fully_reciprocal(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1)])
        assert reciprocity(graph) == 1.0

    def test_one_way(self):
        assert reciprocity(path_digraph(4)) == 0.0

    def test_mixed(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 0), (1, 2)])
        assert reciprocity(graph) == pytest.approx(2 / 3)

    def test_edgeless(self):
        assert reciprocity(DiGraph.from_edges(2, [])) == 0.0

    def test_synthetic_dataset_reciprocity_in_range(self):
        """The synthetic stand-ins are random digraphs, so reciprocity is
        low but well-defined (the paper's Flixster/Last.fm crawls are
        bidirected — a shape the stand-ins do not attempt to match; the
        substitution table in DESIGN.md scopes them to degree shape)."""
        from repro.datasets import load_dataset

        graph = load_dataset("flixster", scale=0.01, rng=5)
        assert 0.0 <= reciprocity(graph) < 0.5
