"""Incremental RR-pool repair under a graph delta.

The Com-IC RR machinery makes surgical pool maintenance possible: an
RR-set's sampled possible world depends only on the edges its sweeps
actually tested, so a member whose run never touched a changed edge is —
by the shared-coin coupling argument — an unchanged sample under the new
graph and can be kept verbatim.  :func:`repair_pool` drops exactly the
touched members and resamples their roots against the new graph, the
delta-maintenance counterpart of full fingerprint invalidation.

Affectedness is resolved per the generator's
:attr:`~repro.rrset.base.RRSetGenerator.touch_mode`:

* ``"implicit"`` (RR-IC, RR-LT) — every tested edge is an in-edge of a
  member node, so a member is affected iff some changed or added edge's
  *target* is one of its members (a membership test against the delta's
  :meth:`~repro.graph.DeltaEffect.changed_target_mask`; no signature
  bytes needed, only the root column).
* ``"recorded"`` (RR-SIM, RR-SIM+, RR-CIM, RR-Block) — removals and
  reweights are exact: affected iff the changed edge id appears in the
  member's recorded touch signature.  Edge *additions* are conservative:
  a new edge can open a diffusion path through territory the old run
  never tested (e.g. fresh B-flow into the visible region), which no
  touch record can witness, so an add batch marks **every** member
  affected — correct, but as expensive as regeneration, which callers'
  churn thresholds should prefer outright.
* ``"none"`` (oracle base, product regime, parallel engine) — not
  repairable; the report comes back ineligible and the caller falls back
  to full regeneration.

Statistical caveat (documented in ``docs/api.md``): keeping the
untouched members conditions them on *not* having touched the changed
edges, so the repaired pool is a slightly biased sample of the new
graph's RR distribution — the bias is second-order in the churn rate and
vanishes as churn → 0, which is why sessions bound repair by
``EngineConfig.delta_churn_threshold`` and regenerate beyond it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import DeltaError
from repro.graph.delta import DeltaEffect
from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator
from repro.rrset.pool import RRSetPool

#: Touch-mode vocabulary (the values of ``RRSetGenerator.touch_mode``).
TOUCH_IMPLICIT = "implicit"
TOUCH_RECORDED = "recorded"
TOUCH_NONE = "none"


@dataclass(frozen=True)
class RepairReport:
    """Outcome of one :func:`repair_pool` attempt.

    ``eligible`` is False when the pool/generator pair cannot be
    repaired (``fallback_reason`` says why and the pool is untouched);
    otherwise ``affected`` of ``total`` members were dropped and
    ``resampled`` fresh sets drawn for their roots.
    """

    eligible: bool
    mode: str
    total: int
    affected: int
    resampled: int
    fallback_reason: Optional[str] = None


def _ineligible(mode: str, total: int, reason: str) -> RepairReport:
    return RepairReport(
        eligible=False,
        mode=mode,
        total=total,
        affected=0,
        resampled=0,
        fallback_reason=reason,
    )


def repair_pool(
    pool: RRSetPool,
    effect: DeltaEffect,
    generator: RRSetGenerator,
    *,
    rng: SeedLike = None,
) -> RepairReport:
    """Repair ``pool`` in place for the delta described by ``effect``.

    ``generator`` must be built over the *new* graph (``effect.graph``) —
    the dropped members' roots are resampled through it.  Returns a
    :class:`RepairReport`; when the report is ineligible the pool was not
    modified and the caller should regenerate instead.
    """
    mode = getattr(generator, "touch_mode", TOUCH_NONE)
    total = len(pool)
    if generator.graph.fingerprint() != effect.graph.fingerprint():
        raise DeltaError(
            "repair generator must be built over the delta's new graph "
            f"(generator fingerprint {generator.graph.fingerprint()[:12]}… "
            f"!= delta result {effect.graph.fingerprint()[:12]}…)"
        )
    if pool.num_nodes != effect.graph.num_nodes:
        raise DeltaError(
            f"pool node universe {pool.num_nodes} does not match the "
            f"graph ({effect.graph.num_nodes})"
        )
    if mode == TOUCH_NONE:
        return _ineligible(mode, total, "touch-unsupported")
    if not (pool.track_touches and pool.roots_ok):
        return _ineligible(mode, total, "touch-absent")
    if mode == TOUCH_RECORDED and not pool.touch_ok:
        return _ineligible(mode, total, "touch-absent")

    if mode == TOUCH_IMPLICIT:
        affected = pool.intersects(effect.changed_target_mask())
    elif effect.added_src.size:
        # Conservative add blanket (see module docstring): new edges can
        # route diffusion through territory the old runs never tested.
        affected = np.ones(total, dtype=bool)
    else:
        edge_mark = np.zeros(effect.old_graph.num_edges, dtype=bool)
        edge_mark[effect.changed_old_edges] = True
        affected = pool.affected_by_edges(edge_mark)

    # Pure reweights keep every edge id in place — the remap is the
    # identity, so skip the O(total touches) rewrite gather entirely.
    ids_shift = bool(effect.delta.add or effect.delta.remove)
    dropped = pool.drop_members(
        affected,
        old_to_new_edge=(
            effect.old_to_new_edge if (pool.touch_ok and ids_shift) else None
        ),
    )
    if dropped.size:
        generator.generate_batch(
            dropped.size, rng=make_rng(rng), roots=dropped, out=pool
        )
    return RepairReport(
        eligible=True,
        mode=mode,
        total=total,
        affected=int(affected.sum()),
        resampled=int(dropped.size),
    )


__all__ = [
    "RepairReport",
    "repair_pool",
    "TOUCH_IMPLICIT",
    "TOUCH_RECORDED",
    "TOUCH_NONE",
]
