"""Tests for experiment harness plumbing and reporting."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import ExperimentScale, TableResult, render_table, save_results, timed
from repro.experiments.harness import percent_improvement


class TestExperimentScale:
    def test_defaults_valid(self):
        scale = ExperimentScale()
        assert scale.k >= 1

    def test_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentScale(k=0)
        with pytest.raises(ExperimentError):
            ExperimentScale(opposite_size=0)
        with pytest.raises(ExperimentError):
            ExperimentScale(mc_runs=1)


class TestTimed:
    def test_returns_result_and_seconds(self):
        result, seconds = timed(lambda: 42)
        assert result == 42
        assert seconds >= 0.0


class TestPercentImprovement:
    def test_basic(self):
        assert percent_improvement(150.0, 100.0) == pytest.approx(50.0)
        assert percent_improvement(80.0, 100.0) == pytest.approx(-20.0)

    def test_zero_baseline(self):
        assert percent_improvement(0.0, 0.0) == 0.0
        assert percent_improvement(5.0, 0.0) == float("inf")


class TestReporting:
    def sample(self) -> TableResult:
        return TableResult(
            title="Demo",
            columns=["name", "value"],
            rows=[{"name": "a", "value": 1.2345}, {"name": "b", "value": None}],
            notes="a note",
        )

    def test_render_contains_cells(self):
        text = render_table(self.sample())
        assert "### Demo" in text
        assert "| a" in text
        assert "1.23" in text
        assert "-" in text  # None cell
        assert "_a note_" in text

    def test_render_empty_rows(self):
        text = render_table(TableResult(title="T", columns=["x"], rows=[]))
        assert "| x" in text

    def test_save_results(self, tmp_path):
        path = tmp_path / "results.md"
        save_results([self.sample(), self.sample()], path)
        content = path.read_text()
        assert content.count("### Demo") == 2

    def test_column_accessor(self):
        assert self.sample().column("value") == [1.2345, None]

    def test_large_and_nan_formatting(self):
        result = TableResult(
            title="T", columns=["v"], rows=[{"v": 12345.6}, {"v": float("nan")}]
        )
        text = render_table(result)
        assert "12346" in text
        assert "nan" in text
