"""Monte-Carlo estimation of influence spread and boost (§4 objectives).

``sigma_A(S_A, S_B)`` and ``sigma_B(S_A, S_B)`` — the expected numbers of
A- and B-adopted nodes — are #P-hard to compute exactly, so the paper (and
this library) estimates them by simulation.  :func:`estimate_boost`
estimates the CompInfMax objective ``sigma_A(S_A, S_B) - sigma_A(S_A, ∅)``
with *paired* sampling: both cascades of a run share one possible world
(a reusable :class:`~repro.models.sources.WorldSource`), which removes the
between-world variance from the difference estimator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.graph.digraph import DiGraph
from repro.models.comic import simulate
from repro.models.gaps import GAP
from repro.models.sources import CoinSource, WorldSource
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class SpreadEstimate:
    """A Monte-Carlo mean with its sampling uncertainty."""

    mean: float
    std: float
    runs: int

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.runs <= 0:
            return float("inf")
        return self.std / math.sqrt(self.runs)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval (default 95%)."""
        half = z * self.stderr
        return (self.mean - half, self.mean + half)

    def __float__(self) -> float:
        return self.mean


def _summarize(values: np.ndarray) -> SpreadEstimate:
    runs = int(values.size)
    mean = float(values.mean()) if runs else 0.0
    std = float(values.std(ddof=1)) if runs > 1 else 0.0
    return SpreadEstimate(mean=mean, std=std, runs=runs)


def estimate_spread(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: Iterable[int],
    seeds_b: Iterable[int],
    *,
    runs: int = 1000,
    rng: SeedLike = None,
    item: str = "a",
) -> SpreadEstimate:
    """Estimate ``sigma_A`` (``item='a'``) or ``sigma_B`` (``item='b'``)."""
    if item not in ("a", "b"):
        raise ValueError(f"item must be 'a' or 'b', got {item!r}")
    gen = make_rng(rng)
    seeds_a = list(seeds_a)
    seeds_b = list(seeds_b)
    values = np.empty(runs, dtype=np.float64)
    for i in range(runs):
        outcome = simulate(graph, gaps, seeds_a, seeds_b, source=CoinSource(gen))
        values[i] = outcome.num_a_adopted if item == "a" else outcome.num_b_adopted
    return _summarize(values)


def estimate_spread_both(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: Iterable[int],
    seeds_b: Iterable[int],
    *,
    runs: int = 1000,
    rng: SeedLike = None,
) -> tuple[SpreadEstimate, SpreadEstimate]:
    """Estimate ``(sigma_A, sigma_B)`` from the same runs."""
    gen = make_rng(rng)
    seeds_a = list(seeds_a)
    seeds_b = list(seeds_b)
    values_a = np.empty(runs, dtype=np.float64)
    values_b = np.empty(runs, dtype=np.float64)
    for i in range(runs):
        outcome = simulate(graph, gaps, seeds_a, seeds_b, source=CoinSource(gen))
        values_a[i] = outcome.num_a_adopted
        values_b[i] = outcome.num_b_adopted
    return _summarize(values_a), _summarize(values_b)


def estimate_boost(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: Iterable[int],
    seeds_b: Iterable[int],
    *,
    runs: int = 1000,
    rng: SeedLike = None,
    paired: bool = True,
) -> SpreadEstimate:
    """Estimate the CompInfMax objective
    ``sigma_A(S_A, S_B) - sigma_A(S_A, ∅)``.

    With ``paired=True`` (default) each run evaluates both cascades in the
    same possible world, a common-random-numbers estimator whose variance is
    far below that of differencing two independent estimates.
    """
    gen = make_rng(rng)
    seeds_a = list(seeds_a)
    seeds_b = list(seeds_b)
    values = np.empty(runs, dtype=np.float64)
    for i in range(runs):
        if paired:
            world = WorldSource(gen)
            with_b = simulate(graph, gaps, seeds_a, seeds_b, source=world)
            without_b = simulate(graph, gaps, seeds_a, [], source=world)
        else:
            with_b = simulate(graph, gaps, seeds_a, seeds_b, source=CoinSource(gen))
            without_b = simulate(graph, gaps, seeds_a, [], source=CoinSource(gen))
        values[i] = with_b.num_a_adopted - without_b.num_a_adopted
    return _summarize(values)
