"""Tests for the synthetic dataset builders."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.datasets import DATASET_NAMES, PAPER_DATASETS, load_dataset


class TestLoadDataset:
    def test_all_names_build(self):
        for name in DATASET_NAMES:
            graph = load_dataset(name, scale=0.01)
            assert graph.num_nodes > 0
            assert graph.num_edges > 0

    def test_node_count_matches_scale(self):
        graph = load_dataset("flixster", scale=0.05)
        assert graph.num_nodes == round(12_900 * 0.05)

    def test_average_degree_close_to_paper(self):
        graph = load_dataset("flixster", scale=0.05, rng=0)
        avg = graph.num_edges / graph.num_nodes
        spec = PAPER_DATASETS["flixster"]
        assert 0.6 * spec.avg_out_degree < avg < 1.4 * spec.avg_out_degree

    def test_weighted_cascade_default(self):
        graph = load_dataset("douban-book", scale=0.02, rng=0)
        totals = np.zeros(graph.num_nodes)
        np.add.at(totals, graph.edge_targets, graph.edge_probabilities)
        incoming = totals[np.unique(graph.edge_targets)]
        np.testing.assert_allclose(incoming, 1.0, atol=1e-9)

    def test_trivalency_weighting(self):
        graph = load_dataset("douban-book", scale=0.02, weighting="trivalency", rng=0)
        assert set(np.round(graph.edge_probabilities, 6)) <= {0.1, 0.01, 0.001}

    def test_constant_weighting(self):
        graph = load_dataset(
            "lastfm", scale=0.01, weighting="constant", constant=0.2, rng=0
        )
        assert np.allclose(graph.edge_probabilities, 0.2)

    def test_deterministic_given_seed(self):
        a = load_dataset("flixster", scale=0.02, rng=9)
        b = load_dataset("flixster", scale=0.02, rng=9)
        assert a == b

    def test_datasets_use_distinct_streams(self):
        a = load_dataset("flixster", scale=0.02, rng=9)
        b = load_dataset("douban-book", scale=0.02, rng=9)
        assert a.num_nodes != b.num_nodes or a.num_edges != b.num_edges

    def test_unknown_name_rejected(self):
        with pytest.raises(ExperimentError, match="unknown dataset"):
            load_dataset("orkut")

    def test_bad_scale_rejected(self):
        with pytest.raises(ExperimentError, match="scale"):
            load_dataset("flixster", scale=0.0)
        with pytest.raises(ExperimentError, match="scale"):
            load_dataset("flixster", scale=2.0)

    def test_bad_weighting_rejected(self):
        with pytest.raises(ExperimentError, match="weighting"):
            load_dataset("flixster", weighting="exponential")
