"""Flat RR-set storage: the batched engine's CSR-of-sets container.

Storing each RR-set as its own tiny ``np.ndarray`` (the seed
implementation) makes every downstream pass — coverage counting, greedy
invalidation, intersection tests — a Python loop over thousands of small
objects.  :class:`RRSetPool` instead keeps *all* RR-sets of one sampling
run in two flat arrays::

    nodes  : int32, the concatenated member nodes of every set
    indptr : int64, set ``i`` occupies ``nodes[indptr[i]:indptr[i+1]]``

exactly a CSR matrix with implicit unit data — so whole-pool operations
become single numpy calls: :meth:`coverage_counts` is one ``np.bincount``,
:meth:`intersects` one gather + ``bincount``, and the pooled
:func:`~repro.rrset.tim.greedy_max_coverage` runs its invalidation with
``np.subtract.at`` over pool slices.

The pool is *appendable*: generators add sets one at a time
(:meth:`append`, the per-root oracle path) or as pre-packed chunks
(:meth:`append_flat`, the vectorized :meth:`~repro.rrset.base.
RRSetGenerator.generate_batch` fast paths), with amortised-doubling
growth, which is what lets IMM's "top up to theta" phase extend one pool
across sampling rounds instead of rebuilding lists.  Memory accounting is
exposed via :attr:`nbytes` (used) and :attr:`capacity_bytes` (allocated).

Because the layout is two flat columns, pools also *persist* and *merge*
trivially: :meth:`from_flat` adopts existing (possibly memory-mapped,
read-only) arrays without a copy — the zero-copy load path of
:class:`~repro.store.PoolStore` — and :meth:`merge` /
:meth:`extend_pool` concatenate whole pools in O(total size) by copying
node columns once and offset-shifting CSR pointers, which is how
:mod:`repro.parallel` folds per-worker shards back into one pool.

Member nodes are stored as ``int32`` (graphs here are far below the 2**31
node ceiling, and halving the bytes doubles effective memory bandwidth of
every sweep); :meth:`__getitem__` returns the raw ``int32`` view while
:meth:`to_list` widens to the ``int64`` arrays the legacy list API used.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

# Re-exported here for the batched sweeps; the canonical home is the graph
# layer, which forward cascades share.
from repro.graph.digraph import expand_csr  # noqa: F401

_INT32_MAX = np.iinfo(np.int32).max


class RRSetPool:
    """A growable flat pool of RR-sets over nodes ``0 .. num_nodes-1``."""

    __slots__ = (
        "_num_nodes",
        "_nodes",
        "_indptr",
        "_num_sets",
        "_used",
        "_set_ids_cache",
        "_frozen",
    )

    def __init__(
        self,
        num_nodes: int,
        *,
        node_capacity: int = 1024,
        set_capacity: int = 256,
    ) -> None:
        num_nodes = int(num_nodes)
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
        if num_nodes > _INT32_MAX:
            raise ValueError(
                f"num_nodes {num_nodes} exceeds the int32 node-id range"
            )
        self._num_nodes = num_nodes
        self._nodes = np.empty(max(int(node_capacity), 1), dtype=np.int32)
        self._indptr = np.zeros(max(int(set_capacity), 1) + 1, dtype=np.int64)
        self._num_sets = 0
        self._used = 0
        self._set_ids_cache: Optional[np.ndarray] = None
        self._frozen = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_sets(cls, num_nodes: int, sets: Iterable[np.ndarray]) -> "RRSetPool":
        """Pack an iterable of per-set node arrays into one pool."""
        materialized = [np.asarray(s) for s in sets]
        total = sum(int(s.size) for s in materialized)
        pool = cls(
            num_nodes,
            node_capacity=max(total, 1),
            set_capacity=max(len(materialized), 1),
        )
        for rr_set in materialized:
            pool.append(rr_set)
        return pool

    @classmethod
    def from_flat(
        cls,
        num_nodes: int,
        nodes: np.ndarray,
        indptr: np.ndarray,
        *,
        validate: bool = True,
    ) -> "RRSetPool":
        """Adopt existing flat CSR arrays *without copying them*.

        This is the zero-copy load path of :class:`~repro.store.PoolStore`:
        ``nodes`` / ``indptr`` may be memory-mapped (even read-only) views
        of on-disk ``.npy`` columns.  The pool stays *appendable*: both
        arrays are adopted exactly full, so the first append reallocates
        into fresh writable memory (the normal amortised-doubling growth)
        and the mapped files are never written to.

        ``validate`` checks the CSR invariants (``indptr`` int64 ascending
        from 0, last offset == ``nodes.size``, members in range) — skip it
        only for arrays produced by this class.
        """
        nodes = np.asarray(nodes)
        indptr = np.asarray(indptr)
        if validate:
            if indptr.ndim != 1 or indptr.size < 1:
                raise ValueError("indptr must be a non-empty 1-D offset array")
            if nodes.ndim != 1:
                raise ValueError("nodes must be a 1-D member array")
            if indptr.dtype != np.int64 or nodes.dtype != np.int32:
                raise ValueError(
                    "expected int32 nodes and int64 indptr, got "
                    f"{nodes.dtype} / {indptr.dtype}"
                )
            if int(indptr[0]) != 0 or int(indptr[-1]) != nodes.size:
                raise ValueError(
                    f"indptr must run from 0 to nodes.size ({nodes.size}); "
                    f"got [{int(indptr[0])}, {int(indptr[-1])}]"
                )
            if indptr.size > 1 and np.any(np.diff(indptr) < 0):
                raise ValueError("indptr offsets must be non-decreasing")
            if nodes.size and (
                int(nodes.min()) < 0 or int(nodes.max()) >= int(num_nodes)
            ):
                raise ValueError(
                    f"member nodes must lie in [0, {int(num_nodes) - 1}]"
                )
        pool = cls.__new__(cls)
        pool._num_nodes = int(num_nodes)
        pool._nodes = nodes
        pool._indptr = indptr
        pool._num_sets = int(indptr.size - 1)
        pool._used = int(indptr[-1])
        pool._set_ids_cache = None
        pool._frozen = False
        return pool

    @classmethod
    def merge(cls, pools: Sequence["RRSetPool"]) -> "RRSetPool":
        """Concatenate several pools into one new pool, O(total size).

        The multi-pool merge kernel of :mod:`repro.parallel`: per-worker
        shard pools are combined by copying each shard's flat node array
        once and offset-shifting its CSR pointers — no per-set Python
        work.  Set order is shard order, then within-shard order.  All
        pools must share one node universe.
        """
        pools = list(pools)
        if not pools:
            raise ValueError("merge needs at least one pool")
        num_nodes = pools[0].num_nodes
        for pool in pools[1:]:
            if pool.num_nodes != num_nodes:
                raise ValueError(
                    f"cannot merge pools over different node universes "
                    f"({pool.num_nodes} != {num_nodes})"
                )
        merged = cls(
            num_nodes,
            node_capacity=max(sum(p.total_nodes for p in pools), 1),
            set_capacity=max(sum(len(p) for p in pools), 1),
        )
        for pool in pools:
            merged.extend_pool(pool)
        return merged

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def _reserve_nodes(self, extra: int) -> None:
        need = self._used + extra
        if need <= self._nodes.size:
            return
        new_size = max(need, 2 * self._nodes.size)
        grown = np.empty(new_size, dtype=np.int32)
        grown[: self._used] = self._nodes[: self._used]
        self._nodes = grown

    def _reserve_sets(self, extra: int) -> None:
        need = self._num_sets + 1 + extra
        if need <= self._indptr.size:
            return
        new_size = max(need, 2 * self._indptr.size)
        grown = np.zeros(new_size, dtype=np.int64)
        grown[: self._num_sets + 1] = self._indptr[: self._num_sets + 1]
        self._indptr = grown

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _check_writable(self) -> None:
        if self._frozen:
            raise ValueError(
                "pool is a read-only prefix view; append to the parent pool"
            )

    def append(self, rr_set: np.ndarray) -> None:
        """Append one RR-set (an array of member node ids)."""
        self._check_writable()
        rr_set = np.asarray(rr_set)
        size = int(rr_set.size)
        self._reserve_nodes(size)
        self._reserve_sets(1)
        if size:  # zero-length writes would still trip read-only (mmap) buffers
            self._nodes[self._used : self._used + size] = rr_set
        self._used += size
        self._num_sets += 1
        self._indptr[self._num_sets] = self._used

    def extend(self, sets: Iterable[np.ndarray]) -> None:
        """Append several RR-sets."""
        for rr_set in sets:
            self.append(rr_set)

    def append_flat(self, nodes: np.ndarray, lengths: np.ndarray) -> None:
        """Bulk-append a pre-packed chunk of RR-sets.

        ``nodes`` is the concatenation of the chunk's sets in order and
        ``lengths[i]`` the size of the ``i``-th set (``lengths.sum() ==
        nodes.size``).  This is the fast-path entry point: one copy, no
        per-set Python work.
        """
        self._check_writable()
        nodes = np.asarray(nodes)
        lengths = np.asarray(lengths, dtype=np.int64)
        total = int(lengths.sum())
        if total != nodes.size:
            raise ValueError(
                f"lengths sum to {total} but {nodes.size} nodes were given"
            )
        count = int(lengths.size)
        self._reserve_nodes(total)
        self._reserve_sets(count)
        if total:
            self._nodes[self._used : self._used + total] = nodes
        if count:  # a zero-length write would trip read-only (mmap) buffers
            offsets = self._used + np.cumsum(lengths)
            self._indptr[
                self._num_sets + 1 : self._num_sets + 1 + count
            ] = offsets
        self._used += total
        self._num_sets += count

    def extend_pool(self, other: "RRSetPool") -> None:
        """Append every set of ``other``, O(``other.total_nodes``).

        The in-place half of the merge kernel (:meth:`merge` builds a new
        pool from many): ``other``'s flat node array is copied once and
        its CSR offsets are shifted by this pool's current fill — the
        vectorized equivalent of ``extend(other)`` with no per-set work.
        Used by the parallel engine to fold worker shards into the
        caller's (possibly warm) pool.
        """
        self._check_writable()
        if other.num_nodes != self._num_nodes:
            raise ValueError(
                f"cannot extend with a pool over a different node universe "
                f"({other.num_nodes} != {self._num_nodes})"
            )
        total = other.total_nodes
        count = len(other)
        self._reserve_nodes(total)
        self._reserve_sets(count)
        if total:
            self._nodes[self._used : self._used + total] = other.nodes
        if count:  # a zero-length write would trip read-only (mmap) buffers
            self._indptr[self._num_sets + 1 : self._num_sets + 1 + count] = (
                other.indptr[1:] + self._used
            )
        self._used += total
        self._num_sets += count

    # ------------------------------------------------------------------
    # Views and accounting
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Size of the node universe the sets draw from."""
        return self._num_nodes

    @property
    def nodes(self) -> np.ndarray:
        """Flat member-node array (``int32`` view over used entries)."""
        return self._nodes[: self._used]

    @property
    def indptr(self) -> np.ndarray:
        """CSR offsets; set ``i`` is ``nodes[indptr[i]:indptr[i+1]]``."""
        return self._indptr[: self._num_sets + 1]

    @property
    def lengths(self) -> np.ndarray:
        """Per-set sizes (length ``len(self)``)."""
        return np.diff(self.indptr)

    @property
    def total_nodes(self) -> int:
        """Total number of stored member entries across all sets."""
        return self._used

    @property
    def nbytes(self) -> int:
        """Bytes of pool data in use (nodes + offsets)."""
        return self._used * self._nodes.itemsize + (
            self._num_sets + 1
        ) * self._indptr.itemsize

    @property
    def capacity_bytes(self) -> int:
        """Bytes currently allocated, including growth slack."""
        return self._nodes.nbytes + self._indptr.nbytes

    def __len__(self) -> int:
        return self._num_sets

    def __getitem__(self, index: int) -> np.ndarray:
        i = int(index)
        if i < 0:
            i += self._num_sets
        if not 0 <= i < self._num_sets:
            raise IndexError(f"set index {index} out of range [0, {self._num_sets})")
        return self._nodes[self._indptr[i] : self._indptr[i + 1]]

    def __iter__(self) -> Iterator[np.ndarray]:
        for i in range(self._num_sets):
            yield self[i]

    def to_list(self) -> list[np.ndarray]:
        """The legacy representation: one ``int64`` array per set."""
        return [np.asarray(rr_set, dtype=np.int64) for rr_set in self]

    def prefix(self, count: int) -> "RRSetPool":
        """A zero-copy *read-only* view of the first ``count`` sets.

        Shares the underlying buffers, so it must not be appended to and
        is only valid until the parent pool grows past its current
        capacity.  Used by :func:`~repro.rrset.tim.general_tim` to honour
        a pinned ``theta_override`` against a warm pool that holds more
        sets than the pin.
        """
        count = int(count)
        if not 0 <= count <= self._num_sets:
            raise ValueError(
                f"prefix count {count} out of range [0, {self._num_sets}]"
            )
        view = RRSetPool.__new__(RRSetPool)
        view._num_nodes = self._num_nodes
        view._nodes = self._nodes
        view._indptr = self._indptr
        view._num_sets = count
        view._used = int(self._indptr[count])
        view._set_ids_cache = None
        view._frozen = True  # appends would corrupt the shared buffers
        return view

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RRSetPool(sets={self._num_sets}, entries={self._used}, "
            f"n={self._num_nodes})"
        )

    # ------------------------------------------------------------------
    # Whole-pool kernels
    # ------------------------------------------------------------------
    def set_ids(self) -> np.ndarray:
        """Set id of every flat entry (``np.repeat`` over lengths).

        Cached: existing entries keep their set id under appends, so the
        cache stays valid exactly while the entry count is unchanged
        (appending only empty sets included) and is rebuilt lazily
        otherwise.  Callers must not mutate the returned array.
        """
        cache = self._set_ids_cache
        if cache is None or cache.size != self._used:
            cache = np.repeat(
                np.arange(self._num_sets, dtype=np.int64), self.lengths
            )
            self._set_ids_cache = cache
        return cache

    def coverage_counts(self) -> np.ndarray:
        """Per-node incidence counts: ``counts[v] = #{i : v in set i}``.

        One ``np.bincount`` over the flat node array — the pooled
        replacement for the seed's per-set per-node counting loop.
        """
        return np.bincount(self.nodes, minlength=self._num_nodes)

    def intersects(self, node_mask: np.ndarray) -> np.ndarray:
        """Boolean per-set array: does the set hit a marked node?

        ``node_mask`` is a length-``num_nodes`` boolean array; the result
        drives RR-set objective estimation (activation equivalence counts
        intersecting sets).  Empty sets never intersect.
        """
        node_mask = np.asarray(node_mask, dtype=bool)
        if node_mask.shape != (self._num_nodes,):
            raise ValueError(
                f"node_mask must have shape ({self._num_nodes},), "
                f"got {node_mask.shape}"
            )
        hit_entries = node_mask[self.nodes]
        hits = np.bincount(
            self.set_ids()[hit_entries], minlength=self._num_sets
        )
        return hits > 0

    def widths(
        self,
        in_degrees: np.ndarray,
        *,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> np.ndarray:
        """Per-set ``w(R)``: total in-degree of each set's members.

        Vectorises TIM's ``KptEstimation`` width statistic (one gather +
        ``bincount`` instead of a per-set reduction).  ``start``/``stop``
        restrict the computation to sets ``[start, stop)`` so callers
        consuming successive slices of a shared pool (the pooled KPT
        rounds) touch only the slice, not the whole pool.
        """
        in_degrees = np.asarray(in_degrees)
        stop = self._num_sets if stop is None else int(stop)
        start = int(start)
        if not 0 <= start <= stop <= self._num_sets:
            raise ValueError(
                f"invalid set range [{start}, {stop}) for {self._num_sets} sets"
            )
        if start == 0 and stop == self._num_sets:
            ids = self.set_ids()
            nodes = self.nodes
        else:
            indptr = self._indptr
            lo, hi = int(indptr[start]), int(indptr[stop])
            nodes = self._nodes[lo:hi]
            ids = np.repeat(
                np.arange(stop - start, dtype=np.int64),
                np.diff(indptr[start : stop + 1]),
            )
        return np.bincount(
            ids,
            weights=in_degrees[nodes].astype(np.float64),
            minlength=stop - start,
        ).astype(np.int64)


def unique_inverse(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(unique, inverse)`` of an integer key array via one sort.

    ``unique`` is sorted-distinct and ``unique[inverse]`` reconstructs
    ``keys`` — the fast replacement for ``np.unique(..,
    return_inverse=True)`` that the batched sweeps use when several lanes
    of one chunk may query the same memoised world variable in a single
    bulk call (a coin or threshold must be drawn once per distinct key).
    """
    order = np.argsort(keys, kind="stable")
    ordered = keys[order]
    first = np.empty(ordered.size, dtype=bool)
    if ordered.size:
        first[0] = True
        np.not_equal(ordered[1:], ordered[:-1], out=first[1:])
    inverse = np.empty(keys.size, dtype=np.int64)
    inverse[order] = np.cumsum(first) - 1
    return ordered[first], inverse


class ChunkCoinMemo:
    """Memoised per-``(chunk member, edge)`` Bernoulli coins.

    The batched RR-CIM and RR-SIM+ kernels test the same edge from several
    sub-searches of one world — forward labeling, the primary backward
    search, Case-1 secondary searches and Case-4 zig-zag checks — so a
    coin flipped in one sweep must be replayed by the others, exactly like
    the oracle's memoised :meth:`~repro.models.sources.WorldSource.
    edge_live`.  (RR-SIM's two-phase kernel gets away with a write-once
    record because its phases never re-test an edge among themselves; the
    richer kernels need a growable memo.)

    Keys are ``member * num_edges + edge_id``.  The memo is one sorted
    key array plus parallel values; every bulk query is a ``searchsorted``
    lookup, fresh draws are merged in sorted position via ``np.insert``.
    """

    __slots__ = (
        "_keys",
        "_vals",
        "_okeys",
        "_ovals",
        "_pending_keys",
        "_pending_vals",
        "_pending",
    )

    def __init__(self) -> None:
        # Base tier: bulk-recorded coins, consolidated (sorted) lazily.
        self._keys = np.empty(0, dtype=np.int64)
        self._vals = np.empty(0, dtype=bool)
        # Overlay tier: coins first drawn by a lookup; kept separate so
        # merging them never rewrites the (much larger) base.
        self._okeys = np.empty(0, dtype=np.int64)
        self._ovals = np.empty(0, dtype=bool)
        self._pending_keys: list[np.ndarray] = []
        self._pending_vals: list[np.ndarray] = []
        self._pending = 0

    @property
    def size(self) -> int:
        """Number of memoised coins (distinct keys seen so far)."""
        return self._keys.size + self._okeys.size + self._pending

    def record(self, keys: np.ndarray, vals: np.ndarray) -> None:
        """Append coins for previously-unseen keys without a lookup.

        The fast lane for sweep phases that can never re-test an edge
        (each source node expands at most once, and an edge belongs to
        exactly one source): coins accumulate as raw fragments, deferring
        all sorting to one consolidation pass when a later phase first
        needs to look something up.  Callers must guarantee the keys are
        distinct from everything recorded or drawn before.
        """
        if keys.size:
            self._pending_keys.append(keys)
            self._pending_vals.append(vals)
            self._pending += keys.size

    def _consolidate(self) -> None:
        if not self._pending:
            return
        keys = np.concatenate([self._keys, *self._pending_keys])
        vals = np.concatenate([self._vals, *self._pending_vals])
        order = np.argsort(keys, kind="stable")
        self._keys = keys[order]
        self._vals = vals[order]
        self._pending_keys.clear()
        self._pending_vals.clear()
        self._pending = 0

    def lookup_or_draw(
        self, keys: np.ndarray, probs: np.ndarray, gen: np.random.Generator
    ) -> np.ndarray:
        """Coin value for every key (repeats allowed within one call).

        Known keys replay their memoised value; unseen keys draw a fresh
        ``Bernoulli(probs)`` coin — once per *distinct* key — and are
        recorded for later sweeps.
        """
        if keys.size == 0:
            return np.empty(0, dtype=bool)
        self._consolidate()
        ukeys, inverse = unique_inverse(keys)
        uvals = np.empty(ukeys.size, dtype=bool)
        unseen = np.ones(ukeys.size, dtype=bool)
        for tier_keys, tier_vals in (
            (self._keys, self._vals),
            (self._okeys, self._ovals),
        ):
            if tier_keys.size and unseen.any():
                idx = np.flatnonzero(unseen)
                pos = np.minimum(
                    np.searchsorted(tier_keys, ukeys[idx]), tier_keys.size - 1
                )
                hit = tier_keys[pos] == ukeys[idx]
                uvals[idx[hit]] = tier_vals[pos[hit]]
                unseen[idx[hit]] = False
        if unseen.any():
            uprobs = np.empty(ukeys.size, dtype=np.float64)
            uprobs[inverse] = probs  # any occurrence carries the edge's prob
            idx = np.flatnonzero(unseen)
            uvals[idx] = gen.random(idx.size) < uprobs[idx]
            # Manual O(overlay) two-way merge into the overlay tier
            # (np.insert pays far too much per-call overhead here).
            new_keys = ukeys[idx]
            total = self._okeys.size + new_keys.size
            new_pos = np.searchsorted(self._okeys, new_keys) + np.arange(
                new_keys.size, dtype=np.int64
            )
            merged_keys = np.empty(total, dtype=np.int64)
            merged_vals = np.empty(total, dtype=bool)
            merged_keys[new_pos] = new_keys
            merged_vals[new_pos] = uvals[idx]
            old = np.ones(total, dtype=bool)
            old[new_pos] = False
            merged_keys[old] = self._okeys
            merged_vals[old] = self._ovals
            self._okeys = merged_keys
            self._ovals = merged_vals
        return uvals[inverse]


def unique_keys(keys: np.ndarray) -> np.ndarray:
    """Sorted distinct values of an integer key array.

    Drop-in for ``np.unique`` on the sweeps' ``world * n + node`` keys —
    a plain sort + neighbour-comparison, which is an order of magnitude
    faster than ``np.unique``'s generic path on these workloads.
    """
    if keys.size <= 1:
        return keys.copy()
    ordered = np.sort(keys)
    keep = np.empty(ordered.size, dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def flatten_members(
    member_sets: Sequence[np.ndarray],
    member_ids: Sequence[np.ndarray],
    count: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Regroup level-order ``(set_id, node)`` fragments into packed sets.

    The batched generators discover members level-by-level: each sweep
    level yields parallel arrays of set ids and nodes.  This helper
    concatenates all levels, stably sorts by set id and returns
    ``(nodes, lengths)`` ready for :meth:`RRSetPool.append_flat` —
    including length-0 entries for sets that produced no members.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if not member_ids:
        return np.empty(0, dtype=np.int32), np.zeros(count, dtype=np.int64)
    ids = np.concatenate([np.asarray(a) for a in member_ids])
    nodes = np.concatenate([np.asarray(a) for a in member_sets])
    order = np.argsort(ids, kind="stable")
    lengths = np.bincount(ids, minlength=count).astype(np.int64)
    return nodes[order].astype(np.int32, copy=False), lengths
