"""Appendix A.1: the five unreachable joint NLA states stay unreachable."""

import numpy as np
import pytest

from repro.graph import erdos_renyi_digraph, uniform_random_probabilities
from repro.models import GAP, UNREACHABLE_JOINT_STATES, ItemState, simulate
from repro.models.states import is_terminal
from repro.rng import make_rng


class TestStateEnum:
    def test_values(self):
        assert ItemState.IDLE == 0
        assert ItemState.ADOPTED == 2

    def test_terminal_states(self):
        assert is_terminal(ItemState.ADOPTED)
        assert is_terminal(ItemState.REJECTED)
        assert not is_terminal(ItemState.IDLE)
        assert not is_terminal(ItemState.SUSPENDED)

    def test_unreachable_set_matches_appendix(self):
        expected = {
            (ItemState.IDLE, ItemState.REJECTED),
            (ItemState.SUSPENDED, ItemState.REJECTED),
            (ItemState.REJECTED, ItemState.IDLE),
            (ItemState.REJECTED, ItemState.SUSPENDED),
            (ItemState.REJECTED, ItemState.REJECTED),
        }
        assert UNREACHABLE_JOINT_STATES == frozenset(expected)


@pytest.mark.parametrize("seed", range(5))
def test_random_diffusions_never_reach_forbidden_states(seed):
    """Lemmas 9-10: simulate many random instances with random GAPs and
    assert no node ends in an unreachable joint state."""
    gen = make_rng(seed)
    graph = uniform_random_probabilities(
        erdos_renyi_digraph(25, 0.12, rng=gen), 0.2, 1.0, rng=gen
    )
    for _ in range(60):
        gaps = GAP(*gen.random(4))
        seeds_a = list(gen.choice(25, size=2, replace=False))
        seeds_b = list(gen.choice(25, size=2, replace=False))
        out = simulate(graph, gaps, seeds_a, seeds_b, rng=gen)
        for v in range(graph.num_nodes):
            joint = out.joint_state(v)
            assert joint not in UNREACHABLE_JOINT_STATES, (
                f"node {v} reached forbidden state {joint} under {gaps}"
            )
