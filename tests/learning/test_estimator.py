"""Tests for GAP learning: hand-counted instances and ground-truth recovery."""

import pytest

from repro.errors import EstimationError
from repro.learning import (
    INFORM,
    RATE,
    ActionLog,
    generate_synthetic_log,
    learn_gap_pair,
)
from repro.models import GAP


class TestCountingFormulae:
    def build_log(self) -> ActionLog:
        """Hand-designed log with known counts.

        * u1: informed A@1, rates A@1.1                     (A|∅ success)
        * u2: informed A@1, no rating                        (A|∅ failure)
        * u3: rates B@1, informed A@2, rates A@2.1           (A|B success)
        * u4: rates B@1, informed A@2                        (A|B failure)
        * all of u1..u4 informed of B the same way for B-side counts.
        """
        log = ActionLog()
        log.record("u1", "A", INFORM, 1.0)
        log.record("u1", "A", RATE, 1.1)
        log.record("u2", "A", INFORM, 1.0)
        log.record("u3", "B", RATE, 1.0)
        log.record("u3", "A", INFORM, 2.0)
        log.record("u3", "A", RATE, 2.1)
        log.record("u4", "B", RATE, 1.0)
        log.record("u4", "A", INFORM, 2.0)
        # B-side: u1 rates A first then informed of B; u2 informed only.
        log.record("u1", "B", INFORM, 2.0)
        log.record("u2", "B", INFORM, 2.0)
        return log

    def test_counts(self):
        learned = learn_gap_pair(self.build_log(), "A", "B")
        # q_{A|∅}: raters w/o prior B rating = {u1}; informed w/o prior
        # B rating = {u1, u2} -> 1/2.
        assert learned.gap.q_a == pytest.approx(0.5)
        # q_{A|B}: {u3} / {u3, u4} -> 1/2.
        assert learned.gap.q_a_given_b == pytest.approx(0.5)
        # q_{B|∅}: raters of B without prior A rating = {u3, u4}; informed
        # without prior A rating = {u2, u3, u4} -> 2/3.
        assert learned.gap.q_b == pytest.approx(2.0 / 3.0)
        # q_{B|A}: u1 rated A before informed of B, never rated B -> 0/1.
        assert learned.gap.q_b_given_a == pytest.approx(0.0)
        assert learned.samples["q_a"] == 2
        assert learned.samples["q_a_given_b"] == 2

    def test_interval_clipping(self):
        learned = learn_gap_pair(self.build_log(), "A", "B")
        low, high = learned.interval("q_b_given_a")
        assert low == 0.0
        assert 0.0 <= high <= 1.0

    def test_missing_data_raises(self):
        log = ActionLog()
        log.record("u1", "A", INFORM, 1.0)
        with pytest.raises(EstimationError):
            learn_gap_pair(log, "A", "B")


class TestGroundTruthRecovery:
    @pytest.mark.parametrize(
        "truth",
        [
            GAP(0.6, 0.9, 0.5, 0.8),    # mutual complementarity
            GAP(0.8, 0.3, 0.7, 0.2),    # mutual competition
            GAP(0.5, 0.5, 0.4, 0.4),    # indifference
        ],
    )
    def test_recovers_within_confidence_interval(self, truth):
        log = generate_synthetic_log(
            [("movie-A", "movie-B", truth)], num_users=20_000, rng=11
        )
        learned = learn_gap_pair(log, "movie-A", "movie-B")
        for name in ("q_a", "q_a_given_b", "q_b", "q_b_given_a"):
            low, high = learned.interval(name)
            value = getattr(truth, name)
            margin = 2.0 * learned.halfwidths[name] + 0.02
            assert value - margin <= getattr(learned.gap, name) <= value + margin, (
                f"{name}: learned {getattr(learned.gap, name):.3f} "
                f"vs truth {value:.3f} (CI [{low:.3f}, {high:.3f}])"
            )

    def test_multiple_pairs_are_independent(self):
        pairs = [
            ("phone", "watch", GAP(0.5, 0.9, 0.3, 0.8)),
            ("book1", "book2", GAP(0.7, 0.7, 0.6, 0.6)),
        ]
        log = generate_synthetic_log(pairs, num_users=8000, rng=3)
        first = learn_gap_pair(log, "phone", "watch")
        second = learn_gap_pair(log, "book1", "book2")
        assert abs(first.gap.q_a_given_b - 0.9) < 0.05
        assert abs(second.gap.q_a - 0.7) < 0.05

    def test_contains_truth_helper(self):
        truth = GAP(0.6, 0.9, 0.5, 0.8)
        log = generate_synthetic_log([("a", "b", truth)], num_users=30_000, rng=5)
        learned = learn_gap_pair(log, "a", "b")
        # With 30K users the 95% CI should almost surely contain the truth.
        assert learned.contains_truth(truth)


class TestSyntheticLogValidation:
    def test_bad_exposure(self):
        from repro.errors import ActionLogError

        with pytest.raises(ActionLogError):
            generate_synthetic_log(
                [("a", "b", GAP(0.5, 0.5, 0.5, 0.5))], exposure_a=1.5
            )

    def test_identical_items_rejected(self):
        from repro.errors import ActionLogError

        with pytest.raises(ActionLogError):
            generate_synthetic_log([("a", "a", GAP(0.5, 0.5, 0.5, 0.5))])

    def test_zero_users_rejected(self):
        from repro.errors import ActionLogError

        with pytest.raises(ActionLogError):
            generate_synthetic_log(
                [("a", "b", GAP(0.5, 0.5, 0.5, 0.5))], num_users=0
            )
