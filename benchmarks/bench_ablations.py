"""Ablation benchmarks for the design choices called out in DESIGN.md §7.

* lazy vs eager world sampling for RR-set generation;
* CELF lazy greedy vs plain greedy (objective-call counts and time);
* vectorised frontier edge tests vs the scalar Triggering-model loop.
"""

import numpy as np

from repro.algorithms import high_degree_seeds
from repro.algorithms.greedy import celf_greedy
from repro.datasets import load_dataset
from repro.models import GAP, simulate_ic, simulate_triggering
from repro.models.possible_world import FrozenWorldSource, sample_possible_world
from repro.rng import make_rng
from repro.rrset import RRICGenerator


def bench_ablation_lazy_world_rr_sets(benchmark, bench_scale):
    """Lazy sampling only touches the reverse-reachable region."""
    graph = load_dataset("flixster", scale=bench_scale.scale, rng=3)
    generator = RRICGenerator(graph)
    gen = make_rng(0)
    benchmark(lambda: generator.generate(rng=gen))


def bench_ablation_eager_world_rr_sets(benchmark, bench_scale):
    """Eager sampling pays for the whole world per RR-set (the ablation)."""
    graph = load_dataset("flixster", scale=bench_scale.scale, rng=3)
    generator = RRICGenerator(graph)
    gen = make_rng(0)

    def run():
        world = FrozenWorldSource(sample_possible_world(graph, rng=gen))
        return generator.generate(rng=gen, world=world)

    benchmark(run)


def _coverage_objective(counter):
    sets = {i: {i, i + 50, i % 7} for i in range(40)}
    sets[0] = set(range(25))

    def objective(seed_list):
        counter["calls"] += 1
        covered = set()
        for s in seed_list:
            covered |= sets[s]
        return float(len(covered))

    return objective


def bench_ablation_celf_greedy(benchmark):
    counter = {"calls": 0}
    objective = _coverage_objective(counter)
    seeds, _ = benchmark.pedantic(
        lambda: celf_greedy(range(40), 8, objective), rounds=1, iterations=1
    )
    assert seeds[0] == 0
    # CELF should use far fewer calls than plain greedy's 1 + 40 * 8.
    assert counter["calls"] < 1 + 40 * 8


def bench_ablation_plain_greedy(benchmark):
    counter = {"calls": 0}
    objective = _coverage_objective(counter)

    def plain_greedy():
        chosen: list[int] = []
        for _ in range(8):
            best, best_value = None, float("-inf")
            for v in range(40):
                if v in chosen:
                    continue
                value = objective(chosen + [v])
                if value > best_value:
                    best, best_value = v, value
            chosen.append(best)
        return chosen

    seeds = benchmark.pedantic(plain_greedy, rounds=1, iterations=1)
    assert seeds[0] == 0


def bench_ablation_vectorized_ic(benchmark, bench_scale):
    graph = load_dataset("flixster", scale=bench_scale.scale, rng=3)
    seeds = high_degree_seeds(graph, 5)
    gen = make_rng(0)
    benchmark(lambda: simulate_ic(graph, seeds, rng=gen))


def bench_ablation_scalar_ic(benchmark, bench_scale):
    """IC via the scalar Triggering loop — the unvectorised ablation."""
    graph = load_dataset("flixster", scale=bench_scale.scale, rng=3)
    seeds = high_degree_seeds(graph, 5)
    gen = make_rng(0)
    benchmark(lambda: simulate_triggering(graph, seeds, rng=gen))


def bench_ablation_generic_spread_estimator(benchmark, bench_scale):
    """Per-inform Python engine (baseline for the vectorised ablation)."""
    from repro.models import GAP, estimate_spread

    graph = load_dataset("flixster", scale=bench_scale.scale, rng=3)
    seeds_b = high_degree_seeds(graph, 5)
    gaps = GAP(0.3, 0.8, 0.5, 0.5)
    benchmark(
        lambda: estimate_spread(graph, gaps, [0, 1, 2], seeds_b, runs=20, rng=1)
    )


def bench_ablation_vectorized_spread_estimator(benchmark, bench_scale):
    """Timing-free vectorised estimator (one-way complementarity)."""
    from repro.models import GAP
    from repro.models.fast_spread import fast_estimate_spread_one_way

    graph = load_dataset("flixster", scale=bench_scale.scale, rng=3)
    seeds_b = high_degree_seeds(graph, 5)
    gaps = GAP(0.3, 0.8, 0.5, 0.5)
    benchmark(
        lambda: fast_estimate_spread_one_way(
            graph, gaps, [0, 1, 2], seeds_b, runs=20, rng=1
        )
    )
