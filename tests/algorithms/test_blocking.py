"""Tests for the appendix-B.4 influence-blocking module."""

import pytest

from repro.errors import RegimeError
from repro.graph import DiGraph, path_digraph, star_digraph
from repro.models import GAP, exact_spread
from repro.algorithms.blocking import estimate_suppression, greedy_blocking

COMPETITIVE = GAP(q_a=0.8, q_a_given_b=0.0, q_b=1.0, q_b_given_a=0.0)


class TestEstimateSuppression:
    def test_matches_exact_difference(self):
        graph = path_digraph(4, probability=0.8)
        base, _ = exact_spread(graph, COMPETITIVE, [0], [])
        blocked, _ = exact_spread(graph, COMPETITIVE, [0], [1])
        est = estimate_suppression(graph, COMPETITIVE, [0], [1], runs=3000, rng=0)
        assert est.mean == pytest.approx(base - blocked, abs=5 * est.stderr + 1e-9)

    def test_nonnegative_under_competition(self):
        graph = star_digraph(8)
        est = estimate_suppression(graph, COMPETITIVE, [0], [1, 2], runs=300, rng=1)
        assert est.mean >= -1e-9

    def test_zero_without_b_seeds(self):
        graph = path_digraph(3)
        est = estimate_suppression(graph, COMPETITIVE, [0], [], runs=50, rng=2)
        assert est.mean == pytest.approx(0.0)

    def test_paired_variance_lower(self):
        graph = path_digraph(6, probability=0.7)
        paired = estimate_suppression(
            graph, COMPETITIVE, [0], [2], runs=600, rng=3, paired=True
        )
        unpaired = estimate_suppression(
            graph, COMPETITIVE, [0], [2], runs=600, rng=3, paired=False
        )
        assert paired.std <= unpaired.std


class TestGreedyBlocking:
    def test_requires_competition(self):
        with pytest.raises(RegimeError):
            greedy_blocking(path_digraph(3), GAP(0.3, 0.8, 0.5, 0.9), [0], 1)

    def test_blocks_the_choke_point(self):
        """A path 0 -> 1 -> 2 -> 3: seeding B at node 1 chokes A's spread
        the most (it rejects A and stops relaying it)."""
        graph = path_digraph(4)
        seeds = greedy_blocking(
            graph, COMPETITIVE, [0], 1, runs=150, rng=0, candidates=[1, 2, 3]
        )
        assert seeds == [1]

    def test_beats_random_blocker(self):
        graph = DiGraph.from_edges(
            7,
            [
                (0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0),
                (0, 4, 1.0), (4, 5, 1.0), (5, 6, 1.0),
            ],
        )
        chosen = greedy_blocking(
            graph, COMPETITIVE, [0], 2, runs=150, rng=1, candidates=[1, 3, 4, 6]
        )
        ours = estimate_suppression(
            graph, COMPETITIVE, [0], chosen, runs=800, rng=2
        ).mean
        worst = estimate_suppression(
            graph, COMPETITIVE, [0], [3, 6], runs=800, rng=2
        ).mean
        assert ours > worst
