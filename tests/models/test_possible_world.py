"""Tests for eager possible worlds and the §5.1 equivalence-class claim."""

import numpy as np
import pytest

from repro.graph import DiGraph, path_digraph
from repro.models import GAP, simulate
from repro.models.possible_world import FrozenWorldSource, sample_possible_world
from repro.models.sources import ITEM_A, ITEM_B
from repro.rng import make_rng


class TestSampling:
    def test_shapes(self):
        graph = path_digraph(4)
        world = sample_possible_world(graph, rng=0)
        assert world.live.shape == (3,)
        assert world.alpha_a.shape == world.alpha_b.shape == (4,)
        assert world.tau_a_first.shape == (4,)

    def test_deterministic_given_seed(self):
        graph = path_digraph(4)
        a = sample_possible_world(graph, rng=5)
        b = sample_possible_world(graph, rng=5)
        assert np.array_equal(a.alpha_a, b.alpha_a)
        assert np.array_equal(a.live, b.live)

    def test_liveness_rate_tracks_probability(self):
        graph = path_digraph(2000, probability=0.3)
        world = sample_possible_world(graph, rng=1)
        assert 0.25 < world.live.mean() < 0.35

    def test_with_alpha_override(self):
        graph = path_digraph(3)
        world = sample_possible_world(graph, rng=0)
        changed = world.with_alpha(1, alpha_a=0.123, alpha_b=0.456)
        assert changed.alpha_a[1] == 0.123
        assert changed.alpha_b[1] == 0.456
        # Original untouched (frozen dataclass semantics).
        assert world.alpha_a[1] != 0.123 or world.alpha_b[1] != 0.456


class TestAlphaRangeIndex:
    def test_ranges_partition_unit_interval(self):
        graph = path_digraph(2)
        gaps = GAP(0.3, 0.8, 0.4, 0.9)
        for alpha, expected in [(0.1, 0), (0.3, 1), (0.5, 1), (0.8, 2), (0.95, 2)]:
            world = sample_possible_world(graph, rng=0).with_alpha(0, alpha_a=alpha)
            assert world.alpha_range_index(0, ITEM_A, gaps) == expected

    def test_item_b_uses_b_cuts(self):
        graph = path_digraph(2)
        gaps = GAP(0.3, 0.8, 0.4, 0.9)
        world = sample_possible_world(graph, rng=0).with_alpha(0, alpha_b=0.5)
        assert world.alpha_range_index(0, ITEM_B, gaps) == 1

    def test_competitive_cuts_sorted(self):
        graph = path_digraph(2)
        gaps = GAP(0.8, 0.3, 0.9, 0.4)  # Q-: cuts still sorted ascending
        world = sample_possible_world(graph, rng=0).with_alpha(0, alpha_a=0.5)
        assert world.alpha_range_index(0, ITEM_A, gaps) == 1


class TestEquivalenceClassClaim:
    def test_worlds_in_same_class_behave_identically(self):
        """§5.1: two worlds whose thresholds fall in the same ranges (same
        liveness/priorities/taus) yield identical outcomes."""
        graph = DiGraph.from_edges(
            5, [(0, 1, 0.7), (1, 2, 0.8), (0, 3, 0.6), (3, 2, 0.9), (2, 4, 0.5)]
        )
        gaps = GAP(0.3, 0.8, 0.4, 0.9)
        gen = make_rng(3)
        checked = 0
        for seed in range(40):
            base = sample_possible_world(graph, rng=seed)
            # Jitter every alpha within its own range.
            jittered_a = base.alpha_a.copy()
            jittered_b = base.alpha_b.copy()
            for v in range(graph.num_nodes):
                for item, (alpha, cuts) in enumerate(
                    [
                        (jittered_a, sorted((gaps.q_a, gaps.q_a_given_b))),
                        (jittered_b, sorted((gaps.q_b, gaps.q_b_given_a))),
                    ]
                ):
                    bounds = [0.0, *cuts, 1.0]
                    value = alpha[v]
                    for low, high in zip(bounds, bounds[1:]):
                        if low <= value < high or (value == 1.0 and high == 1.0):
                            span = high - low
                            alpha[v] = low + span * gen.random() * 0.999
                            break
            jittered = base.__class__(
                live=base.live, priority=base.priority,
                alpha_a=jittered_a, alpha_b=jittered_b,
                tau_a_first=base.tau_a_first,
            )
            out1 = simulate(graph, gaps, [0], [3], source=FrozenWorldSource(base))
            out2 = simulate(graph, gaps, [0], [3], source=FrozenWorldSource(jittered))
            assert np.array_equal(out1.a_adopted, out2.a_adopted)
            assert np.array_equal(out1.b_adopted, out2.b_adopted)
            checked += 1
        assert checked == 40
