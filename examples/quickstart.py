"""Quickstart: the Com-IC model and SelfInfMax in ~40 lines.

Builds a small synthetic social network, runs a single Com-IC diffusion of
two complementary items, estimates spreads by Monte Carlo, and selects
A-seeds with the paper's GeneralTIM + RR-SIM+ (+ Sandwich) algorithm.

Run:  python examples/quickstart.py
"""

from repro import ComICSession, EngineConfig, GAP, SelfInfMaxQuery, estimate_spread, simulate
from repro.algorithms import high_degree_seeds
from repro.graph import power_law_digraph, weighted_cascade_probabilities


def main() -> None:
    # 1. A 500-node power-law network with weighted-cascade probabilities.
    graph = weighted_cascade_probabilities(power_law_digraph(500, rng=42))
    print(f"network: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # 2. Two mutually complementary items: adopting B nearly doubles the
    #    chance of adopting A, and vice versa.
    gaps = GAP(q_a=0.4, q_a_given_b=0.8, q_b=0.4, q_b_given_a=0.8)
    print(f"GAPs: {gaps} (mutually complementary: {gaps.is_mutually_complementary})")

    # 3. One diffusion: item B is already seeded at the two biggest hubs.
    seeds_b = high_degree_seeds(graph, 2)
    outcome = simulate(graph, gaps, seeds_a=[0], seeds_b=seeds_b, rng=7)
    print(
        f"single cascade from A-seed {{0}}, B-seeds {seeds_b}: "
        f"{outcome.num_a_adopted} A-adopters, {outcome.num_b_adopted} B-adopters"
    )

    # 4. SelfInfMax: pick 5 A-seeds maximising sigma_A given those B-seeds.
    #    A session owns the network and caches RR-set pools across queries.
    session = ComICSession(
        graph, gaps, config=EngineConfig(theta_override=4000), rng=1
    )
    result = session.run(SelfInfMaxQuery(seeds_b=tuple(seeds_b), k=5))
    print(f"GeneralTIM ({result.method}) chose A-seeds: {result.seeds}")

    # A follow-up query with a bigger budget reuses the cached pool: the
    # session samples zero new RR-sets for it.
    bigger = session.run(SelfInfMaxQuery(seeds_b=tuple(seeds_b), k=8))
    print(f"k=8 follow-up reused the pool "
          f"(new RR-sets sampled: {bigger.diagnostics['rr_sets_sampled']})")

    # 5. Compare against naive high-degree seeding by Monte Carlo.
    ours = estimate_spread(graph, gaps, result.seeds, seeds_b, runs=400, rng=2)
    naive = estimate_spread(
        graph, gaps, high_degree_seeds(graph, 5), seeds_b, runs=400, rng=2
    )
    print(f"sigma_A(ours)       = {ours.mean:.1f} ± {ours.stderr:.1f}")
    print(f"sigma_A(high-degree) = {naive.mean:.1f} ± {naive.stderr:.1f}")


if __name__ == "__main__":
    main()
