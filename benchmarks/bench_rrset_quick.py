"""Standalone batched RR-set engine benchmark -> BENCH_rrset.json.

Quantifies the batched-engine acceptance numbers on a ~10k-node synthetic
power-law graph, without pytest-benchmark so CI can run it with numpy
alone:

* per-RR-set generation cost, per-root oracle vs ``generate_batch``, for
  **every fast-path regime**: RR-IC, RR-SIM, RR-SIM+, RR-CIM, RR-LT and
  RR-Block;
* pooled vs legacy ``greedy_max_coverage``;
* end-to-end SelfInfMax *and* CompInfMax via ``general_imm`` at equal
  ``eps``, batched engine vs oracle-forced generation, with RR-estimated
  objectives of both seed sets to confirm quality parity;
* end-to-end influence blocking through ``BlockingQuery``: the RR-Block
  route vs the Monte-Carlo CELF greedy on the same candidate pool, with
  MC-evaluated suppression of both seed sets to confirm quality parity.
  Its ``speedup_floor`` is gated like the generation rows, so a silent
  fallback to the MC path turns CI red;
* multiprocess generation (``parallel.generation``): ``workers=2``
  :class:`~repro.parallel.ParallelEngine` vs the serial batched kernel
  on the same regime.  Gated at a 1.5x floor — but only on runners with
  at least 2 CPUs (a single-core box cannot demonstrate parallel
  speedup; the row is still recorded with ``"gated": false``);
* persistent warm start (``store.warm_start``): a second session
  answering the same SelfInfMax query out of an on-disk
  :class:`~repro.store.PoolStore`.  Gated on ``warm_rr_sets_sampled ==
  0`` and seed equality — a silent cache-key/fingerprint mismatch that
  forces resampling turns CI red;
* dynamic-graph delta repair (``dynamic.update_then_query``): a
  ``track_touches`` session absorbs a sparse reweight
  :class:`~repro.graph.GraphDelta` via incremental pool repair and
  re-answers the query, vs fingerprint invalidation (a fresh session on
  the mutated graph resampling from scratch).  Gated on the repair
  route's speedup floor, on ``pools_repaired >= 1`` (a silent fallback
  to full regeneration turns CI red even if it happens to be fast) and
  on RR-evaluated seed-quality parity between the two routes.

* million-node sparse sweeps (``scale.1m_generation``, only with
  ``--scale-graph PATH``): RR-IC ``generate_batch`` on a SNAP-style
  edge-list graph, sparse chunk state vs the dense flat-array backend.
  Gated (on 1M+-node graphs) on a 2x wall-clock floor, on the sparse
  chunk sustaining >= 256 members within the default state budget while
  dense collapses to <= 16, and on member-multiset equality between the
  backends under a common chunk schedule (the chunk schedule fixes the
  coin-draw order, so equal schedules must give bit-identical pools).

The emitted JSON follows the stable schema documented in
``docs/benchmarks.md`` (``schema_version`` 5).  Each generation entry
records a ``speedup_floor``; the script exits non-zero when any regime's
measured batch-vs-oracle speedup falls below its floor, so a silent
fallback to the oracle loop turns CI red instead of just slowing users
down.

Usage::

    PYTHONPATH=src python benchmarks/bench_rrset_quick.py [--quick] \
        [--nodes 10000] [--output BENCH_rrset.json] \
        [--scale-graph edge_list.txt]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

import numpy as np

from repro.api import (
    BlockingQuery,
    ComICSession,
    EngineConfig,
    GraphDelta,
    SelfInfMaxQuery,
)
from repro.parallel import ParallelEngine
from repro.algorithms.baselines import high_degree_seeds
from repro.algorithms.blocking import estimate_suppression
from repro.graph.generators import power_law_digraph
from repro.models.gaps import GAP
from repro.models.lt import normalize_lt_weights
from repro.rrset import (
    IMMOptions,
    RRBlockGenerator,
    RRCimGenerator,
    RRICGenerator,
    RRLTGenerator,
    RRSimGenerator,
    RRSimPlusGenerator,
    general_imm,
    greedy_max_coverage,
    greedy_max_coverage_legacy,
    rr_estimate_objective,
)
from repro.rrset.base import RRSetGenerator
from repro.rrset.sweep import SweepConfig

SCHEMA_VERSION = 5

GAPS_SIM = GAP(q_a=0.3, q_a_given_b=0.75, q_b=0.5, q_b_given_a=0.5)
GAPS_CIM = GAP(q_a=0.3, q_a_given_b=0.75, q_b=0.5, q_b_given_a=1.0)
GAPS_BLOCK = GAP(q_a=0.6, q_a_given_b=0.1, q_b=0.7, q_b_given_a=0.7)

#: Regression floors for the batch-vs-oracle generation speedup per
#: regime.  Deliberately far below the typically measured numbers (CI
#: runners are noisy); a miss means the fast path regressed or silently
#: fell back to the oracle loop.
SPEEDUP_FLOORS = {
    "rr_ic": 4.0,
    "rr_sim": 2.0,
    "rr_sim_plus": 2.0,
    "rr_cim": 2.0,
    "rr_lt": 4.0,
    "rr_block": 2.0,
}

#: Floor for the end-to-end RR-vs-MC blocking speedup: typically >= 5x,
#: gated at 3x for runner noise.  A miss means the RR route regressed or
#: the query silently fell back to MC CELF.
BLOCKING_SPEEDUP_FLOOR = 3.0

#: Floor for the workers=2 parallel-vs-serial generation speedup
#: (ideal 2x; IPC + merge overhead budgeted).  Applied only when the
#: runner actually has >= 2 CPUs.
PARALLEL_SPEEDUP_FLOOR = 1.5
PARALLEL_WORKERS = 2

#: Floor for delta repair + requery vs fingerprint-invalidate +
#: regenerate at sparse churn (typically >= 10x on the default graph;
#: gated at 5x for runner noise).  A miss means repair stopped being
#: surgical — e.g. affectedness got broader or a hot path regressed.
DYNAMIC_SPEEDUP_FLOOR = 5.0
#: Sparse edit batch: a handful of reweights, far below any plausible
#: churn threshold, the regime delta repair exists for.
DYNAMIC_NUM_EDITS = 4
#: Relative band for repaired-vs-regenerated seed-quality parity.
DYNAMIC_PARITY_BAND = 0.15

#: Floor for sparse-vs-dense chunk-state generation at million-node
#: scale (typically >= 5x; gated at 2x for runner noise).  A miss means
#: the sparse backend stopped paying for itself where it matters most.
SCALE_SPEEDUP_FLOOR = 2.0
#: The scale row is informational below this node count — a smaller
#: graph cannot demonstrate the dense chunk collapse being measured.
SCALE_MIN_NODES = 1_000_000
#: RR-sets per timed scale run.
SCALE_COUNT = 512
#: Sparse chunks must sustain at least this many members within the
#: default state budget (dense must be at or below the degenerate 16).
SCALE_SPARSE_CHUNK_FLOOR = 256
SCALE_DENSE_CHUNK_CEIL = 16


class _OracleRRSim(RRSimGenerator):
    """Batched fast path disabled (the 'before' engine)."""

    generate_batch = RRSetGenerator.generate_batch


class _OracleRRCim(RRCimGenerator):
    generate_batch = RRSetGenerator.generate_batch


def best_of(fn, repeats: int) -> float:
    """Minimum wall time over ``repeats`` runs (noise-robust)."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def bench_generation(name, generator, per_root_count, batch_count, repeats):
    t_oracle = best_of(lambda: generator.generate_many(per_root_count, rng=1), repeats)
    t_batch = best_of(lambda: generator.generate_batch(batch_count, rng=1), repeats)
    per_root_rate = per_root_count / t_oracle
    batch_rate = batch_count / t_batch
    return {
        "per_root_sets_per_s": round(per_root_rate, 1),
        "batched_sets_per_s": round(batch_rate, 1),
        "speedup": round(batch_rate / per_root_rate, 2),
        "speedup_floor": SPEEDUP_FLOORS[name],
    }


def bench_imm_end_to_end(fast, oracle, k, opts, eval_samples):
    """Batched vs oracle-forced ``general_imm`` plus spread parity."""
    t_new = best_of(lambda: general_imm(fast, k, options=opts, rng=4), 2)
    t_old = best_of(lambda: general_imm(oracle, k, options=opts, rng=4), 2)
    result_new = general_imm(fast, k, options=opts, rng=4)
    result_old = general_imm(oracle, k, options=opts, rng=4)
    spread_new = rr_estimate_objective(
        fast, result_new.seeds, samples=eval_samples, rng=9
    )
    spread_old = rr_estimate_objective(
        fast, result_old.seeds, samples=eval_samples, rng=9
    )
    return {
        "epsilon": opts.epsilon,
        "k": k,
        "batched_s": round(t_new, 3),
        "oracle_s": round(t_old, 3),
        "speedup": round(t_old / t_new, 2),
        "batched_objective": round(spread_new.mean, 2),
        "oracle_objective": round(spread_old.mean, 2),
        "objective_stderr": round(spread_new.stderr, 3),
    }


def bench_blocking_end_to_end(graph, k, mc_runs, rr_cap, eval_runs):
    """RR-Block route vs MC CELF on one candidate pool, plus parity.

    Both routes run the same ``BlockingQuery`` shape against sessions on
    the same graph/GAPs; candidates are the top-degree nodes (blocking
    from the periphery is hopeless, and it keeps the MC baseline
    tractable).  Suppression of both seed sets is then MC-evaluated with
    a common rng for an apples-to-apples quality comparison.
    """
    seeds_a = tuple(high_degree_seeds(graph, 10))
    candidates = tuple(high_degree_seeds(graph, 50, exclude=seeds_a))
    rr_session = ComICSession(
        graph, GAPS_BLOCK,
        config=EngineConfig(engine="imm", max_rr_sets=rr_cap), rng=5,
    )
    start = time.perf_counter()
    rr_result = rr_session.run(
        BlockingQuery(seeds_a=seeds_a, k=k, method="rr", candidates=candidates)
    )
    rr_s = time.perf_counter() - start
    mc_session = ComICSession(graph, GAPS_BLOCK, rng=6)
    start = time.perf_counter()
    mc_result = mc_session.run(
        BlockingQuery(
            seeds_a=seeds_a, k=k, method="mc", runs=mc_runs,
            candidates=candidates,
        )
    )
    mc_s = time.perf_counter() - start
    sup_rr = estimate_suppression(
        graph, GAPS_BLOCK, seeds_a, rr_result.seeds, runs=eval_runs, rng=9
    )
    sup_mc = estimate_suppression(
        graph, GAPS_BLOCK, seeds_a, mc_result.seeds, runs=eval_runs, rng=9
    )
    return {
        "k": k,
        "mc_runs": mc_runs,
        "candidate_pool": len(candidates),
        "rr_engine": rr_result.engine,
        "rr_theta": rr_result.diagnostics["theta"],
        "rr_s": round(rr_s, 3),
        "mc_s": round(mc_s, 3),
        "speedup": round(mc_s / rr_s, 2),
        "speedup_floor": BLOCKING_SPEEDUP_FLOOR,
        "rr_estimate": round(rr_result.estimate, 2),
        "rr_suppression": round(sup_rr.mean, 2),
        "rr_suppression_stderr": round(sup_rr.stderr, 3),
        "mc_suppression": round(sup_mc.mean, 2),
        "mc_suppression_stderr": round(sup_mc.stderr, 3),
    }


def bench_parallel_generation(name, generator, count, repeats):
    """workers=2 sharded generation vs the same serial batched kernel.

    The engine is warmed up first (workers spawned, generator shipped)
    because it is persistent in real use — a session keeps it across
    every top-up — so interpreter start-up is not part of the steady
    state being measured.
    """
    cores = os.cpu_count() or 1
    serial_s = best_of(lambda: generator.generate_batch(count, rng=11), repeats)
    with ParallelEngine(
        generator, PARALLEL_WORKERS, min_batch_per_worker=64
    ) as engine:
        engine.warm_up()
        parallel_s = best_of(
            lambda: engine.generate_batch(count, rng=11), repeats
        )
    return {
        "regime": name,
        "workers": PARALLEL_WORKERS,
        "cores": cores,
        "sets": count,
        "serial_sets_per_s": round(count / serial_s, 1),
        "parallel_sets_per_s": round(count / parallel_s, 1),
        "speedup": round(serial_s / parallel_s, 2),
        "speedup_floor": PARALLEL_SPEEDUP_FLOOR,
        # A single-core runner cannot demonstrate parallel speedup; the
        # row is informational there and the gate skips it.
        "gated": cores >= PARALLEL_WORKERS,
    }


def bench_store_warm_start(graph, k, rr_cap):
    """Cold vs store-warm-started SelfInfMax query (two sessions).

    The cold session samples its pool and writes it through to a
    throwaway :class:`PoolStore`; the warm session — standing in for a
    second process — must answer the identical query with **zero** RR-set
    sampling and identical seeds, which the gate enforces.

    ``rr_cap`` is chosen to bind (below the query's uncapped theta), which
    makes the sample size deterministic: an *uncapped* adaptive IMM warm
    start re-derives theta from the warm pool's sharper estimate and may
    legitimately top up a ~1% remainder (see docs/api.md) — that would be
    adaptivity, not a store failure, so the gate pins the cap instead.
    """
    query = SelfInfMaxQuery(seeds_b=tuple(range(10)), k=k)
    config = EngineConfig(engine="imm", max_rr_sets=rr_cap)
    with tempfile.TemporaryDirectory(prefix="bench-pool-store-") as root:
        cold_session = ComICSession(
            graph, GAPS_SIM, config=config, store=root, rng=5
        )
        start = time.perf_counter()
        cold = cold_session.run(query)
        cold_s = time.perf_counter() - start
        warm_session = ComICSession(
            graph, GAPS_SIM, config=config, store=root, rng=6
        )
        start = time.perf_counter()
        warm = warm_session.run(query)
        warm_s = time.perf_counter() - start
    cold_sampled = cold.diagnostics["rr_sets_sampled"]
    return {
        "k": k,
        "engine": "imm",
        "rr_cap": rr_cap,
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup": round(cold_s / warm_s, 2),
        "cold_rr_sets_sampled": cold_sampled,
        "warm_rr_sets_sampled": warm.diagnostics["rr_sets_sampled"],
        "store_hits": warm_session.stats.store_hits,
        "seeds_match": warm.seeds == cold.seeds,
        # The zero-resample guarantee is only deterministic when the cap
        # binds; on reshaped instances (--nodes) where it does not, the
        # row stays informational (see the adaptive-theta caveat above).
        "gated": cold_sampled >= rr_cap,
    }


def bench_dynamic_update(graph, k, rr_cap, eval_samples):
    """Delta repair + requery vs fingerprint-invalidate + regenerate.

    A ``track_touches`` session answers a SelfInfMax query cold, then a
    sparse :class:`GraphDelta` (:data:`DYNAMIC_NUM_EDITS` stride-spaced
    reweights, each halving an edge probability) lands.  The repair
    route is ``apply_delta`` — drop exactly the touched pool members,
    resample their roots — plus the follow-up query; the baseline is
    what a delta-unaware deployment does: treat the mutated graph as a
    new fingerprint and resample the pool from scratch.  Seed quality of
    both routes is RR-evaluated on the *new* graph with a common rng.
    """
    opposite_seeds = tuple(range(10))
    query = SelfInfMaxQuery(seeds_b=opposite_seeds, k=k)
    config = EngineConfig(engine="imm", max_rr_sets=rr_cap, track_touches=True)
    src = graph.edge_sources
    dst = graph.edge_targets
    prob = graph.edge_probabilities
    stride = graph.num_edges // DYNAMIC_NUM_EDITS
    delta = GraphDelta(
        reweight=tuple(
            (int(src[e]), int(dst[e]), round(float(prob[e]) * 0.5, 6))
            for e in range(0, DYNAMIC_NUM_EDITS * stride, stride)
        )
    )

    repaired_session = ComICSession(graph, GAPS_SIM, config=config)
    cold = repaired_session.run(query, rng=4)
    start = time.perf_counter()
    delta_report = repaired_session.apply_delta(delta, rng=11)
    repaired = repaired_session.run(query, rng=4)
    repair_s = time.perf_counter() - start

    new_graph = graph.apply_delta(delta)
    start = time.perf_counter()
    regen_session = ComICSession(new_graph, GAPS_SIM, config=config)
    regenerated = regen_session.run(query, rng=4)
    regenerate_s = time.perf_counter() - start

    evaluator = RRSimPlusGenerator(new_graph, GAPS_SIM, opposite_seeds)
    spread_rep = rr_estimate_objective(
        evaluator, repaired.seeds, samples=eval_samples, rng=9
    )
    spread_reg = rr_estimate_objective(
        evaluator, regenerated.seeds, samples=eval_samples, rng=9
    )
    return {
        "k": k,
        "engine": "imm",
        "rr_cap": rr_cap,
        "num_edits": delta.num_edits,
        "churn": round(delta.churn(graph), 8),
        "repair_s": round(repair_s, 3),
        "regenerate_s": round(regenerate_s, 3),
        "speedup": round(regenerate_s / repair_s, 2),
        "speedup_floor": DYNAMIC_SPEEDUP_FLOOR,
        "pools_repaired": delta_report.pools_repaired,
        "pools_regenerated": delta_report.pools_regenerated,
        "members_resampled": delta_report.members_resampled,
        "cold_rr_sets_sampled": cold.diagnostics["rr_sets_sampled"],
        "warm_rr_sets_sampled": repaired.diagnostics["rr_sets_sampled"],
        "regenerate_rr_sets_sampled": regenerated.diagnostics[
            "rr_sets_sampled"
        ],
        "repaired_objective": round(spread_rep.mean, 2),
        "regenerated_objective": round(spread_reg.mean, 2),
        "objective_stderr": round(spread_rep.stderr, 3),
        "parity_band": DYNAMIC_PARITY_BAND,
    }


def bench_scale_generation(path, count):
    """Sparse vs dense chunk state on a SNAP edge-list graph (RR-IC).

    Two legs.  **Timing**: each backend runs with its natural chunk
    schedule — dense collapses to ``budget // n`` members, sparse
    sustains the kernel's full ``max_members`` — and the wall-clock
    ratio is the speedup being gated.  **Equality**: both backends rerun
    under one pinned chunk schedule (``max_chunk_members`` = the dense
    chunk), because the schedule fixes the order coins are drawn in;
    with it equal, the backends must produce bit-identical pools, which
    is the strongest form of the member-multiset check.
    """
    from repro.datasets import load_snap_graph

    graph = load_snap_graph(path)
    n = graph.num_nodes
    generator = RRICGenerator(graph)
    dense_cfg = SweepConfig(state_backend="dense")
    sparse_cfg = SweepConfig(state_backend="sparse")
    dense_chunk = dense_cfg.chunk_size(
        n, "dense", state_bytes_per_node=1, max_members=4096, warn=False
    )
    sparse_chunk = sparse_cfg.chunk_size(
        n, "sparse", state_bytes_per_node=1, max_members=4096
    )
    timings = {}
    pools = {}
    for backend, cfg in (("dense", dense_cfg), ("sparse", sparse_cfg)):
        generator.sweep = cfg
        timings[backend] = best_of(
            lambda: generator.generate_batch(count, rng=21), 2
        )
    for backend in ("dense", "sparse"):
        generator.sweep = SweepConfig(
            state_backend=backend, max_chunk_members=dense_chunk
        )
        pools[backend] = generator.generate_batch(count, rng=21)
    members_equal = bool(
        np.array_equal(pools["dense"].nodes, pools["sparse"].nodes)
        and np.array_equal(
            np.asarray(pools["dense"].indptr),
            np.asarray(pools["sparse"].indptr),
        )
    )
    return {
        "graph_path": str(path),
        "nodes": n,
        "edges": graph.num_edges,
        "sets": count,
        "dense_chunk": dense_chunk,
        "sparse_chunk": sparse_chunk,
        "dense_s": round(timings["dense"], 3),
        "sparse_s": round(timings["sparse"], 3),
        "dense_sets_per_s": round(count / timings["dense"], 1),
        "sparse_sets_per_s": round(count / timings["sparse"], 1),
        "speedup": round(timings["dense"] / timings["sparse"], 2),
        "speedup_floor": SCALE_SPEEDUP_FLOOR,
        "members_equal": members_equal,
        # Below a million nodes the dense collapse being measured does
        # not occur; the row is informational there and the gate skips it.
        "gated": n >= SCALE_MIN_NODES,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=10_000)
    parser.add_argument("--average-degree", type=float, default=8.0)
    parser.add_argument("--probability", type=float, default=0.2)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--output", default="BENCH_rrset.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller sample counts (CI mode)",
    )
    parser.add_argument(
        "--scale-graph", metavar="PATH", default=None,
        help=(
            "SNAP-style edge list for the scale.1m_generation row "
            "(gated when the graph has >= 1M nodes; omitted otherwise)"
        ),
    )
    parser.add_argument(
        "--require-multicore", action="store_true",
        help=(
            "fail when the parallel.generation floor cannot engage "
            "(fewer cores than workers) instead of recording an "
            "informational row — CI uses this so the gate can never go "
            "silently dormant on a downsized runner"
        ),
    )
    args = parser.parse_args(argv)

    per_root_count = 200 if args.quick else 500
    batch_count = 4000 if args.quick else 10_000
    repeats = 3 if args.quick else 5
    imm_cap = 10_000 if args.quick else 20_000

    graph = power_law_digraph(
        args.nodes, average_degree=args.average_degree,
        probability=args.probability, rng=2,
    )
    opposite_seeds = list(range(10))
    report = {
        "schema_version": SCHEMA_VERSION,
        "graph": {
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "average_degree": args.average_degree,
            "probability": args.probability,
        },
        "config": {
            "quick": args.quick,
            "per_root_count": per_root_count,
            "batch_count": batch_count,
            "repeats": repeats,
            "gaps_sim": list(GAPS_SIM.as_tuple()),
            "gaps_cim": list(GAPS_CIM.as_tuple()),
            "gaps_block": list(GAPS_BLOCK.as_tuple()),
        },
    }

    generators = {
        "rr_ic": RRICGenerator(graph),
        "rr_sim": RRSimGenerator(graph, GAPS_SIM, opposite_seeds),
        "rr_sim_plus": RRSimPlusGenerator(graph, GAPS_SIM, opposite_seeds),
        "rr_cim": RRCimGenerator(graph, GAPS_CIM, opposite_seeds),
        "rr_lt": RRLTGenerator(normalize_lt_weights(graph)),
        "rr_block": RRBlockGenerator(graph, GAPS_BLOCK, opposite_seeds),
    }
    report["generation"] = {}
    for name, generator in generators.items():
        # RR-LT sets are cheap chains: give its rates more samples.
        scale = 4 if name == "rr_lt" else 1
        report["generation"][name] = bench_generation(
            name, generator, per_root_count * scale, batch_count * scale, repeats
        )
        print(f"generation[{name}]:", report["generation"][name])

    pool = generators["rr_ic"].generate_batch(batch_count, rng=7)
    rr_list = pool.to_list()
    t_pooled = best_of(lambda: greedy_max_coverage(pool, graph.num_nodes, args.k), repeats)
    t_legacy = best_of(
        lambda: greedy_max_coverage_legacy(rr_list, graph.num_nodes, args.k), repeats
    )
    assert greedy_max_coverage(pool, graph.num_nodes, args.k) == \
        greedy_max_coverage_legacy(rr_list, graph.num_nodes, args.k)
    report["greedy_max_coverage"] = {
        "sets": batch_count,
        "pooled_s": round(t_pooled, 4),
        "legacy_s": round(t_legacy, 4),
        "speedup": round(t_legacy / t_pooled, 2),
    }
    print("greedy_max_coverage:", report["greedy_max_coverage"])

    opts = IMMOptions(epsilon=0.5, max_rr_sets=imm_cap)
    eval_samples = 4000 if args.quick else 10_000
    report["end_to_end"] = {
        "selfinfmax_imm": bench_imm_end_to_end(
            generators["rr_sim"],
            _OracleRRSim(graph, GAPS_SIM, opposite_seeds),
            args.k, opts, eval_samples,
        ),
    }
    print("end_to_end[selfinfmax_imm]:", report["end_to_end"]["selfinfmax_imm"])
    report["end_to_end"]["compinfmax_imm"] = bench_imm_end_to_end(
        generators["rr_cim"],
        _OracleRRCim(graph, GAPS_CIM, opposite_seeds),
        args.k, opts, eval_samples,
    )
    print("end_to_end[compinfmax_imm]:", report["end_to_end"]["compinfmax_imm"])
    report["end_to_end"]["blocking"] = bench_blocking_end_to_end(
        graph,
        k=5,
        mc_runs=10 if args.quick else 20,
        rr_cap=imm_cap,
        eval_runs=150 if args.quick else 400,
    )
    print("end_to_end[blocking]:", report["end_to_end"]["blocking"])

    # RR-SIM+ is the slowest batched kernel (most compute per set), so it
    # amortises worker IPC best and is the honest parallel test case.
    report["parallel"] = {
        "generation": bench_parallel_generation(
            "rr_sim_plus",
            generators["rr_sim_plus"],
            batch_count * 2,
            repeats,
        )
    }
    print("parallel[generation]:", report["parallel"]["generation"])

    # Cap chosen below the query's uncapped theta (~8.2k on the default
    # 10k-node graph; theta grows with n) so the sample count is pinned
    # and the warm run needs exactly 0 sets.
    report["store"] = {
        "warm_start": bench_store_warm_start(
            graph, args.k, rr_cap=max(500, int(args.nodes * 0.6))
        )
    }
    print("store[warm_start]:", report["store"]["warm_start"])

    report["dynamic"] = {
        "update_then_query": bench_dynamic_update(
            graph, args.k, rr_cap=imm_cap, eval_samples=eval_samples
        )
    }
    print("dynamic[update_then_query]:", report["dynamic"]["update_then_query"])

    if args.scale_graph is not None:
        report["scale"] = {
            "1m_generation": bench_scale_generation(
                args.scale_graph, SCALE_COUNT
            )
        }
        print("scale[1m_generation]:", report["scale"]["1m_generation"])

    # Regression gate: a sub-floor speedup means the fast path regressed
    # (or silently fell back to the oracle loop / MC CELF) — fail loudly.
    gated = dict(report["generation"])
    gated["end_to_end.blocking"] = report["end_to_end"]["blocking"]
    parallel_row = report["parallel"]["generation"]
    if parallel_row["gated"]:
        gated["parallel.generation"] = parallel_row
    gated["dynamic.update_then_query"] = report["dynamic"]["update_then_query"]
    scale_row = report.get("scale", {}).get("1m_generation")
    if scale_row is not None and scale_row["gated"]:
        gated["scale.1m_generation"] = scale_row
    failures = [
        f"{name}: speedup {entry['speedup']}x < floor {entry['speedup_floor']}x"
        for name, entry in gated.items()
        if entry["speedup"] < entry["speedup_floor"]
    ]
    if args.require_multicore and not parallel_row["gated"]:
        failures.append(
            f"parallel.generation: runner has {parallel_row['cores']} "
            f"core(s), < {PARALLEL_WORKERS} workers — the "
            f"{PARALLEL_SPEEDUP_FLOOR}x floor cannot engage "
            "(--require-multicore)"
        )
    warm = report["store"]["warm_start"]
    if warm["gated"]:
        if warm["warm_rr_sets_sampled"] != 0:
            failures.append(
                "store.warm_start: warm session sampled "
                f"{warm['warm_rr_sets_sampled']} RR-sets (expected 0 — "
                "manifest hit failed)"
            )
        if not warm["seeds_match"]:
            failures.append(
                "store.warm_start: warm-started seeds differ from cold seeds"
            )
    dynamic = report["dynamic"]["update_then_query"]
    if dynamic["pools_repaired"] < 1:
        failures.append(
            "dynamic.update_then_query: no pool was repaired "
            f"({dynamic['pools_regenerated']} regenerated) — apply_delta "
            "silently fell back to full regeneration"
        )
    parity = abs(
        dynamic["repaired_objective"] - dynamic["regenerated_objective"]
    ) / max(dynamic["regenerated_objective"], 1e-9)
    if parity > DYNAMIC_PARITY_BAND:
        failures.append(
            "dynamic.update_then_query: repaired-pool seed quality "
            f"{dynamic['repaired_objective']} vs regenerated "
            f"{dynamic['regenerated_objective']} (relative gap "
            f"{parity:.3f} > {DYNAMIC_PARITY_BAND})"
        )
    if scale_row is not None and scale_row["gated"]:
        if not scale_row["members_equal"]:
            failures.append(
                "scale.1m_generation: sparse and dense pools differ under "
                "a common chunk schedule (backend is not bit-equivalent)"
            )
        if scale_row["sparse_chunk"] < SCALE_SPARSE_CHUNK_FLOOR:
            failures.append(
                f"scale.1m_generation: sparse chunk {scale_row['sparse_chunk']}"
                f" < {SCALE_SPARSE_CHUNK_FLOOR} members within the default "
                "state budget"
            )
        if scale_row["dense_chunk"] > SCALE_DENSE_CHUNK_CEIL:
            failures.append(
                f"scale.1m_generation: dense chunk {scale_row['dense_chunk']} "
                f"> {SCALE_DENSE_CHUNK_CEIL} — the graph is not large enough "
                "to demonstrate the collapse being gated"
            )
    report["gate"] = {"passed": not failures, "failures": failures}

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {args.output}")
    if failures:
        for failure in failures:
            print(f"SPEEDUP REGRESSION: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
