"""PipelineDebugDB: schema, recorders/readers, crash evidence."""

import sqlite3
import threading

from repro.pipeline import DEBUG_DB_FILE, SCHEMA_VERSION, PipelineDebugDB


def begin(db, **overrides):
    kwargs = dict(
        config_json="{}",
        config_digest="cfg0",
        graph_fingerprint="g0",
        log_fingerprint="l0",
        episodes_fingerprint=None,
        seed=7,
    )
    kwargs.update(overrides)
    return db.begin_run(**kwargs)


class TestSchema:
    def test_schema_version_pinned(self, tmp_path):
        db = PipelineDebugDB(tmp_path / "debug.sqlite")
        assert db.schema_version() == SCHEMA_VERSION
        db.close()

    def test_wal_journal_mode(self, tmp_path):
        db = PipelineDebugDB(tmp_path / "debug.sqlite")
        db.schema_version()  # force the connection open
        conn = sqlite3.connect(tmp_path / "debug.sqlite")
        mode = conn.execute("PRAGMA journal_mode").fetchone()[0]
        conn.close()
        db.close()
        assert mode.lower() == "wal"


class TestRunLifecycle:
    def test_begin_finish_round_trip(self, tmp_path):
        db = PipelineDebugDB(tmp_path / "d.sqlite")
        run_id = begin(db)
        db.finish_run(run_id, status="ok", stages_run=3, stages_skipped=0)
        row = db.run(run_id)
        assert row["status"] == "ok"
        assert row["stages_run"] == 3
        assert row["finished_utc"].endswith("Z")
        db.close()

    def test_crashed_run_leaves_running_row(self, tmp_path):
        db = PipelineDebugDB(tmp_path / "d.sqlite")
        run_id = begin(db)
        # no finish_run: the evidence row must survive with status=running
        assert db.run(run_id)["status"] == "running"
        assert db.run(run_id)["finished_utc"] is None
        db.close()

    def test_runs_newest_first(self, tmp_path):
        db = PipelineDebugDB(tmp_path / "d.sqlite")
        first, second = begin(db), begin(db)
        ids = [row["run_id"] for row in db.runs()]
        assert ids == [second, first]
        assert db.run(99999) is None
        db.close()


class TestRecorders:
    def test_stage_and_trace_round_trip(self, tmp_path):
        db = PipelineDebugDB(tmp_path / "d.sqlite")
        run_id = begin(db)
        db.record_stage(
            run_id, "fit_edges", status="ran", input_digest="in0",
            output_digest="out0", wall_s=0.5,
            started_utc="2026-08-08T00:00:00Z",
            detail={"iterations": 3},
        )
        db.record_em_trace(run_id, [-10.0, -8.5, -8.4])
        stages = db.stages(run_id)
        assert len(stages) == 1 and stages[0]["status"] == "ran"
        assert '"iterations": 3' in stages[0]["detail"]
        assert db.em_trace(run_id) == [(0, -10.0), (1, -8.5), (2, -8.4)]
        db.close()

    def test_gap_and_query_round_trip(self, tmp_path):
        db = PipelineDebugDB(tmp_path / "d.sqlite")
        run_id = begin(db)
        db.record_gap_fit(
            run_id, item_a="a", item_b="b", parameter="q_a",
            value=0.31, halfwidth=0.02, ci_lo=0.29, ci_hi=0.33,
            samples=500, true_value=0.3, inside_ci=True,
        )
        db.record_query(
            run_id, 0, objective="selfinfmax", query_json="{}",
            seeds=[4, 2], estimate=12.5, method="rr-greedy",
            engine="imm", rr_sets_sampled=1000, degraded=False,
            wall_s=0.1,
        )
        [gap] = db.gap_fits(run_id)
        assert gap["parameter"] == "q_a" and gap["inside_ci"] == 1
        [query] = db.query_results(run_id)
        assert query["seeds_json"] == "[4, 2]" and query["degraded"] == 0
        db.close()

    def test_edge_fits_row_order_is_edge_id(self, tmp_path):
        db = PipelineDebugDB(tmp_path / "d.sqlite")
        run_id = begin(db)
        db.record_edge_fits(
            run_id, sources=[0, 1], targets=[1, 2],
            probabilities=[0.5, 0.25], observations=[10, 3],
        )
        conn = sqlite3.connect(tmp_path / "d.sqlite")
        rows = conn.execute(
            "SELECT edge_id, source, target, probability, observations"
            " FROM edge_fits ORDER BY edge_id"
        ).fetchall()
        conn.close()
        assert rows == [(0, 0, 1, 0.5, 10), (1, 1, 2, 0.25, 3)]
        db.close()


class TestThreading:
    def test_connections_are_thread_local(self, tmp_path):
        db = PipelineDebugDB(tmp_path / "d.sqlite")
        run_id = begin(db)
        errors = []

        def reader():
            try:
                assert db.run(run_id)["seed"] == 7
            except Exception as exc:  # pragma: no cover - failure capture
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        db.close()


def test_db_file_name_constant():
    assert DEBUG_DB_FILE == "pipeline_debug.sqlite"
