"""`PoolKey`: the canonical identity of one cached RR-set pool.

A pool is reusable exactly when it was sampled by the same RR regime,
under the same GAP quadruple, against the same opposite-seed context.
:class:`~repro.api.session.ComICSession` always keyed its in-memory pool
cache by that triple, but the key lived only as an ad-hoc tuple inside
the session — unusable by (and therefore able to silently disagree with)
any second consumer.  With the on-disk :class:`~repro.store.PoolStore`
there *are* two consumers, so the key is now one public frozen dataclass
both share: the session's cache dict hashes it, the store embeds its
:meth:`PoolKey.to_dict` form in every manifest and validates hits against
it, and :meth:`PoolKey.digest` names the entry directory.

Normalisation happens once, in :meth:`PoolKey.make` — opposite seeds are
deduplicated, sorted and widened to ``int``; GAPs are flattened to their
float quadruple — so two keys compare equal iff the pools they name are
interchangeable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Union

from repro.errors import StoreError
from repro.models.gaps import GAP

GapLike = Union[GAP, Iterable[float]]


@dataclass(frozen=True)
class PoolKey:
    """Identity of one RR-set pool: ``(regime, GAPs, opposite seeds)``.

    Frozen and hashable — usable directly as a dict key.  Build through
    :meth:`make` (which normalises) rather than the raw constructor.
    """

    #: RR-set regime name as registered with the API registry
    #: (``"rr-sim"``, ``"rr-cim"``, ``"rr-block"``, ...).
    regime: str
    #: the GAP quadruple ``(q_a, q_a_given_b, q_b, q_b_given_a)``.
    gaps: tuple[float, float, float, float]
    #: sorted, deduplicated opposite-item seed nodes.
    opposite_seeds: tuple[int, ...]

    @classmethod
    def make(
        cls, regime: str, gaps: GapLike, opposite_seeds: Iterable[int]
    ) -> "PoolKey":
        """Build a normalised key (the only constructor callers need)."""
        if isinstance(gaps, GAP):
            quad = gaps.as_tuple()
        else:
            quad = tuple(float(q) for q in gaps)
            if len(quad) != 4:
                raise StoreError(
                    f"gaps must be a GAP or a float quadruple, got {quad!r}"
                )
        seeds = tuple(sorted({int(s) for s in opposite_seeds}))
        return cls(regime=str(regime), gaps=quad, opposite_seeds=seeds)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON-types view; inverse of :meth:`from_dict`."""
        return {
            "regime": self.regime,
            "gaps": list(self.gaps),
            "opposite_seeds": list(self.opposite_seeds),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PoolKey":
        """Rebuild (and re-normalise) from :meth:`to_dict` output."""
        try:
            return cls.make(
                data["regime"], data["gaps"], data["opposite_seeds"]
            )
        except KeyError as exc:
            raise StoreError(f"pool key payload is missing {exc}") from exc

    def canonical_json(self) -> str:
        """Deterministic JSON encoding (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """Stable 16-hex-digit name for this key (store directory name).

        Derived from :meth:`canonical_json` via SHA-256, so it is
        process- and platform-independent.  The graph fingerprint is
        deliberately *not* mixed in: an entry is looked up by key and
        then validated against the manifest's recorded fingerprint, which
        is what lets the store distinguish "never saved" (miss) from
        "saved for a different graph" (invalidation).
        """
        raw = hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()
        return raw[:16]
