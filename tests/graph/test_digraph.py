"""Unit tests for the CSR directed graph."""

import numpy as np
import pytest

from repro.errors import EdgeProbabilityError, GraphError
from repro.graph import DiGraph, induced_subgraph


def triangle() -> DiGraph:
    return DiGraph.from_edges(3, [(0, 1, 0.5), (1, 2, 0.25), (2, 0, 1.0)])


class TestConstruction:
    def test_from_edges_basic(self):
        g = triangle()
        assert g.num_nodes == 3
        assert g.num_edges == 3

    def test_from_edges_two_tuples_use_default_probability(self):
        g = DiGraph.from_edges(2, [(0, 1)], default_probability=0.7)
        assert g.edge_probability(0, 1) == pytest.approx(0.7)

    def test_empty_graph(self):
        g = DiGraph.from_edges(0, [])
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_isolated_nodes(self):
        g = DiGraph.from_edges(5, [(0, 1, 1.0)])
        assert g.num_nodes == 5
        assert g.out_degree(4) == 0
        assert g.in_degree(4) == 0

    def test_rejects_out_of_range_nodes(self):
        with pytest.raises(GraphError, match="endpoints"):
            DiGraph.from_edges(2, [(0, 2, 1.0)])

    def test_rejects_negative_nodes(self):
        with pytest.raises(GraphError, match="endpoints"):
            DiGraph.from_edges(2, [(-1, 0, 1.0)])

    def test_rejects_self_loops_by_default(self):
        with pytest.raises(GraphError, match="self-loop"):
            DiGraph.from_edges(2, [(1, 1, 1.0)])

    def test_allows_self_loops_when_asked(self):
        g = DiGraph.from_edges(2, [(1, 1, 1.0)], allow_self_loops=True)
        assert g.has_edge(1, 1)

    def test_rejects_parallel_edges(self):
        with pytest.raises(GraphError, match="parallel"):
            DiGraph.from_edges(3, [(0, 1, 0.5), (0, 1, 0.9)])

    def test_rejects_bad_probability(self):
        with pytest.raises(EdgeProbabilityError):
            DiGraph.from_edges(2, [(0, 1, 1.5)])
        with pytest.raises(EdgeProbabilityError):
            DiGraph.from_edges(2, [(0, 1, -0.1)])

    def test_rejects_negative_node_count(self):
        with pytest.raises(GraphError):
            DiGraph.from_edges(-1, [])

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(GraphError, match="identical shapes"):
            DiGraph.from_arrays(
                3,
                np.array([0, 1]),
                np.array([1]),
                np.array([0.5, 0.5]),
            )


class TestAccessors:
    def test_degrees(self):
        g = triangle()
        assert g.out_degree(0) == 1
        assert g.in_degree(0) == 1
        assert list(g.out_degrees) == [1, 1, 1]
        assert list(g.in_degrees) == [1, 1, 1]

    def test_neighbors(self):
        g = DiGraph.from_edges(4, [(0, 1), (0, 2), (3, 0)])
        assert sorted(g.out_neighbors(0).tolist()) == [1, 2]
        assert g.in_neighbors(0).tolist() == [3]
        assert g.out_neighbors(1).tolist() == []

    def test_node_range_check(self):
        g = triangle()
        with pytest.raises(GraphError, match="out of range"):
            g.out_neighbors(3)
        with pytest.raises(GraphError, match="out of range"):
            g.in_degree(-1)

    def test_has_edge_and_probability(self):
        g = triangle()
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert g.edge_probability(1, 2) == pytest.approx(0.25)
        with pytest.raises(GraphError, match="does not exist"):
            g.edge_probability(1, 0)

    def test_edge_ids_consistent_between_views(self):
        g = DiGraph.from_edges(4, [(0, 1, 0.1), (2, 1, 0.2), (3, 1, 0.3)])
        _, in_probs, in_eids = g.in_edges(1)
        for prob, eid in zip(in_probs, in_eids):
            assert g.edge_probabilities[eid] == pytest.approx(prob)

    def test_out_edges_returns_probs_and_ids(self):
        g = triangle()
        targets, probs, eids = g.out_edges(0)
        assert targets.tolist() == [1]
        assert probs.tolist() == [0.5]
        assert g.edge_sources[eids[0]] == 0

    def test_iter_edges_round_trip(self):
        g = triangle()
        edges = list(g.iter_edges())
        g2 = DiGraph.from_edges(3, edges)
        assert g == g2

    def test_nodes_array(self):
        assert triangle().nodes.tolist() == [0, 1, 2]

    def test_csr_views_shapes(self):
        g = triangle()
        indptr, dst, prob, eid = g.csr_out()
        assert indptr.shape == (4,)
        assert dst.shape == prob.shape == eid.shape == (3,)
        indptr_in, src, prob_in, eid_in = g.csr_in()
        assert indptr_in.shape == (4,)
        assert src.shape == (3,)


class TestDerivedGraphs:
    def test_with_probabilities(self):
        g = triangle()
        g2 = g.with_probabilities(np.array([0.9, 0.9, 0.9]))
        assert g2.edge_probability(0, 1) == pytest.approx(0.9)
        # Original untouched.
        assert g.edge_probability(0, 1) == pytest.approx(0.5)

    def test_with_probabilities_validates(self):
        g = triangle()
        with pytest.raises(GraphError):
            g.with_probabilities(np.array([0.9, 0.9]))
        with pytest.raises(EdgeProbabilityError):
            g.with_probabilities(np.array([0.9, 0.9, 1.1]))

    def test_reverse(self):
        g = triangle()
        r = g.reverse()
        assert r.has_edge(1, 0)
        assert r.edge_probability(1, 0) == pytest.approx(0.5)
        assert r.reverse() == g

    def test_equality(self):
        assert triangle() == triangle()
        assert triangle() != DiGraph.from_edges(3, [(0, 1, 0.5)])
        assert triangle() != "not a graph"


class TestInducedSubgraph:
    def test_basic(self):
        g = DiGraph.from_edges(4, [(0, 1, 0.5), (1, 2, 0.6), (2, 3, 0.7)])
        sub, old_ids = induced_subgraph(g, [1, 2])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1
        assert old_ids.tolist() == [1, 2]
        assert sub.edge_probability(0, 1) == pytest.approx(0.6)

    def test_relabels_in_given_order(self):
        g = DiGraph.from_edges(3, [(0, 1, 0.5)])
        sub, old_ids = induced_subgraph(g, [1, 0])
        assert old_ids.tolist() == [1, 0]
        assert sub.has_edge(1, 0)

    def test_rejects_duplicates(self):
        g = triangle()
        with pytest.raises(GraphError, match="distinct"):
            induced_subgraph(g, [0, 0])

    def test_rejects_out_of_range(self):
        g = triangle()
        with pytest.raises(GraphError, match="out of range"):
            induced_subgraph(g, [0, 5])


class TestFingerprint:
    def build(self, probs=(0.5, 0.25)):
        return DiGraph.from_edges(
            4, [(0, 1, probs[0]), (1, 2, probs[1])]
        )

    def test_stable_and_cached(self):
        graph = self.build()
        first = graph.fingerprint()
        assert first == graph.fingerprint()
        assert len(first) == 64
        int(first, 16)  # hex digest

    def test_equal_graphs_equal_fingerprints(self):
        assert self.build().fingerprint() == self.build().fingerprint()

    def test_edge_order_does_not_matter(self):
        a = DiGraph.from_edges(3, [(0, 1, 0.5), (1, 2, 0.25)])
        b = DiGraph.from_edges(3, [(1, 2, 0.25), (0, 1, 0.5)])
        assert a.fingerprint() == b.fingerprint()

    def test_sensitive_to_weights_structure_and_size(self):
        base = self.build().fingerprint()
        assert base != self.build(probs=(0.5, 0.26)).fingerprint()
        assert base != DiGraph.from_edges(
            4, [(0, 1, 0.5), (2, 1, 0.25)]
        ).fingerprint()
        assert base != DiGraph.from_edges(
            5, [(0, 1, 0.5), (1, 2, 0.25)]
        ).fingerprint()

    def test_derived_graphs_get_fresh_fingerprints(self):
        graph = self.build()
        reweighted = graph.with_probabilities(np.array([0.9, 0.1]))
        assert reweighted.fingerprint() != graph.fingerprint()
        assert graph.reverse().fingerprint() != graph.fingerprint()
