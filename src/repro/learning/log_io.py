"""Persistence for action logs and cascade episodes.

* Action logs serialise to tab-separated text — ``action  time  user
  item`` per line with ``#`` comments — the same shape as the rating
  dumps the paper's §7.2 consumes.  Identifiers are written verbatim and
  read back as ``int`` when they parse as one, else ``str`` (documented
  lossiness for exotic Hashable keys).
* Episode corpora (the EM learner's input) serialise to ``.npz`` as one
  stacked activation-time matrix.
"""

from __future__ import annotations

import os
from typing import Hashable, Union

import numpy as np

from repro.errors import ActionLogError, EstimationError, LogFormatError
from repro.learning.action_log import ActionEvent, ActionLog, _VALID_ACTIONS

PathLike = Union[str, os.PathLike]


def _parse_identifier(token: str) -> Hashable:
    try:
        return int(token)
    except ValueError:
        return token


def save_action_log(log: ActionLog, path: PathLike, *, comment: str = "") -> None:
    """Write ``log``'s canonical events to ``path`` (TSV)."""
    with open(path, "w", encoding="utf-8") as handle:
        if comment:
            for line in comment.splitlines():
                handle.write(f"# {line}\n")
        for event in log.canonical_events():
            user = str(event.user)
            item = str(event.item)
            for token in (user, item):
                if "\t" in token or "\n" in token or "\r" in token:
                    raise ActionLogError(
                        f"user/item identifier {token!r} contains a tab or "
                        "newline; it would corrupt the TSV format"
                    )
            handle.write(f"{event.action}\t{event.time:.10g}\t{user}\t{item}\n")


def load_action_log(path: PathLike) -> ActionLog:
    """Read an action log written by :func:`save_action_log`.

    Malformed lines raise :class:`~repro.errors.LogFormatError` carrying
    ``path`` and ``line_no``, so a bad dump names its offending line.
    """
    log = ActionLog()
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.rstrip("\n")
            if not line.strip() or line.lstrip().startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 4:
                raise LogFormatError(
                    path, line_no,
                    f"expected 4 tab-separated fields, got {len(parts)}",
                )
            action, time_token, user, item = parts
            if action not in _VALID_ACTIONS:
                raise LogFormatError(
                    path, line_no, f"unknown action {action!r}"
                )
            try:
                time = float(time_token)
            except ValueError as exc:
                raise LogFormatError(
                    path, line_no, f"bad timestamp {time_token!r}"
                ) from exc
            try:
                log.add(ActionEvent(
                    time=time, user=_parse_identifier(user),
                    item=_parse_identifier(item), action=action,
                ))
            except ActionLogError as exc:
                # e.g. a non-finite timestamp the float() parse accepted.
                raise LogFormatError(path, line_no, str(exc)) from exc
    return log


def save_episodes(episodes: list[np.ndarray], path: PathLike) -> None:
    """Write an EM training corpus (activation-time arrays) as ``.npz``."""
    if not episodes:
        np.savez_compressed(path, times=np.empty((0, 0), dtype=np.int64))
        return
    n = episodes[0].shape
    for index, episode in enumerate(episodes):
        if episode.shape != n:
            raise EstimationError(
                f"episode {index} has shape {episode.shape}; expected {n}"
            )
    np.savez_compressed(path, times=np.stack(episodes).astype(np.int64))


def load_episodes(path: PathLike) -> list[np.ndarray]:
    """Read an episode corpus written by :func:`save_episodes`."""
    with np.load(path) as archive:
        if "times" not in archive:
            raise EstimationError(f"{path} is not an episode archive")
        times = archive["times"]
    return [times[i].copy() for i in range(times.shape[0])]
