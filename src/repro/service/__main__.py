"""CLI entry point: ``python -m repro.service``.

Starts a :class:`~repro.service.server.ComICServer` over one graph —
either an edge-list file or a generated power-law demo graph — with a
cataloged persistent pool store when ``--store`` is given::

    python -m repro.service --demo-nodes 500 --port 8080 \\
        --gaps 1.0,1.0,1.0,1.0 --store /tmp/comic-pools --engine imm

See ``docs/service.md`` for the endpoint reference.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.api import EngineConfig
from repro.graph.generators import power_law_digraph
from repro.graph.io import load_edge_list
from repro.graph.weights import weighted_cascade_probabilities
from repro.models.gaps import GAP
from repro.service.catalog import CatalogedPoolStore
from repro.service.server import ComICServer


def _parse_gaps(text: str) -> GAP:
    parts = [float(piece) for piece in text.split(",")]
    if len(parts) != 4:
        raise argparse.ArgumentTypeError(
            "gaps must be 'q_a,q_a_given_b,q_b,q_b_given_a'"
        )
    return GAP(*parts)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve Com-IC influence queries over HTTP.",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--edge-list", metavar="PATH",
        help="edge-list file to serve (repro.graph.io format)",
    )
    source.add_argument(
        "--demo-nodes", type=int, default=300, metavar="N",
        help="serve a generated power-law demo graph of N nodes (default 300)",
    )
    parser.add_argument(
        "--name", default="default", help="graph name in /query/<name>"
    )
    parser.add_argument(
        "--gaps", type=_parse_gaps, default=GAP(1.0, 1.0, 1.0, 1.0),
        metavar="QA,QAB,QB,QBA",
        help="GAP quadruple (default 1,1,1,1 = classic IC)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--store", metavar="DIR",
        help="attach a cataloged persistent pool store at DIR",
    )
    parser.add_argument(
        "--max-store-bytes", type=int, default=None, metavar="BYTES",
        help="store-wide disk quota enforced by catalog GC (default none)",
    )
    parser.add_argument(
        "--engine", choices=("tim", "imm"), default="imm",
        help="seed-selection engine (default imm)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="RR-set sampling worker processes per session (default 1)",
    )
    parser.add_argument(
        "--rng", type=int, default=None, help="session RNG seed"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.edge_list:
        graph = load_edge_list(args.edge_list)
    else:
        graph = weighted_cascade_probabilities(
            power_law_digraph(args.demo_nodes, rng=args.rng or 0)
        )
    store = None
    if args.store:
        store = CatalogedPoolStore(
            args.store, max_store_bytes=args.max_store_bytes
        )
    config = EngineConfig(engine=args.engine, workers=args.workers)
    server = ComICServer()
    server.register_graph(
        args.name, graph, args.gaps,
        config=config, store=store, rng=args.rng,
    )
    host, port = server.start(args.host, args.port)
    print(
        f"serving graph {args.name!r} ({graph.num_nodes} nodes, "
        f"{graph.num_edges} edges) on http://{host}:{port}",
        flush=True,
    )
    try:
        while True:
            time.sleep(3600.0)
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
