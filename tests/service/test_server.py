"""ComICServer: HTTP round-trips, warm repeats, single-flight, errors."""

import threading

import pytest

from repro.api import (
    BlockingQuery,
    CompInfMaxQuery,
    EngineConfig,
    SelfInfMaxQuery,
)
from repro.errors import QueryError
from repro.graph import power_law_digraph, weighted_cascade_probabilities
from repro.models import GAP
from repro.service import (
    CatalogedPoolStore,
    ComICServer,
    ServiceClient,
    ServiceClientError,
)

GAPS = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
CONFIG = EngineConfig(engine="imm", max_rr_sets=1500)
QUERY = SelfInfMaxQuery(seeds_b=(0, 1), k=5)


@pytest.fixture(scope="module")
def graph():
    return weighted_cascade_probabilities(power_law_digraph(200, rng=9))


@pytest.fixture
def server(graph, tmp_path):
    srv = ComICServer()
    srv.register_graph(
        "demo", graph, GAPS,
        config=CONFIG, store=CatalogedPoolStore(tmp_path / "pools"),
    )
    yield srv
    srv.close()


@pytest.fixture
def client(server):
    host, port = server.start()
    with ServiceClient(host, port) as c:
        yield c


class TestRegistration:
    def test_duplicate_name_rejected(self, graph):
        srv = ComICServer()
        srv.register_graph("g", graph, GAPS)
        with pytest.raises(QueryError, match="already registered"):
            srv.register_graph("g", graph, GAPS)
        srv.close()

    def test_bad_names_rejected(self, graph):
        srv = ComICServer()
        for name in ("", "a/b"):
            with pytest.raises(QueryError, match="graph name"):
                srv.register_graph(name, graph, GAPS)
        srv.close()

    def test_close_is_idempotent_and_closes_sessions(self, graph):
        srv = ComICServer()
        session = srv.register_graph("g", graph, GAPS)
        srv.start()
        srv.close()
        srv.close()
        assert session.store is None  # nothing to flush; just no crash


class TestHandleQueryDirect:
    """The HTTP-independent core, driven without sockets."""

    def test_unknown_graph_is_404(self, server):
        status, body = server.handle_query("nope", {"query": QUERY.to_dict()})
        assert status == 404 and "unknown graph" in body["error"]

    def test_missing_query_is_400(self, server):
        status, body = server.handle_query("demo", {})
        assert status == 400 and "query" in body["error"]

    def test_untagged_query_payload_is_400(self, server):
        status, body = server.handle_query("demo", {"query": {"k": 3}})
        assert status == 400 and "objective" in body["error"]

    def test_unknown_request_field_is_400(self, server):
        status, body = server.handle_query(
            "demo", {"query": QUERY.to_dict(), "bogus": 1}
        )
        assert status == 400 and "bogus" in body["error"]

    def test_bad_config_override_is_400(self, server):
        status, body = server.handle_query(
            "demo", {"query": QUERY.to_dict(), "config": {"epsilon": -1}}
        )
        assert status == 400 and "bad config" in body["error"]

    def test_unknown_config_field_is_400(self, server):
        status, body = server.handle_query(
            "demo", {"query": QUERY.to_dict(), "config": {"nope": 1}}
        )
        assert status == 400

    def test_bad_rng_and_deadline_types_are_400(self, server):
        for extra in ({"rng": "x"}, {"rng": True},
                      {"deadline_s": "x"}, {"deadline_s": -1}):
            status, _ = server.handle_query(
                "demo", {"query": QUERY.to_dict(), **extra}
            )
            assert status == 400, extra

    def test_semantic_query_error_is_400(self, server):
        # k exceeding the node count raises QueryError inside the handler
        bad = SelfInfMaxQuery(seeds_b=(0,), k=10_000)
        status, body = server.handle_query(
            "demo", {"query": bad.to_dict(), "rng": 1}
        )
        assert status == 400 and body["error"]

    def test_errors_counted(self, server):
        server.handle_query("demo", {})
        assert server.stats.errors >= 1


class TestHttpRoundTrip:
    def test_cold_then_warm_identical_seeds_zero_resample(self, client):
        cold = client.query("demo", QUERY, rng=11)
        assert cold["diagnostics"]["rr_sets_sampled"] > 0
        warm = client.query("demo", QUERY, rng=11)
        assert warm["diagnostics"]["rr_sets_sampled"] == 0
        assert warm["seeds"] == cold["seeds"]
        assert warm["objective"] == "selfinfmax"

    def test_result_envelope_has_resilience_diagnostics(self, client):
        body = client.query("demo", QUERY, rng=3)
        diag = body["diagnostics"]
        assert "resilience" in diag and "events" in diag["resilience"]
        assert diag["degraded"] is False
        assert diag["graph_fingerprint"]

    def test_per_request_config_override(self, client):
        body = client.query(
            "demo", QUERY, config={"engine": "tim", "theta_override": 300},
            rng=5,
        )
        assert body["diagnostics"]["rr_sets_sampled"] == 300

    def test_per_request_deadline_rides_config(self, client):
        body = client.query(
            "demo", SelfInfMaxQuery(seeds_b=(4,), k=3),
            rng=5, deadline_s=60.0,
        )
        assert body["diagnostics"]["degraded"] is False

    def test_multiple_objectives_one_graph(self, client):
        comp = client.query(
            "demo", CompInfMaxQuery(seeds_a=(3,), k=3), rng=2
        )
        assert comp["objective"] == "compinfmax"
        blocking = client.query(
            "demo",
            BlockingQuery(
                seeds_a=(5,), k=2, method="rr",
                gaps=GAP(0.6, 0.2, 0.6, 0.6),  # rr-block: one-way Q-
            ),
            rng=2,
        )
        assert blocking["objective"] == "blocking"

    def test_http_404_and_400_surface_to_client(self, client):
        with pytest.raises(ServiceClientError) as exc:
            client.query("nope", QUERY, rng=1)
        assert exc.value.status == 404
        with pytest.raises(ServiceClientError) as exc:
            client._request("POST", "/query/demo", {"query": {"x": 1}})
        assert exc.value.status == 400

    def test_unknown_endpoints_404(self, client):
        with pytest.raises(ServiceClientError) as exc:
            client._request("GET", "/bogus")
        assert exc.value.status == 404
        with pytest.raises(ServiceClientError) as exc:
            client._request("POST", "/bogus", {})
        assert exc.value.status == 404

    def test_introspection_endpoints(self, client):
        health = client.health()
        assert health["status"] == "ok" and health["graphs"] == ["demo"]
        graphs = client.graphs()
        assert graphs["demo"]["num_nodes"] == 200
        client.query("demo", QUERY, rng=1)
        stats = client.stats()
        assert stats["server"]["queries"] >= 1
        assert stats["graphs"]["demo"]["session"]["queries"] >= 1
        assert "store" in stats["graphs"]["demo"]

    def test_catalog_endpoint(self, client):
        client.query("demo", QUERY, rng=1)
        cat = client.catalog("demo")
        assert len(cat["demo"]["rows"]) == 1
        assert cat["demo"]["rows"][0]["regime"] == "rr-sim+"
        everything = client.catalog()
        assert "demo" in everything


class TestSingleFlight:
    def test_concurrent_identical_cold_queries_execute_once(self, server):
        host, port = server.start()
        K = 6
        query = SelfInfMaxQuery(seeds_b=(7, 8), k=4)
        results = [None] * K
        barrier = threading.Barrier(K)

        def worker(i):
            with ServiceClient(host, port) as c:
                barrier.wait()
                results[i] = c.query("demo", query, rng=99)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(K)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r is not None for r in results)
        # exactly one execution: one flight led, the rest were coalesced
        assert server.stats.queries == 1
        assert server.stats.flights == 1
        assert server.stats.coalesced == K - 1
        # everyone got the leader's envelope verbatim
        seeds = {tuple(r["seeds"]) for r in results}
        assert len(seeds) == 1

    def test_unpinned_requests_are_not_coalesced(self, server):
        status, _ = server.handle_query("demo", {"query": QUERY.to_dict()})
        assert status == 200
        status, _ = server.handle_query("demo", {"query": QUERY.to_dict()})
        assert status == 200
        assert server.stats.flights == 0
        assert server.stats.coalesced == 0
        assert server.stats.queries == 2

    def test_flight_table_drains(self, server):
        server.handle_query(
            "demo", {"query": QUERY.to_dict(), "rng": 4}
        )
        assert server._flights == {}

    def test_different_rng_pins_do_not_coalesce(self, server):
        server.handle_query("demo", {"query": QUERY.to_dict(), "rng": 1})
        server.handle_query("demo", {"query": QUERY.to_dict(), "rng": 2})
        assert server.stats.flights == 2
        assert server.stats.coalesced == 0


class TestWarmRestart:
    def test_second_server_answers_from_store_via_http(self, graph, tmp_path):
        first = ComICServer()
        first.register_graph(
            "g", graph, GAPS,
            config=CONFIG, store=CatalogedPoolStore(tmp_path / "pools"),
        )
        host, port = first.start()
        with ServiceClient(host, port) as c:
            cold = c.query("g", QUERY, rng=11)
        first.close()

        second = ComICServer()
        second.register_graph(
            "g", graph, GAPS,
            config=CONFIG, store=CatalogedPoolStore(tmp_path / "pools"),
        )
        host, port = second.start()
        with ServiceClient(host, port) as c:
            warm = c.query("g", QUERY, rng=11)
        second.close()
        assert warm["diagnostics"]["rr_sets_sampled"] == 0
        assert warm["seeds"] == cold["seeds"]


class TestDeltaEndpoint:
    """POST /graph/<name>/delta: live mutation with in-place pool repair."""

    DELTA_CONFIG = EngineConfig(
        engine="imm", max_rr_sets=1500, track_touches=True
    )

    @pytest.fixture
    def dyn_server(self, graph):
        srv = ComICServer()
        srv.register_graph("demo", graph, GAPS, config=self.DELTA_CONFIG)
        yield srv
        srv.close()

    @staticmethod
    def reweight_payload(graph, count=3, probability=0.2):
        src, dst = graph.edge_sources, graph.edge_targets
        return {
            "kind": "graph_delta",
            "reweight": [
                [int(src[i]), int(dst[i]), probability] for i in range(count)
            ],
        }

    def test_delta_repairs_and_next_query_is_warm(self, graph, dyn_server):
        status, cold = dyn_server.handle_query(
            "demo", {"query": QUERY.to_dict(), "rng": 1}
        )
        assert status == 200
        cold_sampled = cold["diagnostics"]["rr_sets_sampled"]
        status, report = dyn_server.handle_delta(
            "demo", {"delta": self.reweight_payload(graph), "rng": 2}
        )
        assert status == 200
        assert report["pools_repaired"] == 1
        assert 0 < report["members_resampled"] < cold_sampled
        status, warm = dyn_server.handle_query(
            "demo", {"query": QUERY.to_dict(), "rng": 3}
        )
        assert status == 200
        assert warm["diagnostics"]["rr_sets_sampled"] < cold_sampled / 2
        assert dyn_server.stats.deltas == 1

    def test_delta_changes_served_fingerprint(self, graph, dyn_server):
        before = dyn_server.handle_graphs()[1]["demo"]["fingerprint"]
        status, report = dyn_server.handle_delta(
            "demo", {"delta": self.reweight_payload(graph)}
        )
        assert status == 200
        after = dyn_server.handle_graphs()[1]["demo"]["fingerprint"]
        assert before == report["old_fingerprint"]
        assert after == report["fingerprint"] != before

    def test_unknown_graph_is_404(self, graph, dyn_server):
        status, body = dyn_server.handle_delta(
            "nope", {"delta": self.reweight_payload(graph)}
        )
        assert status == 404 and "unknown graph" in body["error"]

    def test_missing_or_malformed_delta_is_400(self, dyn_server):
        for payload in (
            {},
            {"delta": "not an object"},
            {"delta": {"kind": "graph_delta"}, "extra": 1},
            {"delta": {"kind": "graph_delta", "remove": [[0, 0]]}},
            {"delta": {"kind": "graph_delta", "frobnicate": []}},
        ):
            status, body = dyn_server.handle_delta("demo", payload)
            assert status == 400, payload
            assert "error" in body

    def test_contradictory_delta_is_400(self, dyn_server):
        status, body = dyn_server.handle_delta(
            "demo",
            {"delta": {"kind": "graph_delta", "remove": [[0, 199]]}},
        )
        assert status == 400
        assert "does not exist" in body["error"]

    def test_bad_rng_type_is_400(self, graph, dyn_server):
        status, body = dyn_server.handle_delta(
            "demo",
            {"delta": self.reweight_payload(graph), "rng": "seven"},
        )
        assert status == 400 and "rng" in body["error"]

    def test_delta_over_http_via_client(self, graph):
        from repro.api import GraphDelta

        srv = ComICServer()
        srv.register_graph("demo", graph, GAPS, config=self.DELTA_CONFIG)
        try:
            host, port = srv.start()
            with ServiceClient(host, port) as c:
                cold = c.query("demo", QUERY, rng=5)
                delta = GraphDelta.from_dict(self.reweight_payload(graph))
                report = c.apply_delta("demo", delta, rng=6)
                assert report["pools_repaired"] == 1
                warm = c.query("demo", QUERY, rng=7)
                assert (
                    warm["diagnostics"]["rr_sets_sampled"]
                    < cold["diagnostics"]["rr_sets_sampled"]
                )
                stats = c.stats()
                assert stats["server"]["deltas"] == 1
                session = stats["graphs"]["demo"]["session"]
                assert session["deltas_applied"] == 1
                assert session["pools_repaired"] == 1
        finally:
            srv.close()


class TestBodyLimit:
    """POST bodies above max_body_bytes are refused with 413 unread."""

    def test_oversized_query_body_is_413(self, graph):
        srv = ComICServer(max_body_bytes=512)
        srv.register_graph("demo", graph, GAPS, config=CONFIG)
        try:
            host, port = srv.start()
            with ServiceClient(host, port) as c:
                with pytest.raises(ServiceClientError) as excinfo:
                    c.query("demo", QUERY, rng=1, config={"pad": "x" * 2048})
                assert excinfo.value.status == 413
                assert "exceeds" in str(excinfo.value)
        finally:
            srv.close()

    def test_oversized_delta_body_is_413(self, graph):
        srv = ComICServer(max_body_bytes=512)
        srv.register_graph("demo", graph, GAPS, config=CONFIG)
        try:
            host, port = srv.start()
            delta = {"kind": "graph_delta",
                     "reweight": [[i, i + 1, 0.5] for i in range(199)]}
            with ServiceClient(host, port) as c:
                with pytest.raises(ServiceClientError) as excinfo:
                    c.apply_delta("demo", delta)
                assert excinfo.value.status == 413
        finally:
            srv.close()

    def test_within_limit_still_served(self, graph):
        srv = ComICServer(max_body_bytes=100_000)
        srv.register_graph("demo", graph, GAPS, config=CONFIG)
        try:
            host, port = srv.start()
            with ServiceClient(host, port) as c:
                body = c.query("demo", QUERY, rng=1)
                assert body["seeds"]
        finally:
            srv.close()

    def test_bad_max_body_bytes_rejected(self):
        with pytest.raises(QueryError, match="max_body_bytes"):
            ComICServer(max_body_bytes=0)
