"""Benchmark: Figure 7 — running time comparison and scalability.

Shape checks (paper):
* (a) MC Greedy is far slower than the RR-set methods;
* (b) runtime grows near-linearly with graph size (we allow generous
  slack: the ratio of per-node cost between the largest and smallest
  graphs must stay within a small constant).
"""

from repro.experiments import figure7a_runtime, figure7b_scalability


def bench_fig7a_runtime(benchmark, bench_scale, save_table):
    result = benchmark.pedantic(
        lambda: figure7a_runtime(
            bench_scale, include_greedy=True, greedy_pool=15, greedy_runs=15
        ),
        rounds=1, iterations=1,
    )
    save_table(result, "figure7a_runtime")
    for row in result.rows:
        rr_time = min(row["rr_sim_s"], row["rr_sim_plus_s"])
        assert row["greedy_sim_s"] > rr_time, (
            "Greedy should be slower than the RR methods even at toy scale"
        )


def bench_fig7b_scalability(benchmark, bench_scale, save_table):
    result = benchmark.pedantic(
        lambda: figure7b_scalability(
            bench_scale, sizes=(500, 1000, 2000), theta=1000
        ),
        rounds=1, iterations=1,
    )
    save_table(result, "figure7b_scalability")
    rows = result.rows
    per_node_small = rows[0]["rr_sim_plus_s"] / rows[0]["nodes"]
    per_node_large = rows[-1]["rr_sim_plus_s"] / rows[-1]["nodes"]
    # Near-linear: per-node cost within a 6x envelope across a 4x size range.
    assert per_node_large < 6 * per_node_small + 1e-3
