"""Post-selection campaign analytics: who adopts, when, and in what state.

After choosing seeds for an iPhone (A) / Watch (B) style campaign, a
marketer wants more than a single spread number: per-node adoption
probabilities (whom to target with follow-up ads), the temporal adoption
profile (when the campaign peaks), and the final joint-state census
(how many users ended suspended — aware but unconvinced).

Run:  python examples/campaign_analytics.py
"""

from repro import ComICSession, EngineConfig, GAP, SelfInfMaxQuery, simulate
from repro.analysis import (
    adoption_probabilities,
    adoption_timeline,
    cascade_depth,
    joint_state_census,
)
from repro.graph import power_law_digraph, weighted_cascade_probabilities
from repro.models import ItemState


def main() -> None:
    graph = weighted_cascade_probabilities(power_law_digraph(600, rng=5))
    gaps = GAP(q_a=0.3, q_a_given_b=0.85, q_b=0.5, q_b_given_a=0.5)
    seeds_b = [0, 1, 2]
    session = ComICSession(
        graph, gaps, config=EngineConfig(theta_override=3000), rng=1
    )
    chosen = session.run(SelfInfMaxQuery(seeds_b=tuple(seeds_b), k=5))
    seeds_a = chosen.seeds
    print(f"A-seeds: {seeds_a} (B fixed at {seeds_b})")

    # 1. Per-node adoption probabilities: the retargeting list.
    probs = adoption_probabilities(
        graph, gaps, seeds_a, seeds_b, runs=500, rng=2
    )
    hot = probs.top_adopters(8)
    print("most likely A-adopters:", hot)
    print("their adoption probabilities:",
          [round(float(probs.prob_a[v]), 2) for v in hot])

    # 2. Temporal profile: when does the campaign peak?
    timeline = adoption_timeline(graph, gaps, seeds_a, seeds_b, runs=500, rng=3)
    print(f"expected new A-adopters per step: "
          f"{[round(float(x), 1) for x in timeline.new_a[:8]]}")
    print(f"peak step: {timeline.peak_step()} "
          f"(total: {timeline.cumulative_a()[-1]:.1f})")

    # 3. One concrete cascade: final joint-state census.
    outcome = simulate(graph, gaps, seeds_a, seeds_b, rng=4)
    census = joint_state_census(outcome)
    adopted_both = census[(ItemState.ADOPTED, ItemState.ADOPTED)]
    suspended_a = sum(
        count for (state_a, _state_b), count in census.items()
        if state_a == ItemState.SUSPENDED
    )
    print(f"one cascade: {outcome.num_a_adopted} A-adopters "
          f"({adopted_both} adopted both), {suspended_a} aware-but-suspended "
          f"on A, depth {cascade_depth(outcome)} steps")


if __name__ == "__main__":
    main()
