"""Unified engine configuration for the query API.

:class:`EngineConfig` is the single knob object of :mod:`repro.api`: it
replaces the ad-hoc ``(engine, TIMOptions, IMMOptions)`` triple the old
solver entry points threaded through every call.  One frozen,
JSON-round-trippable record fixes the seed-selection engine (``"tim"`` or
``"imm"``) and the shared accuracy/budget knobs; :meth:`tim_options` and
:meth:`imm_options` project it onto the engine-specific option dataclasses
the :mod:`repro.rrset` layer consumes, so both engines always see
consistent epsilon / ell / sample caps.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Mapping, Optional

from repro.errors import QueryError
from repro.rrset.engines import ENGINES
from repro.rrset.imm import IMMOptions
from repro.rrset.sweep import DEFAULT_CHUNK_STATE_BYTES, SweepConfig
from repro.rrset.tim import TIMOptions


@dataclass(frozen=True)
class EngineConfig:
    """Knobs shared by every RR-set-backed query.

    ``engine`` selects GeneralTIM ([24]) or martingale IMM ([23]);
    ``epsilon`` / ``ell`` are the usual approximation-slack and
    failure-probability knobs; ``max_rr_sets`` / ``min_rr_sets`` bound the
    sample size for tractability; ``theta_override`` pins the TIM sample
    count outright (benchmarks, scaled experiments).  Monte-Carlo routes
    of the blocking / multi-item objectives ignore the engine fields.

    ``max_pool_bytes`` bounds the session's RR-set pool *cache*: after
    each pooled seed selection, least-recently-used pools are evicted
    until the total cached bytes fit (``None`` = unbounded, the
    pre-cap behaviour).  Evictions are counted in
    :class:`~repro.api.session.SessionStats`.

    ``workers`` parallelises RR-set *generation*: values above 1 make the
    session wrap each pool's generator in a
    :class:`~repro.parallel.ParallelEngine` that shards every sampling
    batch across that many spawn-safe worker processes (selection and MC
    evaluation stay in-process).  The workers are persistent per cached
    pool; 1 (the default) is fully serial.

    ``deadline_s`` gives every query a cooperative wall-clock budget in
    seconds: sampling checks it at TIM/IMM top-up boundaries and parallel
    shard joins, and on expiry the session returns a best-effort result
    over the RR-sets already drawn (never fewer than ``min_rr_sets``),
    stamped ``degraded=True`` in
    :attr:`~repro.api.results.InfluenceResult.diagnostics`.  ``None``
    (the default) imposes no budget.  See ``docs/resilience.md``.

    ``track_touches`` makes the session's pools record per-member
    edge-touch signatures (and roots) during generation, enabling
    incremental repair under :meth:`~repro.api.session.ComICSession.
    apply_delta` at the cost of extra pool memory; off by default so
    cold static-graph generation pays nothing.  ``delta_churn_threshold``
    bounds how much relative edge churn (``delta.num_edits / num_edges``)
    a repair may absorb: beyond it the session falls back to full
    regeneration, both because repair approaches regeneration cost and
    because the keep-the-untouched-members approximation degrades with
    churn.  See ``docs/api.md`` ("Dynamic graphs").

    ``chunk_state_bytes`` budgets the per-chunk sweep state of the
    batched RR kernels (the one knob behind every kernel's chunk size),
    and ``sweep_backend`` selects the chunk-state layout: ``"auto"``
    (dense below ~half a million nodes, sparse above), ``"dense"``, or
    ``"sparse"``.  Both thread through :meth:`sweep_config` to every
    generator the session builds.  See ``docs/api.md`` ("Sweep engine").
    """

    engine: str = "tim"
    epsilon: float = 0.5
    ell: float = 1.0
    max_rr_sets: int = 50_000
    min_rr_sets: int = 200
    theta_override: Optional[int] = None
    max_pool_bytes: Optional[int] = None
    workers: int = 1
    deadline_s: Optional[float] = None
    track_touches: bool = False
    delta_churn_threshold: float = 0.35
    chunk_state_bytes: int = DEFAULT_CHUNK_STATE_BYTES
    sweep_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise QueryError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.epsilon <= 0.0:
            raise QueryError(f"epsilon must be positive, got {self.epsilon}")
        if self.ell <= 0.0:
            raise QueryError(f"ell must be positive, got {self.ell}")
        if self.max_rr_sets < 1:
            raise QueryError(f"max_rr_sets must be >= 1, got {self.max_rr_sets}")
        if self.min_rr_sets < 1:
            raise QueryError(f"min_rr_sets must be >= 1, got {self.min_rr_sets}")
        if self.theta_override is not None and self.theta_override < 1:
            raise QueryError(
                f"theta_override must be >= 1, got {self.theta_override}"
            )
        if self.theta_override is not None and self.engine == "imm":
            raise QueryError(
                "theta_override pins the TIM sample count; IMM sizes its "
                "sample adaptively — use max_rr_sets to bound it instead"
            )
        if self.max_pool_bytes is not None and self.max_pool_bytes < 1:
            raise QueryError(
                f"max_pool_bytes must be >= 1 (or None for unbounded), "
                f"got {self.max_pool_bytes}"
            )
        if not isinstance(self.workers, int) or self.workers < 1:
            raise QueryError(
                f"workers must be an int >= 1 (1 = serial), got {self.workers!r}"
            )
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise QueryError(
                f"deadline_s must be > 0 seconds (or None for no budget), "
                f"got {self.deadline_s}"
            )
        if not isinstance(self.track_touches, bool):
            raise QueryError(
                f"track_touches must be a bool, got {self.track_touches!r}"
            )
        if not 0.0 <= self.delta_churn_threshold <= 1.0:
            raise QueryError(
                f"delta_churn_threshold must lie in [0, 1], "
                f"got {self.delta_churn_threshold}"
            )
        # Delegate the sweep-knob validation to SweepConfig so the two
        # layers can never disagree about what is legal.
        try:
            self.sweep_config()
        except ValueError as exc:
            raise QueryError(str(exc)) from exc

    # ------------------------------------------------------------------
    # Projections onto the engine-specific option records
    # ------------------------------------------------------------------
    def tim_options(self) -> TIMOptions:
        """The equivalent :class:`~repro.rrset.tim.TIMOptions`."""
        return TIMOptions(
            epsilon=self.epsilon,
            ell=self.ell,
            max_rr_sets=self.max_rr_sets,
            min_rr_sets=self.min_rr_sets,
            theta_override=self.theta_override,
        )

    def imm_options(self) -> IMMOptions:
        """The equivalent :class:`~repro.rrset.imm.IMMOptions`."""
        return IMMOptions(
            epsilon=self.epsilon,
            ell=self.ell,
            max_rr_sets=self.max_rr_sets,
            min_rr_sets=self.min_rr_sets,
        )

    def sweep_config(self) -> SweepConfig:
        """The equivalent :class:`~repro.rrset.sweep.SweepConfig`.

        The session assigns this to every generator it constructs, so
        the kernels' chunk sizing and state backend follow the config.
        """
        return SweepConfig(
            chunk_state_bytes=self.chunk_state_bytes,
            state_backend=self.sweep_backend,
        )

    @classmethod
    def from_tim_options(
        cls,
        options: Optional[TIMOptions] = None,
        *,
        engine: str = "tim",
        imm_options: Optional[IMMOptions] = None,
    ) -> "EngineConfig":
        """Lift the legacy knob triple into one config (shim helper).

        Mirrors the old dispatch rule: explicit ``imm_options`` win for
        ``engine="imm"``, otherwise IMM inherits the TIM knobs.
        """
        if options is None:
            options = TIMOptions()
        if engine == "imm" and imm_options is not None:
            return cls(
                engine=engine,
                epsilon=imm_options.epsilon,
                ell=imm_options.ell,
                max_rr_sets=imm_options.max_rr_sets,
                min_rr_sets=imm_options.min_rr_sets,
            )
        return cls(
            engine=engine,
            epsilon=options.epsilon,
            ell=options.ell,
            max_rr_sets=options.max_rr_sets,
            min_rr_sets=options.min_rr_sets,
            # IMM has no theta pin; legacy callers passing TIM options with
            # theta_override to engine="imm" always had it dropped silently,
            # and the shims must keep accepting that combination.
            theta_override=(
                options.theta_override if engine != "imm" else None
            ),
        )

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A plain-JSON-types dict; inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineConfig":
        """Rebuild from :meth:`to_dict` output."""
        known = {f: data[f] for f in cls.__dataclass_fields__ if f in data}
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise QueryError(f"unknown EngineConfig fields: {sorted(unknown)}")
        return cls(**known)

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "EngineConfig":
        """Inverse of :meth:`to_json` (``from_json(to_json(c)) == c``)."""
        return cls.from_dict(json.loads(payload))
