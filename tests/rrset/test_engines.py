"""Tests for the TIM/IMM engine dispatch and its use by the solvers."""

import pytest

from repro.graph import power_law_digraph, star_digraph
from repro.models import GAP
from repro.rrset import (
    IMMOptions,
    IMMResult,
    RRICGenerator,
    TIMOptions,
    TIMResult,
    run_seed_selection,
)
from repro.rrset.engines import imm_options_from_tim
from repro.algorithms import solve_compinfmax, solve_selfinfmax


@pytest.fixture(scope="module")
def graph():
    return power_law_digraph(
        200, exponent=2.16, average_degree=5.0, probability=0.2, rng=77
    )


class TestDispatch:
    def test_tim_engine_returns_tim_result(self, graph):
        result = run_seed_selection(
            RRICGenerator(graph), 3,
            engine="tim", options=TIMOptions(theta_override=500), rng=1,
        )
        assert isinstance(result, TIMResult)
        assert len(result.seeds) == 3

    def test_imm_engine_returns_imm_result(self, graph):
        result = run_seed_selection(
            RRICGenerator(graph), 3,
            engine="imm", options=TIMOptions(max_rr_sets=1500), rng=1,
        )
        assert isinstance(result, IMMResult)
        assert len(result.seeds) == 3

    def test_unknown_engine_rejected(self, graph):
        with pytest.raises(ValueError, match="unknown engine"):
            run_seed_selection(RRICGenerator(graph), 2, engine="celf")

    def test_explicit_imm_options_win(self, graph):
        result = run_seed_selection(
            RRICGenerator(graph), 2,
            engine="imm",
            options=TIMOptions(max_rr_sets=50_000),
            imm_options=IMMOptions(max_rr_sets=300),
            rng=2,
        )
        assert result.theta <= 300

    def test_option_mapping(self):
        tim = TIMOptions(epsilon=0.25, ell=2.0, max_rr_sets=123, min_rr_sets=7)
        imm = imm_options_from_tim(tim)
        assert imm.epsilon == 0.25
        assert imm.ell == 2.0
        assert imm.max_rr_sets == 123
        assert imm.min_rr_sets == 7


class TestSolverEngines:
    def test_selfinfmax_imm_submodular_path(self, graph):
        gaps = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
        result = solve_selfinfmax(
            graph, gaps, [0, 1], 3,
            options=TIMOptions(max_rr_sets=1500), engine="imm", rng=4,
        )
        assert result.method == "submodular"
        assert isinstance(result.tim_results["sigma"], IMMResult)
        assert len(result.seeds) == 3

    def test_selfinfmax_imm_sandwich_path(self, graph):
        gaps = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.3, q_b_given_a=0.9)
        result = solve_selfinfmax(
            graph, gaps, [0, 1], 2,
            options=TIMOptions(max_rr_sets=800),
            evaluation_runs=30, engine="imm", rng=5,
        )
        assert result.method == "sandwich"
        assert isinstance(result.tim_results["nu"], IMMResult)

    def test_compinfmax_imm_paths(self, graph):
        gaps = GAP(q_a=0.2, q_a_given_b=0.9, q_b=0.4, q_b_given_a=1.0)
        result = solve_compinfmax(
            graph, gaps, [0, 1], 2,
            options=TIMOptions(max_rr_sets=800), engine="imm", rng=6,
        )
        assert result.method == "submodular"
        assert isinstance(result.tim_results["sigma"], IMMResult)

    def test_engines_agree_on_easy_instance(self):
        # A star hub is unambiguous: both engines must find it.
        graph = star_digraph(30)
        gaps = GAP(q_a=0.5, q_a_given_b=0.9, q_b=0.5, q_b_given_a=0.5)
        for engine in ("tim", "imm"):
            result = solve_selfinfmax(
                graph, gaps, [5], 1,
                options=TIMOptions(max_rr_sets=1500), engine=engine, rng=7,
            )
            assert result.seeds == [0], engine
