"""repro — a reproduction of "From Competition to Complementarity:
Comparative Influence Diffusion and Maximization" (Lu, Chen & Lakshmanan,
VLDB 2016).

Public API highlights:

* :class:`~repro.api.session.ComICSession` and the :mod:`repro.api` query
  layer — the unified entry point for all four optimisation workloads,
  with cross-query RR-set pool reuse;
* :mod:`repro.store` — persistent, validated on-disk pool snapshots for
  cross-process warm starts — and :mod:`repro.parallel` — multiprocess
  sharded RR-set generation (``EngineConfig.workers``);
* :class:`~repro.graph.DiGraph` and the :mod:`repro.graph` substrate;
* :class:`~repro.models.GAP` and :func:`~repro.models.simulate` — the
  Com-IC model;
* :func:`~repro.algorithms.solve_selfinfmax` /
  :func:`~repro.algorithms.solve_compinfmax` — deprecated one-shot shims
  over the session API;
* :mod:`repro.learning` — GAP estimation from action logs;
* :mod:`repro.datasets` / :mod:`repro.experiments` — the evaluation
  harness regenerating every table and figure of §7.
"""

from repro.errors import (
    ActionLogError,
    ConvergenceError,
    EdgeProbabilityError,
    EstimationError,
    ExperimentError,
    GapError,
    GraphError,
    QueryError,
    RegimeError,
    ReproError,
    SeedSetError,
)
from repro.graph import DiGraph
from repro.models import (
    GAP,
    DiffusionOutcome,
    ItemState,
    estimate_boost,
    estimate_spread,
    simulate,
)
from repro.algorithms import solve_compinfmax, solve_selfinfmax
from repro.api import (
    BlockingQuery,
    ComICSession,
    CompInfMaxQuery,
    EngineConfig,
    InfluenceResult,
    MultiItemQuery,
    SelfInfMaxQuery,
)
from repro.rrset import TIMOptions, general_tim

__version__ = "1.1.0"

__all__ = [
    "ComICSession",
    "EngineConfig",
    "InfluenceResult",
    "SelfInfMaxQuery",
    "CompInfMaxQuery",
    "BlockingQuery",
    "MultiItemQuery",
    "DiGraph",
    "GAP",
    "ItemState",
    "simulate",
    "DiffusionOutcome",
    "estimate_spread",
    "estimate_boost",
    "solve_selfinfmax",
    "solve_compinfmax",
    "general_tim",
    "TIMOptions",
    "ReproError",
    "QueryError",
    "GraphError",
    "EdgeProbabilityError",
    "GapError",
    "RegimeError",
    "SeedSetError",
    "ConvergenceError",
    "ActionLogError",
    "EstimationError",
    "ExperimentError",
    "__version__",
]
