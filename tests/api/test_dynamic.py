"""ComICSession.apply_delta: in-place pool repair over a live session."""

import numpy as np
import pytest

from repro.api import (
    ComICSession,
    DeltaReport,
    EngineConfig,
    GraphDelta,
    SelfInfMaxQuery,
)
from repro.errors import DeltaError
from repro.graph import power_law_digraph, weighted_cascade_probabilities
from repro.models import GAP
from repro.store import PoolStore

GAPS = GAP(q_a=0.4, q_a_given_b=0.7, q_b=0.5, q_b_given_a=0.5)
QUERY = SelfInfMaxQuery(seeds_b=(0, 1), k=5)


@pytest.fixture(scope="module")
def graph():
    return weighted_cascade_probabilities(power_law_digraph(200, rng=9))


def small_delta(graph, count=3, probability=0.15):
    src, dst = graph.edge_sources, graph.edge_targets
    return GraphDelta(
        reweight=tuple(
            (int(src[i]), int(dst[i]), probability) for i in range(count)
        )
    )


def tracked_config(**overrides):
    base = dict(engine="imm", epsilon=0.5, track_touches=True)
    base.update(overrides)
    return EngineConfig(**base)


class TestApplyDelta:
    def test_repairs_cached_pool_in_place(self, graph):
        with ComICSession(graph, GAPS, config=tracked_config()) as sess:
            sess.run(QUERY)
            cold = sess.stats.rr_sets_sampled
            report = sess.apply_delta(small_delta(graph), rng=1)
            assert isinstance(report, DeltaReport)
            assert report.pools_repaired == 1
            assert report.pools_regenerated == 0
            assert 0 < report.members_resampled < cold
            assert report.old_fingerprint == graph.fingerprint()
            assert sess.graph.fingerprint() == report.fingerprint
            assert report.fingerprint != report.old_fingerprint
            # the next query answers from the repaired pool: warm top-up,
            # nowhere near a cold re-sample
            sess.run(QUERY)
            warm_extra = (
                sess.stats.rr_sets_sampled - cold - report.members_resampled
            )
            assert warm_extra < cold / 2
            assert sess.stats.deltas_applied == 1
            assert sess.stats.pools_repaired == 1
            assert sess.stats.members_resampled == report.members_resampled

    def test_report_rows_and_as_dict(self, graph):
        with ComICSession(graph, GAPS, config=tracked_config()) as sess:
            sess.run(QUERY)
            report = sess.apply_delta(small_delta(graph), rng=2)
            payload = report.as_dict()
            assert payload["pools_repaired"] == 1
            (row,) = payload["pools"]
            assert row["action"] == "repaired"
            assert row["reason"] is None
            assert row["regime"] == "rr-sim+"
            assert row["resampled"] == report.members_resampled

    def test_churn_over_threshold_regenerates(self, graph):
        cfg = tracked_config(delta_churn_threshold=0.0001)
        with ComICSession(graph, GAPS, config=cfg) as sess:
            sess.run(QUERY)
            cold = sess.stats.rr_sets_sampled
            report = sess.apply_delta(small_delta(graph), rng=3)
            assert report.pools_repaired == 0
            assert report.pools_regenerated == 1
            assert report.members_resampled == 0
            assert sess.stats.delta_fallbacks_by_reason == {
                "delta_churn": 1
            }
            (row,) = report.pools
            assert row["action"] == "regenerated"
            assert row["reason"] == "delta_churn"
            # next query pays a cold regeneration on the new graph
            sess.run(QUERY)
            assert sess.stats.rr_sets_sampled >= 2 * cold * 0.5

    def test_untracked_pools_fall_back_with_touch_absent(self, graph):
        cfg = tracked_config(track_touches=False)
        with ComICSession(graph, GAPS, config=cfg) as sess:
            sess.run(QUERY)
            report = sess.apply_delta(small_delta(graph), rng=4)
            assert report.pools_repaired == 0
            assert report.pools_regenerated == 1
            assert sess.stats.delta_fallbacks_by_reason == {
                "touch_absent": 1
            }

    def test_delta_without_pools_just_swaps_graph(self, graph):
        with ComICSession(graph, GAPS, config=tracked_config()) as sess:
            report = sess.apply_delta(small_delta(graph), rng=5)
            assert report.pools_repaired == 0
            assert report.pools_regenerated == 0
            assert sess.graph.fingerprint() == report.fingerprint

    def test_non_delta_rejected(self, graph):
        with ComICSession(graph, GAPS, config=tracked_config()) as sess:
            with pytest.raises(DeltaError, match="GraphDelta"):
                sess.apply_delta({"kind": "graph_delta"})

    def test_contradictory_delta_rejected_and_session_unchanged(self, graph):
        with ComICSession(graph, GAPS, config=tracked_config()) as sess:
            sess.run(QUERY)
            before = sess.graph.fingerprint()
            with pytest.raises(DeltaError, match="does not exist"):
                sess.apply_delta(GraphDelta(remove=((0, 199),)))
            assert sess.graph.fingerprint() == before
            assert sess.stats.deltas_applied == 0

    def test_certified_theta_cleared_and_rederived(self, graph):
        with ComICSession(graph, GAPS, config=tracked_config()) as sess:
            r1 = sess.run(QUERY)
            sess.apply_delta(small_delta(graph), rng=6)
            r2 = sess.run(QUERY)
            # both queries certify a theta; the second one re-derives on
            # the repaired pool rather than trusting the stale record
            assert r2.diagnostics["theta"] > 0
            assert r2.seeds  # answers successfully on the new graph

    def test_repaired_quality_tracks_fresh_session(self, graph):
        """Spread parity: a repaired session's answer must match a
        cold session built directly on the mutated graph."""
        delta = small_delta(graph, count=2, probability=0.9)
        with ComICSession(graph, GAPS, config=tracked_config()) as warm:
            warm.run(QUERY)
            warm.apply_delta(delta, rng=7)
            warm_result = warm.run(QUERY, rng=8)
        new_graph = graph.apply_delta(delta)
        with ComICSession(new_graph, GAPS, config=tracked_config()) as cold:
            cold_result = cold.run(QUERY, rng=8)
        assert warm_result.estimate == pytest.approx(
            cold_result.estimate, rel=0.2
        )


class TestDeltaStorePersistence:
    def test_repaired_pool_written_under_new_fingerprint(
        self, graph, tmp_path
    ):
        delta = small_delta(graph)
        cfg = tracked_config()
        with ComICSession(
            graph, GAPS, config=cfg, store=PoolStore(tmp_path)
        ) as sess:
            sess.run(QUERY)
            sess.apply_delta(delta, rng=9)
        # a fresh session on the mutated graph warm-starts from the
        # repaired entry: zero sampling for the same query
        new_graph = graph.apply_delta(delta)
        with ComICSession(
            new_graph, GAPS, config=cfg, store=PoolStore(tmp_path)
        ) as sess2:
            sess2.run(QUERY)
            assert sess2.stats.rr_sets_sampled < 1000
            assert sess2.stats.store_hits == 1

    def test_lineage_recorded_in_manifest(self, graph, tmp_path):
        import json

        delta = small_delta(graph)
        with ComICSession(
            graph, GAPS, config=tracked_config(), store=PoolStore(tmp_path)
        ) as sess:
            sess.run(QUERY)
            sess.apply_delta(delta, rng=10)
        lineages = []
        for manifest_path in tmp_path.rglob("manifest.json"):
            data = json.loads(manifest_path.read_text())
            lineage = data.get("provenance", {}).get("lineage")
            if lineage:
                lineages.append(lineage)
        assert lineages, "repaired entry must persist its delta lineage"
        (lineage,) = lineages
        assert lineage[-1]["old_fingerprint"] == graph.fingerprint()
        assert lineage[-1]["fingerprint"] == graph.apply_delta(
            delta
        ).fingerprint()
        assert lineage[-1]["resampled"] >= 0
