"""Injected faults at the pipeline sites leave forensic debug-DB rows."""

import time

import pytest

from repro.faults import FaultPlan, FaultSpec, InjectedFault, fault_scope
from repro.pipeline import DEBUG_DB_FILE, PipelineDebugDB, run_pipeline

from .conftest import make_config


def run(graph, log, episodes, workdir):
    return run_pipeline(
        graph, log, make_config(), episodes=episodes, workdir=workdir
    )


class TestErrorKind:
    def test_fit_edges_error_fails_run(self, graph, log, episodes, tmp_path):
        plan = FaultPlan([FaultSpec("pipeline.fit_edges", "error", at=0)])
        with fault_scope(plan):
            with pytest.raises(InjectedFault):
                run(graph, log, episodes, tmp_path)
        assert plan.fired == [
            {"site": "pipeline.fit_edges", "kind": "error", "index": 0}
        ]
        db = PipelineDebugDB(tmp_path / DEBUG_DB_FILE)
        row = db.runs()[0]
        assert row["status"] == "failed"
        assert "fit_edges" in row["error"] and "InjectedFault" in row["error"]
        stages = db.stages(row["run_id"])
        assert [(s["stage"], s["status"]) for s in stages] == [
            ("fit_edges", "failed")
        ]
        db.close()

    def test_fit_gap_error_preserves_stage_one(
        self, graph, log, episodes, tmp_path
    ):
        plan = FaultPlan([FaultSpec("pipeline.fit_gap", "error", at=0)])
        with fault_scope(plan):
            with pytest.raises(InjectedFault):
                run(graph, log, episodes, tmp_path)
        db = PipelineDebugDB(tmp_path / DEBUG_DB_FILE)
        row = db.runs()[0]
        assert row["status"] == "failed" and "fit_gap" in row["error"]
        statuses = {s["stage"]: s["status"] for s in db.stages(row["run_id"])}
        assert statuses == {"fit_edges": "ran", "fit_gap": "failed"}
        db.close()

    def test_recovery_after_fault_uses_cache(
        self, graph, log, episodes, tmp_path
    ):
        """Stage 1 survives the stage-2 fault; the retry re-uses its cache."""
        plan = FaultPlan([FaultSpec("pipeline.fit_gap", "error", at=0)])
        with fault_scope(plan):
            with pytest.raises(InjectedFault):
                run(graph, log, episodes, tmp_path)
        result = run(graph, log, episodes, tmp_path)
        statuses = {s.stage: s.status for s in result.stages}
        assert statuses["fit_edges"] == "cached"
        assert statuses["fit_gap"] == "ran"


class TestSlowKind:
    def test_slow_delays_but_succeeds(self, graph, log, episodes, tmp_path):
        delay = 0.2
        plan = FaultPlan(
            [FaultSpec("pipeline.fit_edges", "slow", at=0, delay_s=delay)]
        )
        started = time.perf_counter()
        with fault_scope(plan):
            result = run(graph, log, episodes, tmp_path)
        elapsed = time.perf_counter() - started
        assert plan.fired[0]["kind"] == "slow"
        assert elapsed >= delay
        assert all(s.status in ("ran", "cached") for s in result.stages)
        by_stage = {s.stage: s for s in result.stages}
        assert by_stage["fit_edges"].wall_s >= delay
