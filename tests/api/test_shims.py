"""Deprecation shims: old entry points warn and delegate to the session."""

import pytest

from repro.algorithms import (
    greedy_blocking,
    greedy_multi_item_selfinfmax,
    round_robin_multi_item,
    solve_compinfmax,
    solve_selfinfmax,
)
from repro.algorithms.compinfmax import CompInfMaxResult
from repro.algorithms.selfinfmax import SelfInfMaxResult
from repro.api import (
    BlockingQuery,
    ComICSession,
    MultiItemQuery,
)
from repro.graph import power_law_digraph, weighted_cascade_probabilities
from repro.models import GAP, MultiItemGaps
from repro.rrset import TIMOptions


@pytest.fixture(scope="module")
def graph():
    return weighted_cascade_probabilities(power_law_digraph(120, rng=3))


FAST = TIMOptions(theta_override=300)


class TestDeprecationWarnings:
    def test_solve_selfinfmax_warns_and_returns_old_type(self, graph):
        gaps = GAP(0.3, 0.8, 0.5, 0.5)
        with pytest.warns(DeprecationWarning, match="solve_selfinfmax"):
            result = solve_selfinfmax(
                graph, gaps, [0], 2, options=FAST, rng=0
            )
        assert isinstance(result, SelfInfMaxResult)
        assert result.method == "submodular"
        assert len(result.seeds) == 2

    def test_solve_compinfmax_warns_and_returns_old_type(self, graph):
        gaps = GAP(0.2, 0.9, 0.5, 1.0)
        with pytest.warns(DeprecationWarning, match="solve_compinfmax"):
            result = solve_compinfmax(
                graph, gaps, [0, 1], 2, options=FAST, rng=1
            )
        assert isinstance(result, CompInfMaxResult)
        assert len(result.seeds) == 2

    def test_greedy_blocking_warns(self, graph):
        gaps = GAP(0.8, 0.1, 0.8, 0.1)
        with pytest.warns(DeprecationWarning, match="greedy_blocking"):
            seeds = greedy_blocking(
                graph, gaps, [0], 2, runs=20, rng=2,
                candidates=list(range(10)),
            )
        assert len(seeds) == 2

    def test_multi_item_shims_warn(self, graph):
        gaps = MultiItemGaps.uniform(2, 0.5)
        with pytest.warns(DeprecationWarning, match="greedy_multi_item"):
            seeds = greedy_multi_item_selfinfmax(
                graph, gaps, 0, [[], []], 1,
                runs=10, rng=3, candidates=list(range(6)),
            )
        assert len(seeds) == 1
        with pytest.warns(DeprecationWarning, match="round_robin_multi_item"):
            sets = round_robin_multi_item(
                graph, gaps, 2, runs=10, rng=4, candidates=list(range(6))
            )
        assert sum(len(s) for s in sets) == 2


class TestLegacyExceptionContract:
    """Shims preserve the v1.0 exception types for invalid arguments."""

    def test_negative_k_raises_seed_set_error(self, graph):
        from repro.errors import SeedSetError

        gaps = GAP(0.3, 0.8, 0.5, 0.5)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SeedSetError):
                solve_selfinfmax(graph, gaps, [0], -1, options=FAST)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SeedSetError):
                solve_compinfmax(
                    graph, GAP(0.2, 0.9, 0.5, 1.0), [0], -1, options=FAST
                )

    def test_unknown_engine_raises_value_error(self, graph):
        gaps = GAP(0.3, 0.8, 0.5, 0.5)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="unknown engine"):
                solve_selfinfmax(
                    graph, gaps, [0], 1, options=FAST, engine="celf"
                )


class TestShimEquivalence:
    """MC workloads: shim and session API are bit-identical at equal rng."""

    def test_blocking_shim_matches_session(self, graph):
        gaps = GAP(0.8, 0.1, 0.8, 0.1)
        candidates = tuple(range(12))
        with pytest.warns(DeprecationWarning):
            shim_seeds = greedy_blocking(
                graph, gaps, [0, 1], 2, runs=25, rng=42,
                candidates=candidates,
            )
        session = ComICSession(graph, gaps, rng=42)
        api_seeds = session.run(
            BlockingQuery(seeds_a=(0, 1), k=2, runs=25, candidates=candidates)
        ).seeds
        assert shim_seeds == api_seeds

    def test_round_robin_shim_matches_session(self, graph):
        gaps = MultiItemGaps.uniform(2, 0.6)
        candidates = tuple(range(8))
        with pytest.warns(DeprecationWarning):
            shim_sets = round_robin_multi_item(
                graph, gaps, 3, runs=10, rng=7, candidates=candidates
            )
        session = ComICSession(graph, multi_item_gaps=gaps, rng=7)
        api_sets = session.run(
            MultiItemQuery(budget=3, runs=10, candidates=candidates)
        ).seed_sets
        assert shim_sets == api_sets
