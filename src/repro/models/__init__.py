"""Diffusion models: Com-IC, possible worlds, classic IC/LT/Triggering.

The central object is :class:`~repro.models.gaps.GAP`, the Global Adoption
Probabilities of the paper (§3), and :func:`~repro.models.comic.simulate`,
the Com-IC diffusion engine.  The engine draws every random decision through
a :class:`~repro.models.sources.RandomnessSource`, which yields three views
of the same dynamics:

* :class:`~repro.models.sources.CoinSource` — the stochastic Com-IC process
  of Fig. 2 (fresh coins at decision time);
* :class:`~repro.models.sources.WorldSource` — the equivalent possible-world
  model of §5.1 (pre-drawn thresholds ``alpha``, permutations ``pi`` and
  coins ``tau``), proving Lemma 1 *by construction*;
* :class:`~repro.models.sources.ReplaySource` — a deterministic decision
  tape, used by :mod:`repro.models.exact` to enumerate the full decision
  tree and compute exact adoption probabilities on small graphs.
"""

from repro.models.comic import DiffusionOutcome, simulate
from repro.models.comlt import (
    estimate_boost_comlt,
    estimate_spread_comlt,
    greedy_comlt_compinfmax,
    greedy_comlt_selfinfmax,
    simulate_comlt,
)
from repro.models.equivalence_classes import (
    enumerate_equivalence_classes,
    exact_spread_via_equivalence_classes,
    threshold_ranges,
)
from repro.models.exact import exact_adoption_probabilities, exact_spread
from repro.models.fast_spread import fast_estimate_spread_one_way
from repro.models.gaps import GAP, Relationship
from repro.models.ic import simulate_ic
from repro.models.lt import normalize_lt_weights, simulate_lt
from repro.models.multi_item import (
    MultiItemGaps,
    estimate_multi_item_spread,
    simulate_multi_item,
)
from repro.models.possible_world import (
    FrozenWorldSource,
    PossibleWorld,
    sample_possible_world,
)
from repro.models.product_edges import ProductDependentSource, simulate_product_dependent
from repro.models.sources import CoinSource, RandomnessSource, ReplaySource, WorldSource
from repro.models.spread import (
    SpreadEstimate,
    estimate_boost,
    estimate_spread,
    estimate_spread_both,
)
from repro.models.states import ItemState, UNREACHABLE_JOINT_STATES
from repro.models.triggering import simulate_triggering

__all__ = [
    "GAP",
    "Relationship",
    "ItemState",
    "UNREACHABLE_JOINT_STATES",
    "simulate",
    "DiffusionOutcome",
    "PossibleWorld",
    "sample_possible_world",
    "RandomnessSource",
    "CoinSource",
    "WorldSource",
    "ReplaySource",
    "simulate_ic",
    "simulate_lt",
    "normalize_lt_weights",
    "simulate_comlt",
    "estimate_spread_comlt",
    "estimate_boost_comlt",
    "greedy_comlt_selfinfmax",
    "greedy_comlt_compinfmax",
    "simulate_triggering",
    "estimate_spread",
    "estimate_spread_both",
    "estimate_boost",
    "fast_estimate_spread_one_way",
    "SpreadEstimate",
    "exact_adoption_probabilities",
    "exact_spread",
    "exact_spread_via_equivalence_classes",
    "enumerate_equivalence_classes",
    "threshold_ranges",
    "FrozenWorldSource",
    "simulate_product_dependent",
    "ProductDependentSource",
    "MultiItemGaps",
    "simulate_multi_item",
    "estimate_multi_item_spread",
]
