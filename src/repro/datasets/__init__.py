"""Synthetic stand-ins for the paper's four evaluation networks (Table 1).

The original Flixster / Douban-Book / Douban-Movie / Last.fm crawls are
proprietary; :func:`load_dataset` builds scaled Chung-Lu-style power-law
digraphs matched to each dataset's average out-degree (see DESIGN.md §2 for
why this preserves the behaviours under study).  Influence probabilities
follow the weighted-cascade scheme by default.

:mod:`repro.datasets.snap` complements the stand-ins with a loader for
real SNAP-style edge lists (and a vectorised million-node synthesizer
for the scale benchmarks).
"""

from repro.datasets.snap import (
    SNAP_WEIGHTINGS,
    load_snap_graph,
    read_snap_edges,
    synthesize_power_law_edges,
    write_snap_edge_list,
)
from repro.datasets.synthetic import (
    DATASET_NAMES,
    DatasetSpec,
    PAPER_DATASETS,
    load_dataset,
)

__all__ = [
    "DatasetSpec",
    "PAPER_DATASETS",
    "DATASET_NAMES",
    "load_dataset",
    "SNAP_WEIGHTINGS",
    "load_snap_graph",
    "read_snap_edges",
    "synthesize_power_law_edges",
    "write_snap_edge_list",
]
