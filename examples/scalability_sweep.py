"""Scalability sweep (paper Figure 7b): runtime vs graph size.

Builds power-law random graphs of growing size (exponent 2.16, average
degree ~5 — the paper's §7.3 workload) and times GeneralTIM seed selection
with RR-SIM+ and RR-CIM at a fixed RR-set budget.  The paper's claim is
near-linear growth; the printed ratio column makes that visible.

Run:  python examples/scalability_sweep.py  [--sizes 1000,2000,4000]
"""

import argparse

from repro.algorithms import high_degree_seeds
from repro.experiments import render_series, timed
from repro.graph import power_law_digraph, weighted_cascade_probabilities
from repro.models import GAP
from repro.rrset import (
    RRCimGenerator,
    RRSimPlusGenerator,
    TIMOptions,
    general_tim,
)

SIM_GAPS = GAP(0.3, 0.8, 0.5, 0.5)
CIM_GAPS = GAP(0.1, 0.9, 0.5, 1.0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", default="1000,2000,4000",
        help="comma-separated node counts",
    )
    parser.add_argument("--theta", type=int, default=2000)
    parser.add_argument("--k", type=int, default=5)
    args = parser.parse_args()
    sizes = [int(s) for s in args.sizes.split(",")]
    options = TIMOptions(theta_override=args.theta)

    sim_times: list[float] = []
    cim_times: list[float] = []
    print(f"{'nodes':>8s} {'edges':>8s} {'RR-SIM+ (s)':>12s} {'RR-CIM (s)':>12s} "
          f"{'s per 1k nodes':>15s}")
    for n in sizes:
        graph = weighted_cascade_probabilities(
            power_law_digraph(n, exponent=2.16, average_degree=5.0, rng=n)
        )
        opposite = high_degree_seeds(graph, 20)
        _, t_sim = timed(lambda: general_tim(
            RRSimPlusGenerator(graph, SIM_GAPS, opposite), args.k,
            options=options, rng=1,
        ))
        _, t_cim = timed(lambda: general_tim(
            RRCimGenerator(graph, CIM_GAPS, opposite), args.k,
            options=options, rng=2,
        ))
        sim_times.append(t_sim)
        cim_times.append(t_cim)
        print(f"{n:8d} {graph.num_edges:8d} {t_sim:12.2f} {t_cim:12.2f} "
              f"{1000 * (t_sim + t_cim) / n:15.3f}")

    # The Fig.-7b shape at a glance: both curves close to straight lines.
    print()
    print(render_series(
        sizes, {"RR-SIM+": sim_times, "RR-CIM": cim_times},
        title="seed-selection time vs graph size (Fig. 7b shape)",
        x_label="nodes",
    ))


if __name__ == "__main__":
    main()
