"""RR-sets for the classic IC model (Borgs et al. [2], Tang et al. [24]).

In an IC possible world (live-edge graph), the singleton ``{u}`` activates
``v`` iff ``u`` can reach ``v`` via live edges; the RR-set of ``v`` is
therefore the set of nodes that reach ``v``, found by a reverse BFS that
flips each in-edge's coin lazily on first touch.  This generator powers the
VanillaIC baseline of §7 (TIM under plain IC, ignoring the NLA).

Batched fast path
-----------------

:meth:`RRICGenerator.generate_batch` runs the same reverse search for a
whole chunk of roots simultaneously: one level-synchronous sweep where
each level gathers the in-edges of *every* chunk member's frontier in one
CSR fan-out and flips all their coins in one bulk draw.  Each in-edge of a
member is examined at most once (its head node is dequeued at most once),
so fresh per-examination coins realise exactly the lazily-memoised
per-world coins of the oracle path — the output distribution is identical,
which ``tests/rrset/test_batch_equivalence.py`` checks against
:meth:`generate` both on fixed worlds and in aggregate.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.graph.digraph import DiGraph
from repro.models.possible_world import PossibleWorld
from repro.models.sources import WorldSource
from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator
from repro.rrset.pool import RRSetPool, expand_csr, flatten_members
from repro.rrset.sweep import make_flags


class RRICGenerator(RRSetGenerator):
    """Random RR-set sampler for single-item IC."""

    # Every coin this regime flips is on an in-edge of a node that joins
    # the RR-set, so delta repair needs only the root column.
    touch_mode = "implicit"

    def generate(
        self, *, rng: SeedLike = None, root: Optional[int] = None, world=None
    ) -> np.ndarray:
        gen = make_rng(rng)
        if root is None:
            root = int(gen.integers(0, self._graph.num_nodes))
        if world is None:
            world = WorldSource(gen)
        graph = self._graph
        visited = {root}
        queue: deque[int] = deque([root])
        while queue:
            u = queue.popleft()
            sources, probs, eids = graph.in_edges(u)
            for idx in range(sources.size):
                w = int(sources[idx])
                if w in visited:
                    continue
                if world.edge_live(int(eids[idx]), float(probs[idx])):
                    visited.add(w)
                    queue.append(w)
        return np.fromiter(visited, dtype=np.int64, count=len(visited))

    def generate_batch(
        self,
        count: int,
        *,
        rng: SeedLike = None,
        roots: Optional[np.ndarray] = None,
        out: Optional[RRSetPool] = None,
        world: Optional[PossibleWorld] = None,
    ) -> RRSetPool:
        """Vectorized batch sampling (see module docstring).

        ``world`` pins one eagerly-sampled possible world shared by every
        set in the batch (fixed-world equivalence tests); by default each
        set draws its own independent edge coins.
        """
        gen = make_rng(rng)
        graph = self._graph
        n = graph.num_nodes
        pool = out if out is not None else RRSetPool(n)
        if roots is None:
            roots = self.random_roots(count, rng=gen)
        else:
            roots = np.asarray(roots, dtype=np.int64)
        if roots.size == 0:
            return pool
        in_indptr, in_src, in_prob, in_eid = graph.csr_in()
        # The sweep engine budgets per-chunk state (one bool per
        # (member, node) here) and picks dense vs sparse keying by node
        # count; larger chunks amortise the per-level numpy overhead.
        backend = self.sweep.resolve_backend(n)
        chunk = self.sweep.chunk_size(
            n, backend, state_bytes_per_node=1, max_members=4096
        )
        for start in range(0, roots.size, chunk):
            chunk_roots = roots[start : start + chunk]
            b = chunk_roots.size
            ids = np.arange(b, dtype=np.int64)
            # Flat (set, node) -> set * n + node keys index a 1D visited
            # state: 1D gathers/scatters are markedly faster than 2D.
            visited = make_flags(b, n, backend)
            visited.mark(ids * n + chunk_roots)
            member_ids = [ids]
            member_nodes = [chunk_roots]
            frontier_set, frontier_node = ids, chunk_roots
            while frontier_node.size:
                reps, flat = expand_csr(in_indptr, frontier_node)
                if flat.size == 0:
                    break
                if world is None:
                    live = gen.random(flat.size) < in_prob[flat]
                else:
                    live = world.live[in_eid[flat]]
                # A node may be reached through several live edges in one
                # level; mark_new keeps one copy per fresh (set, node).
                key = visited.mark_new(
                    frontier_set[reps[live]] * n + in_src[flat[live]]
                )
                if key.size == 0:
                    break
                frontier_set, frontier_node = np.divmod(key, n)
                member_ids.append(frontier_set)
                member_nodes.append(frontier_node)
            nodes, lengths = flatten_members(member_nodes, member_ids, b)
            pool.append_flat(nodes, lengths, roots=chunk_roots)
        return pool
