"""RR-SIM+: scope-limited forward labeling (paper Algorithm 3, §6.2.2).

RR-SIM spends ``EPT_F`` edge tests on forward labeling from the B-seeds even
when none of that region can reach the root.  RR-SIM+ first runs an
*unconditional* backward BFS from the root over live edges, collecting the
set ``T1`` of nodes that could possibly matter; only if ``T1`` contains
B-seeds does it run the (residual) forward labeling, starting from
``T1 ∩ S_B`` alone.  A second backward BFS — identical to RR-SIM's
Phase III and confined to ``T1`` by construction (it expands along exactly
the live in-edges the first pass already certified) — emits the RR-set.

Lemma 7 of the paper proves the B-adoption status of every node the second
pass can see agrees with RR-SIM's, hence the two generators sample the same
RR-set distribution; a statistical test asserts this.

Batched fast path
-----------------

:meth:`RRSimPlusGenerator.generate_batch` keeps Algorithm 3's structure at
chunk scale: one level-synchronous *unconditional* reverse sweep from all
chunk roots (recording every edge coin it flips into a
:class:`~repro.rrset.pool.ChunkCoinMemo`), then — only for the chunk
members whose reachable set actually touched a B-seed — a residual
Phase-II forward sweep seeded from exactly the touched (member, seed)
pairs, and finally RR-SIM's Phase-III backward sweep.  Phases II and III
replay the earlier sweeps' coins through the shared memo (the batched
counterpart of the oracle's memoised ``WorldSource``), so the output
distribution matches :meth:`generate` exactly — and, by Lemma 7,
RR-SIM's.  Chunks adapt to the observed coin-record size as in RR-SIM.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

import numpy as np

from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.models.possible_world import PossibleWorld
from repro.models.sources import WorldSource
from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator
from repro.rrset.pool import (
    ChunkCoinMemo,
    RRSetPool,
    expand_csr,
    flatten_members,
    touches_from_keys,
    unique_keys,
)
from repro.rrset.rr_sim import (
    _B_ADOPTED,
    _B_FAIL,
    _B_PASS,
    _COIN_BUDGET,
    backward_search_a,
    check_rr_sim_regime,
    forward_label_b_adopted,
)
from repro.rrset.sweep import make_flags, make_values


class RRSimPlusGenerator(RRSetGenerator):
    """Random RR-set sampler for SelfInfMax (Algorithm 3)."""

    # Every liveness coin flows through the chunk memo, whose key record
    # is exactly the per-member edge-touch signature repair needs.
    touch_mode = "recorded"

    def __init__(self, graph: DiGraph, gaps: GAP, seeds_b: Iterable[int]) -> None:
        super().__init__(graph)
        check_rr_sim_regime(gaps)
        self._gaps = gaps
        self._seeds_b = [int(s) for s in seeds_b]
        self._seeds_b_set = set(self._seeds_b)

    @property
    def gaps(self) -> GAP:
        """The GAP configuration (one-way complementarity)."""
        return self._gaps

    @property
    def seeds_b(self) -> list[int]:
        """The fixed B-seed set."""
        return list(self._seeds_b)

    def _first_backward_bfs(
        self, world: WorldSource, root: int
    ) -> set[int]:
        """Unconditional reverse reachability from ``root`` over live edges."""
        graph = self._graph
        visited = {root}
        queue: deque[int] = deque([root])
        while queue:
            u = queue.popleft()
            sources, probs, eids = graph.in_edges(u)
            for idx in range(sources.size):
                w = int(sources[idx])
                if w in visited:
                    continue
                if world.edge_live(int(eids[idx]), float(probs[idx])):
                    visited.add(w)
                    queue.append(w)
        return visited

    def generate(
        self, *, rng: SeedLike = None, root: Optional[int] = None, world=None
    ) -> np.ndarray:
        """``world`` injects a fixed possible world (tests/ablations)."""
        gen = make_rng(rng)
        if root is None:
            root = int(gen.integers(0, self._graph.num_nodes))
        if world is None:
            world = WorldSource(gen)
        t1 = self._first_backward_bfs(world, root)
        touched_seeds = t1 & self._seeds_b_set
        if touched_seeds:
            # Residual forward labeling from the in-scope B-seeds only; the
            # world source memoises, so re-tested edges stay consistent.
            b_adopted = forward_label_b_adopted(
                self._graph, world, self._gaps.q_b, sorted(touched_seeds)
            )
        else:
            b_adopted = set()
        return backward_search_a(self._graph, world, self._gaps, root, b_adopted)

    # ------------------------------------------------------------------
    # Batched fast path (see module docstring)
    # ------------------------------------------------------------------
    def _phase2_residual(
        self,
        init_keys: np.ndarray,
        b_state,
        coins: ChunkCoinMemo,
        gen: np.random.Generator,
        world: Optional[PossibleWorld],
    ) -> None:
        """Forward B-labeling from the in-scope (member, seed) pairs only.

        The RR-SIM Phase-II sweep, except that edge coins go through the
        shared memo: sweep 1 already flipped the coins inside each
        member's reachable set, and re-testing them here must replay those
        outcomes exactly as the oracle's memoised source does.
        """
        graph = self._graph
        n, m = graph.num_nodes, graph.num_edges
        q_b = self._gaps.q_b
        out_indptr, out_dst, out_prob, out_eid = graph.csr_out()
        frontier = init_keys
        while frontier.size:
            fmember, fnode = np.divmod(frontier, n)
            reps, flat = expand_csr(out_indptr, fnode)
            if flat.size == 0:
                break
            if world is None:
                live = coins.lookup_or_draw(
                    fmember[reps] * m + out_eid[flat], out_prob[flat], gen
                )
            else:
                live = world.live[out_eid[flat]]
            key = fmember[reps[live]] * n + out_dst[flat[live]]
            if key.size == 0:
                break
            key = unique_keys(key)
            st = b_state.get(key)
            idle = (st & _B_ADOPTED) == 0
            key, st = key[idle], st[idle]
            if key.size == 0:
                break
            if world is None:
                unknown = (st & (_B_PASS | _B_FAIL)) == 0
                if unknown.any():
                    passes = gen.random(int(unknown.sum())) < q_b
                    st[unknown] |= np.where(passes, _B_PASS, _B_FAIL)
                adopt = (st & _B_PASS) != 0
                b_state.put(key, st | np.where(adopt, _B_ADOPTED, 0))
            else:
                adopt = world.alpha_b[key % n] < q_b
                b_state.put(key[adopt], _B_ADOPTED)
            frontier = key[adopt]

    def generate_batch(
        self,
        count: int,
        *,
        rng: SeedLike = None,
        roots: Optional[np.ndarray] = None,
        out: Optional[RRSetPool] = None,
        world: Optional[PossibleWorld] = None,
    ) -> RRSetPool:
        """Vectorized batch sampling (see module docstring).

        ``world`` pins one eagerly-sampled possible world shared by every
        set in the batch (fixed-world equivalence tests); by default each
        set samples its own independent world lazily through the chunk's
        coin memo and B-state bit flags.
        """
        gen = make_rng(rng)
        graph = self._graph
        n, m = graph.num_nodes, graph.num_edges
        gaps = self._gaps
        pool = out if out is not None else RRSetPool(n)
        if roots is None:
            roots = self.random_roots(count, rng=gen)
        else:
            roots = np.asarray(roots, dtype=np.int64)
        if roots.size == 0:
            return pool
        in_indptr, in_src, in_prob, in_eid = graph.csr_in()
        seeds = np.unique(np.asarray(self._seeds_b, dtype=np.int64))
        # Three (member, node) states live per chunk dense: two bool
        # visited maps plus the int8 B-state.
        backend = self.sweep.resolve_backend(n)
        max_chunk = self.sweep.chunk_size(
            n, backend, state_bytes_per_node=3, max_members=8192
        )
        chunk = min(max_chunk, 256)
        start = 0
        while start < roots.size:
            chunk_roots = roots[start : start + chunk]
            b = chunk_roots.size
            start += b
            coins = ChunkCoinMemo()
            ids = np.arange(b, dtype=np.int64)
            root_keys = ids * n + chunk_roots
            # Sweep 1: unconditional reverse reachability from each root
            # (the oracle's T1), recording every liveness coin it flips —
            # each target node is dequeued at most once, so each in-edge
            # is a first flip.
            visited = make_flags(b, n, backend)
            visited.mark(root_keys)
            frontier = root_keys
            while frontier.size:
                fmember, fnode = np.divmod(frontier, n)
                reps, flat = expand_csr(in_indptr, fnode)
                if flat.size == 0:
                    break
                if world is None:
                    keys = fmember[reps] * m + in_eid[flat]
                    live = gen.random(keys.size) < in_prob[flat]
                    coins.record(keys, live)
                else:
                    live = world.live[in_eid[flat]]
                tkeys = visited.mark_new(
                    fmember[reps[live]] * n + in_src[flat[live]]
                )
                if tkeys.size == 0:
                    break
                frontier = tkeys
            # Residual forward labeling, only where T1 saw a B-seed (the
            # point of Algorithm 3: skip EPT_F when B cannot matter).
            b_state = make_values(b, n, np.int8, backend)
            if seeds.size:
                seed_keys = ids[:, None] * n + seeds[None, :]
                init = seed_keys[visited.get(seed_keys)]
                if init.size:
                    b_state.put(init, _B_ADOPTED)
                    self._phase2_residual(init, b_state, coins, gen, world)
            # Sweep 2: RR-SIM's Phase III; confined to T1 by construction
            # (it expands along exactly the live in-edges sweep 1 already
            # certified, replayed through the memo).
            visited2 = make_flags(b, n, backend)
            visited2.mark(root_keys)
            member_ids = [ids]
            member_nodes = [chunk_roots]
            fset, fnode = ids, chunk_roots
            while fnode.size:
                b_adopted = (b_state.get(fset * n + fnode) & _B_ADOPTED) != 0
                threshold = np.where(b_adopted, gaps.q_a_given_b, gaps.q_a)
                if world is None:
                    # Each (member, node) is dequeued at most once, so a
                    # fresh draw realises the memoised alpha_A exactly.
                    grow = gen.random(fnode.size) < threshold
                else:
                    grow = world.alpha_a[fnode] < threshold
                gset, gnode = fset[grow], fnode[grow]
                if gnode.size == 0:
                    break
                reps, flat = expand_csr(in_indptr, gnode)
                if flat.size == 0:
                    break
                if world is None:
                    live = coins.lookup_or_draw(
                        gset[reps] * m + in_eid[flat], in_prob[flat], gen
                    )
                else:
                    live = world.live[in_eid[flat]]
                key = visited2.mark_new(
                    gset[reps[live]] * n + in_src[flat[live]]
                )
                if key.size == 0:
                    break
                fset, fnode = np.divmod(key, n)
                member_ids.append(fset)
                member_nodes.append(fnode)
            nodes, lengths = flatten_members(member_nodes, member_ids, b)
            touch_edges = touch_lengths = None
            if pool.track_touches and world is None:
                touch_edges, touch_lengths = touches_from_keys(
                    coins.touched_keys(), m, b
                )
            pool.append_flat(
                nodes,
                lengths,
                roots=chunk_roots,
                touch_edges=touch_edges,
                touch_lengths=touch_lengths,
            )
            coins_per_member = max(coins.size / b, 1.0)
            chunk = int(np.clip(_COIN_BUDGET / coins_per_member, 1, max_chunk))
        return pool
