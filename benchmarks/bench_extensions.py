"""Benches for the extension subsystems: Com-LT and EM edge learning.

* Com-LT — the paper positions Narayanam & Nanavati [19] (perfect
  complementarity under LT) as a special case of the comparative design;
  the bench runs that regime against a general Q+ setting on the same
  graph and reports both spreads.
* EM learning — recovery error of the Saito-style EM estimator as the
  episode budget grows (the shape to check: error falls with data).

Tables land in ``benchmarks/results/extension_*.md``.
"""

import numpy as np

from repro.datasets import load_dataset
from repro.experiments import TableResult
from repro.graph import power_law_digraph
from repro.learning import em_learn_probabilities, generate_ic_episodes
from repro.models import GAP, estimate_spread_comlt, normalize_lt_weights


def bench_extension_comlt(benchmark, bench_scale, save_table):
    graph = normalize_lt_weights(
        load_dataset("flixster", scale=bench_scale.scale, rng=3)
    )
    seeds = list(range(5))
    settings = {
        "perfect cross-sell [19]": GAP.perfect_cross_sell(q_b=0.9),
        "general Q+": GAP(q_a=0.4, q_a_given_b=0.9, q_b=0.9, q_b_given_a=0.9),
        "classic LT (A only)": GAP.classic_ic(),
    }

    def run():
        rows = []
        for name, gaps in settings.items():
            spread_a = estimate_spread_comlt(
                graph, gaps, seeds, seeds, runs=bench_scale.mc_runs, rng=13
            )
            spread_b = estimate_spread_comlt(
                graph, gaps, seeds, seeds,
                runs=bench_scale.mc_runs, rng=13, item="b",
            )
            rows.append({
                "setting": name,
                "sigma_A": round(spread_a.mean, 2),
                "sigma_B": round(spread_b.mean, 2),
                "stderr_A": round(spread_a.stderr, 2),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TableResult(
        title="Com-LT extension: perfect cross-sell vs general Q+",
        columns=["setting", "sigma_A", "sigma_B", "stderr_A"],
        rows=rows,
        notes="A- and B-seeds both at nodes 0-4; LT-normalised weights",
    )
    save_table(table, "extension_comlt")
    by_name = {r["setting"]: r for r in rows}
    # In perfect cross-sell A-adopters are a subset of B-adopters, so
    # sigma_A <= sigma_B (both estimated with the same MC precision).
    cross = by_name["perfect cross-sell [19]"]
    assert cross["sigma_A"] <= cross["sigma_B"] + 3 * cross["stderr_A"]


def bench_extension_em_recovery(benchmark, save_table):
    graph = power_law_digraph(
        200, exponent=2.16, average_degree=4.0, probability=0.3, rng=17
    )
    truth = graph.edge_probabilities

    def run():
        rows = []
        for episodes in (50, 200, 800):
            corpus = generate_ic_episodes(
                graph, episodes, seeds_per_episode=5, rng=19
            )
            result = em_learn_probabilities(graph, corpus)
            observed = result.observations > 0
            error = float(
                np.abs(result.probabilities[observed] - truth[observed]).mean()
            ) if observed.any() else float("nan")
            rows.append({
                "episodes": episodes,
                "observed_edges": int(observed.sum()),
                "mean_abs_error": round(error, 4),
                "iterations": result.iterations,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TableResult(
        title="EM edge-probability recovery vs episode budget",
        columns=["episodes", "observed_edges", "mean_abs_error", "iterations"],
        rows=rows,
        notes="uniform p=0.3 ground truth, 5 random seeds per episode",
    )
    save_table(table, "extension_em_recovery")
    errors = [r["mean_abs_error"] for r in rows]
    assert errors[-1] <= errors[0]  # more data, lower error


def bench_extension_gap_sensitivity(benchmark, bench_scale, save_table):
    """Theorem-10 sensitivity table on the bench datasets."""
    from repro.experiments import extension_gap_sensitivity

    result = benchmark.pedantic(
        lambda: extension_gap_sensitivity(bench_scale), rounds=1, iterations=1
    )
    save_table(result, "extension_gap_sensitivity")
    assert all(row["in_q_plus"] for row in result.rows)
