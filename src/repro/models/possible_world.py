"""Eagerly-sampled possible worlds (paper §5.1).

A :class:`PossibleWorld` materialises every random variable of the
equivalent possible-world model up front: per-edge liveness and tie-break
priorities, per-node thresholds ``alpha_A``/``alpha_B`` and dual-seed coins
``tau``.  :class:`FrozenWorldSource` adapts a world to the
:class:`~repro.models.sources.RandomnessSource` interface so that the same
engine runs the deterministic cascade.

Most algorithms prefer the lazy
:class:`~repro.models.sources.WorldSource` (only touched variables are
drawn); the eager form exists for theoretical tooling — equivalence-class
utilities, replayable counter-examples, and tests that poke specific world
variables (the appendix examples fix particular ``alpha`` ranges).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.models.sources import ITEM_A, ITEM_B, RandomnessSource
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class PossibleWorld:
    """All random variables of one possible world, drawn eagerly.

    ``live[e]`` is edge liveness, ``priority[e]`` the tie-break priority;
    ``alpha_a[v]``/``alpha_b[v]`` are the adoption thresholds and
    ``tau_a_first[v]`` the dual-seed coin of node ``v``.
    """

    live: np.ndarray
    priority: np.ndarray
    alpha_a: np.ndarray
    alpha_b: np.ndarray
    tau_a_first: np.ndarray

    def with_alpha(self, node: int, *, alpha_a: float | None = None,
                   alpha_b: float | None = None) -> "PossibleWorld":
        """Copy with one node's thresholds overridden (test fixtures)."""
        new_a, new_b = self.alpha_a, self.alpha_b
        if alpha_a is not None:
            new_a = self.alpha_a.copy()
            new_a[node] = alpha_a
        if alpha_b is not None:
            new_b = self.alpha_b.copy()
            new_b[node] = alpha_b
        return replace(self, alpha_a=new_a, alpha_b=new_b)

    def alpha_range_index(self, node: int, item: int, gaps: GAP) -> int:
        """Equivalence-class range of a node's threshold (§5.1).

        Returns 0, 1 or 2 for the three intervals delimited by the two
        relevant GAPs (sorted); two worlds in which every node falls in the
        same ranges (and shares priorities/taus ordering) behave identically.
        """
        if item == ITEM_A:
            alpha = float(self.alpha_a[node])
            cuts = sorted((gaps.q_a, gaps.q_a_given_b))
        else:
            alpha = float(self.alpha_b[node])
            cuts = sorted((gaps.q_b, gaps.q_b_given_a))
        if alpha < cuts[0]:
            return 0
        if alpha < cuts[1]:
            return 1
        return 2


def sample_possible_world(graph: DiGraph, *, rng: SeedLike = None) -> PossibleWorld:
    """Draw one possible world for ``graph`` (generative rules of §5.1)."""
    gen = make_rng(rng)
    m, n = graph.num_edges, graph.num_nodes
    return PossibleWorld(
        live=gen.random(m) < graph.edge_probabilities,
        priority=gen.random(m),
        alpha_a=gen.random(n),
        alpha_b=gen.random(n),
        tau_a_first=gen.random(n) < 0.5,
    )


class FrozenWorldSource(RandomnessSource):
    """Adapter: run the engine deterministically inside a fixed world."""

    def __init__(self, world: PossibleWorld) -> None:
        self._world = world

    @property
    def world(self) -> PossibleWorld:
        """The wrapped world."""
        return self._world

    def edge_live(self, edge_id: int, probability: float, item: int = ITEM_A) -> bool:
        return bool(self._world.live[edge_id])

    def adopt_on_inform(
        self, node: int, item: int, q_uncond: float, q_cond: float, other_adopted: bool
    ) -> bool:
        alpha = self._alpha(node, item)
        return alpha < (q_cond if other_adopted else q_uncond)

    def reconsider(self, node: int, item: int, q_uncond: float, q_cond: float) -> bool:
        return self._alpha(node, item) < q_cond

    def informer_order(self, node: int, informers: Sequence[tuple[int, int]]) -> list[int]:
        return sorted(
            range(len(informers)),
            key=lambda i: float(self._world.priority[informers[i][1]]),
        )

    def seed_a_first(self, node: int) -> bool:
        return bool(self._world.tau_a_first[node])

    def alpha(self, node: int, item: int) -> float:
        """The fixed threshold of ``node`` for ``item`` (same contract as
        :meth:`repro.models.sources.WorldSource.alpha`, used by RR-set
        generators when a frozen world is injected for testing)."""
        if item == ITEM_A:
            return float(self._world.alpha_a[node])
        return float(self._world.alpha_b[node])

    _alpha = alpha
