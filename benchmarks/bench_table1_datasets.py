"""Benchmark: Table 1 — dataset construction and statistics."""

from repro.datasets import load_dataset
from repro.experiments import table1_dataset_stats


def bench_table1_dataset_stats(benchmark, bench_scale, save_table):
    result = benchmark.pedantic(
        lambda: table1_dataset_stats(bench_scale), rounds=1, iterations=1
    )
    save_table(result, "table1_dataset_stats")
    assert len(result.rows) == len(bench_scale.datasets)


def bench_dataset_build(benchmark, bench_scale):
    """Micro-benchmark: building one scaled synthetic network."""
    graph = benchmark(
        lambda: load_dataset("flixster", scale=bench_scale.scale, rng=1)
    )
    assert graph.num_nodes > 0
