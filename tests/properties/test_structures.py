"""Property-based tests on core data structures and algorithm invariants."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given

from tests.properties._profiles import ci_settings

from repro.graph import DiGraph
from repro.models.sources import ITEM_A, ITEM_B, WorldSource
from repro.rng import derive_seed, make_rng, spawn_rngs
from repro.rrset.tim import greedy_max_coverage


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    if not pairs:
        return n, []
    count = draw(st.integers(min_value=0, max_value=min(len(pairs), 20)))
    chosen = draw(
        st.lists(st.sampled_from(pairs), min_size=count, max_size=count, unique=True)
    )
    probs = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=len(chosen), max_size=len(chosen),
        )
    )
    return n, [(u, v, p) for (u, v), p in zip(chosen, probs)]


class TestGraphInvariants:
    @ci_settings(60)
    @given(data=edge_lists())
    def test_degree_sums_equal_edge_count(self, data):
        n, edges = data
        graph = DiGraph.from_edges(n, edges)
        assert int(graph.out_degrees.sum()) == graph.num_edges
        assert int(graph.in_degrees.sum()) == graph.num_edges

    @ci_settings(60)
    @given(data=edge_lists())
    def test_out_and_in_views_agree(self, data):
        n, edges = data
        graph = DiGraph.from_edges(n, edges)
        rebuilt = sorted(
            (int(u), int(v))
            for v in range(n)
            for u in graph.in_neighbors(v)
        )
        original = sorted((u, v) for u, v, _p in edges)
        assert rebuilt == original

    @ci_settings(40)
    @given(data=edge_lists())
    def test_reverse_is_involution(self, data):
        n, edges = data
        graph = DiGraph.from_edges(n, edges)
        assert graph.reverse().reverse() == graph

    @ci_settings(40)
    @given(data=edge_lists())
    def test_edge_list_round_trip(self, data, tmp_path_factory):
        from repro.graph import load_edge_list, save_edge_list

        n, edges = data
        graph = DiGraph.from_edges(n, edges)
        path = tmp_path_factory.mktemp("io") / "g.txt"
        save_edge_list(graph, path)
        loaded = load_edge_list(path)
        assert loaded.num_nodes == graph.num_nodes
        assert np.allclose(loaded.edge_probabilities, graph.edge_probabilities)


class TestCoverageGuarantee:
    @ci_settings(40)
    @given(data=st.data())
    def test_greedy_within_1_minus_1_over_e_of_optimum(self, data):
        import itertools

        n = data.draw(st.integers(min_value=2, max_value=6))
        num_sets = data.draw(st.integers(min_value=1, max_value=8))
        rr_sets = [
            np.asarray(
                data.draw(
                    st.lists(
                        st.integers(0, n - 1), min_size=1, max_size=n, unique=True
                    )
                ),
                dtype=np.int64,
            )
            for _ in range(num_sets)
        ]
        k = data.draw(st.integers(min_value=1, max_value=n))
        _, covered, _ = greedy_max_coverage(rr_sets, n, k)
        best = 0
        for combo in itertools.combinations(range(n), min(k, n)):
            chosen = set(combo)
            best = max(
                best, sum(1 for rr in rr_sets if chosen & set(rr.tolist()))
            )
        assert covered >= (1 - 1 / np.e) * best - 1e-9


class TestWorldSourceInvariants:
    @ci_settings(30)
    @given(seed=st.integers(0, 2**31 - 1), node=st.integers(0, 100))
    def test_alpha_memoised_and_in_unit_interval(self, seed, node):
        source = WorldSource(seed)
        a1 = source.alpha(node, ITEM_A)
        b1 = source.alpha(node, ITEM_B)
        assert 0.0 <= a1 <= 1.0
        assert source.alpha(node, ITEM_A) == a1
        assert source.alpha(node, ITEM_B) == b1

    @ci_settings(30)
    @given(seed=st.integers(0, 2**31 - 1), q=st.floats(0.0, 1.0, allow_nan=False))
    def test_adoption_consistent_with_threshold(self, seed, q):
        source = WorldSource(seed)
        adopted = source.adopt_on_inform(0, ITEM_A, q, 0.0, other_adopted=False)
        assert adopted == (source.alpha(0, ITEM_A) < q)


class TestRngHelpers:
    @ci_settings(20)
    @given(seed=st.integers(0, 2**31 - 1), count=st.integers(0, 5))
    def test_spawned_streams_are_deterministic(self, seed, count):
        first = [g.random() for g in spawn_rngs(seed, count)]
        second = [g.random() for g in spawn_rngs(seed, count)]
        assert first == second

    @ci_settings(20)
    @given(seed=st.integers(0, 2**31 - 1), salt=st.integers(0, 100))
    def test_derive_seed_deterministic_and_salted(self, seed, salt):
        assert derive_seed(seed, salt) == derive_seed(seed, salt)
        assert derive_seed(seed, salt) != derive_seed(seed, salt + 1)

    def test_derive_seed_none_passthrough(self):
        assert derive_seed(None, 3) is None

    @ci_settings(20)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_make_rng_reproducible(self, seed):
        assert make_rng(seed).random() == make_rng(seed).random()
