"""Classic Linear Threshold model (Kempe et al. [15]).

Provided as part of the single-entity substrate the paper reviews (§2): the
general RR-set framework (§6.1) covers LT through the Triggering model, and
our tests exercise that claim.  Edge probabilities are interpreted as
influence *weights*; the model requires each node's incoming weights to sum
to at most 1 (see :func:`normalize_lt_weights`).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import GraphError, SeedSetError
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng


def normalize_lt_weights(graph: DiGraph) -> DiGraph:
    """Rescale incoming edge weights of every node to sum to exactly 1.

    Nodes with no in-edges are unaffected.  The result is a valid LT
    instance in which some in-neighbour set always suffices to activate.
    """
    totals = np.zeros(graph.num_nodes, dtype=np.float64)
    np.add.at(totals, graph.edge_targets, graph.edge_probabilities)
    prob = graph.edge_probabilities
    per_edge_total = totals[graph.edge_targets]
    # Divide weight by its node total directly (1/total can overflow to inf
    # for denormal weights); zero-total nodes keep zero weights.
    normalized = np.divide(
        prob, per_edge_total,
        out=prob.copy(), where=per_edge_total > 0,
    )
    # Absorb float round-up so downstream [0, 1] validation never trips.
    np.clip(normalized, 0.0, 1.0, out=normalized)
    return graph.with_probabilities(normalized)


def _check_lt_instance(graph: DiGraph) -> None:
    totals = np.zeros(graph.num_nodes, dtype=np.float64)
    np.add.at(totals, graph.edge_targets, graph.edge_probabilities)
    worst = float(totals.max()) if totals.size else 0.0
    if worst > 1.0 + 1e-9:
        raise GraphError(
            f"LT requires per-node incoming weights <= 1; found {worst:.4f} "
            "(use normalize_lt_weights)"
        )


def simulate_lt(
    graph: DiGraph,
    seeds: Iterable[int],
    *,
    rng: SeedLike = None,
) -> np.ndarray:
    """One LT cascade; returns the boolean activation mask.

    Each node draws a uniform threshold; it activates when the weight of its
    active in-neighbours reaches the threshold.
    """
    _check_lt_instance(graph)
    gen = make_rng(rng)
    n = graph.num_nodes
    thresholds = gen.random(n)
    # A threshold of exactly 0 would activate nodes with no influence.
    thresholds[thresholds == 0.0] = 1e-12
    accumulated = np.zeros(n, dtype=np.float64)
    active = np.zeros(n, dtype=bool)
    frontier: list[int] = []
    for s in seeds:
        v = int(s)
        if not 0 <= v < n:
            raise SeedSetError(f"seed {v} out of range [0, {n - 1}]")
        if not active[v]:
            active[v] = True
            frontier.append(v)
    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            targets, probs, _eids = graph.out_edges(u)
            for idx in range(targets.size):
                v = int(targets[idx])
                if active[v]:
                    continue
                accumulated[v] += float(probs[idx])
                if accumulated[v] >= thresholds[v]:
                    active[v] = True
                    next_frontier.append(v)
        frontier = next_frontier
    return active
