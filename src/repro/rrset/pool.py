"""Flat RR-set storage: the batched engine's CSR-of-sets container.

Storing each RR-set as its own tiny ``np.ndarray`` (the seed
implementation) makes every downstream pass — coverage counting, greedy
invalidation, intersection tests — a Python loop over thousands of small
objects.  :class:`RRSetPool` instead keeps *all* RR-sets of one sampling
run in two flat arrays::

    nodes  : int32, the concatenated member nodes of every set
    indptr : int64, set ``i`` occupies ``nodes[indptr[i]:indptr[i+1]]``

exactly a CSR matrix with implicit unit data — so whole-pool operations
become single numpy calls: :meth:`coverage_counts` is one ``np.bincount``,
:meth:`intersects` one gather + ``bincount``, and the pooled
:func:`~repro.rrset.tim.greedy_max_coverage` runs its invalidation with
``np.subtract.at`` over pool slices.

The pool is *appendable*: generators add sets one at a time
(:meth:`append`, the per-root oracle path) or as pre-packed chunks
(:meth:`append_flat`, the vectorized :meth:`~repro.rrset.base.
RRSetGenerator.generate_batch` fast paths), with amortised-doubling
growth, which is what lets IMM's "top up to theta" phase extend one pool
across sampling rounds instead of rebuilding lists.  Memory accounting is
exposed via :attr:`nbytes` (used) and :attr:`capacity_bytes` (allocated).

Because the layout is two flat columns, pools also *persist* and *merge*
trivially: :meth:`from_flat` adopts existing (possibly memory-mapped,
read-only) arrays without a copy — the zero-copy load path of
:class:`~repro.store.PoolStore` — and :meth:`merge` /
:meth:`extend_pool` concatenate whole pools in O(total size) by copying
node columns once and offset-shifting CSR pointers, which is how
:mod:`repro.parallel` folds per-worker shards back into one pool.

Member nodes are stored as ``int32`` (graphs here are far below the 2**31
node ceiling, and halving the bytes doubles effective memory bandwidth of
every sweep); :meth:`__getitem__` returns the raw ``int32`` view while
:meth:`to_list` widens to the ``int64`` arrays the legacy list API used.

Touch signatures (dynamic graphs)
---------------------------------

A pool built with ``track_touches=True`` carries two optional side
structures that make it *repairable* under a
:class:`~repro.graph.GraphDelta`:

* a per-set **root** column (``int32``; the node whose RR-set each entry
  is), needed to resample exactly the dropped members, and
* per-set **edge-touch signatures** (a second CSR pair ``touch_edges`` /
  ``touch_indptr`` of sorted edge ids): the set of edges whose liveness
  coin the generating sweep actually flipped.  An RR-set's sampled world
  depends only on those edges, so a member whose signature misses every
  changed edge is — by the coupling argument — an exact sample of the
  *new* graph's RR distribution and can be kept as-is.

Both columns are complete only while every append supplies them
(:attr:`roots_ok` / :attr:`touch_ok`); an append without (e.g. a parallel
shard merge, whose workers do not ship touch columns) permanently drops
the corresponding flag, and :func:`~repro.rrset.repair.repair_pool` then
falls back to full regeneration.  Implicit-touch regimes (RR-IC, RR-LT)
only need the root column: every edge they test is an in-edge of a member
node, so affectedness reduces to a membership test against the delta's
changed-target nodes and no signature bytes are stored.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

# Re-exported here for the batched sweeps; the canonical home is the graph
# layer, which forward cascades share.
from repro.graph.digraph import expand_csr  # noqa: F401

_INT32_MAX = np.iinfo(np.int32).max


class RRSetPool:
    """A growable flat pool of RR-sets over nodes ``0 .. num_nodes-1``."""

    __slots__ = (
        "_num_nodes",
        "_nodes",
        "_indptr",
        "_num_sets",
        "_used",
        "_set_ids_cache",
        "_frozen",
        "_track_touches",
        "_roots",
        "_roots_ok",
        "_touch_edges",
        "_touch_indptr",
        "_touch_used",
        "_touch_ok",
    )

    def __init__(
        self,
        num_nodes: int,
        *,
        node_capacity: int = 1024,
        set_capacity: int = 256,
        track_touches: bool = False,
    ) -> None:
        num_nodes = int(num_nodes)
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
        if num_nodes > _INT32_MAX:
            raise ValueError(
                f"num_nodes {num_nodes} exceeds the int32 node-id range"
            )
        self._num_nodes = num_nodes
        self._nodes = np.empty(max(int(node_capacity), 1), dtype=np.int32)
        self._indptr = np.zeros(max(int(set_capacity), 1) + 1, dtype=np.int64)
        self._num_sets = 0
        self._used = 0
        self._set_ids_cache: Optional[np.ndarray] = None
        self._frozen = False
        self._init_tracking(bool(track_touches))

    def _init_tracking(self, track: bool) -> None:
        self._track_touches = track
        self._touch_used = 0
        if track:
            self._roots: Optional[np.ndarray] = np.full(
                max(self._indptr.size - 1, 1), -1, dtype=np.int32
            )
            self._touch_edges: Optional[np.ndarray] = np.empty(
                self._nodes.size, dtype=np.int32
            )
            self._touch_indptr: Optional[np.ndarray] = np.zeros(
                self._indptr.size, dtype=np.int64
            )
            self._roots_ok = True
            self._touch_ok = True
        else:
            self._roots = None
            self._touch_edges = None
            self._touch_indptr = None
            self._roots_ok = False
            self._touch_ok = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_sets(cls, num_nodes: int, sets: Iterable[np.ndarray]) -> "RRSetPool":
        """Pack an iterable of per-set node arrays into one pool."""
        materialized = [np.asarray(s) for s in sets]
        total = sum(int(s.size) for s in materialized)
        pool = cls(
            num_nodes,
            node_capacity=max(total, 1),
            set_capacity=max(len(materialized), 1),
        )
        for rr_set in materialized:
            pool.append(rr_set)
        return pool

    @classmethod
    def from_flat(
        cls,
        num_nodes: int,
        nodes: np.ndarray,
        indptr: np.ndarray,
        *,
        validate: bool = True,
        roots: Optional[np.ndarray] = None,
        touch_edges: Optional[np.ndarray] = None,
        touch_indptr: Optional[np.ndarray] = None,
    ) -> "RRSetPool":
        """Adopt existing flat CSR arrays *without copying them*.

        This is the zero-copy load path of :class:`~repro.store.PoolStore`:
        ``nodes`` / ``indptr`` may be memory-mapped (even read-only) views
        of on-disk ``.npy`` columns.  The pool stays *appendable*: both
        arrays are adopted exactly full, so the first append reallocates
        into fresh writable memory (the normal amortised-doubling growth)
        and the mapped files are never written to.

        ``validate`` checks the CSR invariants (``indptr`` ascending from
        0, last offset == ``nodes.size``, members in range) — skip it
        only for arrays produced by this class.  ``indptr`` (and
        ``touch_indptr``) may be int64 or the uint32 diet column
        :class:`~repro.store.PoolStore` writes when every offset fits;
        reads work on the narrow column directly (numpy promotes), and
        the first append's amortised-doubling copy widens it to int64.

        ``roots`` (and the ``touch_edges`` / ``touch_indptr`` pair, which
        must come together) re-adopt previously persisted touch columns;
        supplying any of them marks the pool as touch-tracking with the
        corresponding completeness flag set.
        """
        nodes = np.asarray(nodes)
        indptr = np.asarray(indptr)
        if validate:
            if indptr.ndim != 1 or indptr.size < 1:
                raise ValueError("indptr must be a non-empty 1-D offset array")
            if nodes.ndim != 1:
                raise ValueError("nodes must be a 1-D member array")
            if indptr.dtype not in (np.int64, np.uint32) or (
                nodes.dtype != np.int32
            ):
                raise ValueError(
                    "expected int32 nodes and int64 (or uint32 diet) "
                    f"indptr, got {nodes.dtype} / {indptr.dtype}"
                )
            if int(indptr[0]) != 0 or int(indptr[-1]) != nodes.size:
                raise ValueError(
                    f"indptr must run from 0 to nodes.size ({nodes.size}); "
                    f"got [{int(indptr[0])}, {int(indptr[-1])}]"
                )
            if indptr.size > 1 and np.any(np.diff(indptr) < 0):
                raise ValueError("indptr offsets must be non-decreasing")
            if nodes.size and (
                int(nodes.min()) < 0 or int(nodes.max()) >= int(num_nodes)
            ):
                raise ValueError(
                    f"member nodes must lie in [0, {int(num_nodes) - 1}]"
                )
        pool = cls.__new__(cls)
        pool._num_nodes = int(num_nodes)
        pool._nodes = nodes
        pool._indptr = indptr
        pool._num_sets = int(indptr.size - 1)
        pool._used = int(indptr[-1])
        pool._set_ids_cache = None
        pool._frozen = False
        if roots is None and touch_edges is None:
            pool._init_tracking(False)
            return pool
        if (touch_edges is None) != (touch_indptr is None):
            raise ValueError(
                "touch_edges and touch_indptr must be supplied together"
            )
        count = pool._num_sets
        pool._track_touches = True
        if roots is not None:
            roots = np.asarray(roots, dtype=np.int32)
            if roots.shape != (count,):
                raise ValueError(
                    f"roots must have one entry per set ({count}), "
                    f"got shape {roots.shape}"
                )
            pool._roots = roots
            pool._roots_ok = True
        else:
            pool._roots = np.full(max(count, 1), -1, dtype=np.int32)
            pool._roots_ok = False
        if touch_edges is not None:
            touch_edges = np.asarray(touch_edges, dtype=np.int32)
            touch_indptr = np.asarray(touch_indptr)
            if touch_indptr.dtype not in (np.int64, np.uint32):
                # Adopt the uint32 diet column zero-copy; anything else
                # (lists, narrower ints) still coerces to int64.
                touch_indptr = touch_indptr.astype(np.int64)
            if touch_indptr.shape != (count + 1,) or (
                touch_indptr.size
                and (
                    int(touch_indptr[0]) != 0
                    or int(touch_indptr[-1]) != touch_edges.size
                )
            ):
                raise ValueError(
                    "touch_indptr must run from 0 to touch_edges.size with "
                    "one row per set"
                )
            pool._touch_edges = touch_edges
            pool._touch_indptr = touch_indptr
            pool._touch_used = int(touch_edges.size)
            pool._touch_ok = True
        else:
            pool._touch_edges = np.empty(0, dtype=np.int32)
            pool._touch_indptr = np.zeros(count + 1, dtype=np.int64)
            pool._touch_used = 0
            pool._touch_ok = False
        return pool

    @classmethod
    def merge(cls, pools: Sequence["RRSetPool"]) -> "RRSetPool":
        """Concatenate several pools into one new pool, O(total size).

        The multi-pool merge kernel of :mod:`repro.parallel`: per-worker
        shard pools are combined by copying each shard's flat node array
        once and offset-shifting its CSR pointers — no per-set Python
        work.  Set order is shard order, then within-shard order.  All
        pools must share one node universe.
        """
        pools = list(pools)
        if not pools:
            raise ValueError("merge needs at least one pool")
        num_nodes = pools[0].num_nodes
        for pool in pools[1:]:
            if pool.num_nodes != num_nodes:
                raise ValueError(
                    f"cannot merge pools over different node universes "
                    f"({pool.num_nodes} != {num_nodes})"
                )
        merged = cls(
            num_nodes,
            node_capacity=max(sum(p.total_nodes for p in pools), 1),
            set_capacity=max(sum(len(p) for p in pools), 1),
        )
        for pool in pools:
            merged.extend_pool(pool)
        return merged

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def _reserve_nodes(self, extra: int) -> None:
        need = self._used + extra
        if need <= self._nodes.size:
            return
        new_size = max(need, 2 * self._nodes.size)
        grown = np.empty(new_size, dtype=np.int32)
        grown[: self._used] = self._nodes[: self._used]
        self._nodes = grown

    def _reserve_sets(self, extra: int) -> None:
        need = self._num_sets + 1 + extra
        if need <= self._indptr.size:
            if self._track_touches and need > self._touch_indptr.size:
                self._grow_touch_rows(need)
            return
        new_size = max(need, 2 * self._indptr.size)
        grown = np.zeros(new_size, dtype=np.int64)
        grown[: self._num_sets + 1] = self._indptr[: self._num_sets + 1]
        self._indptr = grown
        if self._track_touches:
            self._grow_touch_rows(new_size)

    def _grow_touch_rows(self, size: int) -> None:
        if size > self._touch_indptr.size:
            grown = np.zeros(size, dtype=np.int64)
            grown[: self._num_sets + 1] = self._touch_indptr[
                : self._num_sets + 1
            ]
            self._touch_indptr = grown
        if size - 1 > self._roots.size:
            grown_r = np.full(size - 1, -1, dtype=np.int32)
            grown_r[: self._num_sets] = self._roots[: self._num_sets]
            self._roots = grown_r

    def _reserve_touch(self, extra: int) -> None:
        need = self._touch_used + extra
        if need <= self._touch_edges.size:
            return
        new_size = max(need, 2 * self._touch_edges.size, 1)
        grown = np.empty(new_size, dtype=np.int32)
        grown[: self._touch_used] = self._touch_edges[: self._touch_used]
        self._touch_edges = grown

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _check_writable(self) -> None:
        if self._frozen:
            raise ValueError(
                "pool is a read-only prefix view; append to the parent pool"
            )

    def _record_touches(
        self,
        count: int,
        roots: Optional[np.ndarray],
        touch_edges: Optional[np.ndarray],
        touch_lengths: Optional[np.ndarray],
    ) -> None:
        """Record per-set roots / touch rows for ``count`` just-appended sets.

        Called *after* the node columns advanced ``_num_sets``; missing
        information permanently drops the matching completeness flag.
        """
        first = self._num_sets - count
        if roots is not None:
            self._roots[first : self._num_sets] = roots
        else:
            self._roots[first : self._num_sets] = -1
            self._roots_ok = False
        if touch_edges is not None:
            touch_edges = np.asarray(touch_edges, dtype=np.int32)
            if touch_lengths is None:  # single-set append
                touch_lengths = np.asarray([touch_edges.size], dtype=np.int64)
            else:
                touch_lengths = np.asarray(touch_lengths, dtype=np.int64)
            total = int(touch_lengths.sum())
            if total != touch_edges.size or touch_lengths.size != count:
                raise ValueError(
                    f"touch rows do not match the appended sets: "
                    f"{touch_lengths.size} lengths summing to {total} for "
                    f"{count} sets / {touch_edges.size} edge ids"
                )
            self._reserve_touch(total)
            if total:
                self._touch_edges[
                    self._touch_used : self._touch_used + total
                ] = touch_edges
            self._touch_indptr[first + 1 : self._num_sets + 1] = (
                self._touch_used + np.cumsum(touch_lengths)
            )
            self._touch_used += total
        else:
            self._touch_indptr[first + 1 : self._num_sets + 1] = (
                self._touch_used
            )
            self._touch_ok = False

    def append(
        self,
        rr_set: np.ndarray,
        *,
        root: Optional[int] = None,
        touch_edges: Optional[np.ndarray] = None,
    ) -> None:
        """Append one RR-set (an array of member node ids).

        ``root`` / ``touch_edges`` (sorted unique edge ids the sampling
        run tested) feed the touch-tracking columns; both are ignored when
        the pool does not track touches, and omitting either on a
        tracking pool drops the matching completeness flag.
        """
        self._check_writable()
        rr_set = np.asarray(rr_set)
        size = int(rr_set.size)
        self._reserve_nodes(size)
        self._reserve_sets(1)
        if size:  # zero-length writes would still trip read-only (mmap) buffers
            self._nodes[self._used : self._used + size] = rr_set
        self._used += size
        self._num_sets += 1
        self._indptr[self._num_sets] = self._used
        if self._track_touches:
            self._record_touches(
                1,
                None if root is None else np.asarray([root], dtype=np.int32),
                touch_edges,
                None,
            )

    def extend(self, sets: Iterable[np.ndarray]) -> None:
        """Append several RR-sets."""
        for rr_set in sets:
            self.append(rr_set)

    def append_flat(
        self,
        nodes: np.ndarray,
        lengths: np.ndarray,
        *,
        roots: Optional[np.ndarray] = None,
        touch_edges: Optional[np.ndarray] = None,
        touch_lengths: Optional[np.ndarray] = None,
    ) -> None:
        """Bulk-append a pre-packed chunk of RR-sets.

        ``nodes`` is the concatenation of the chunk's sets in order and
        ``lengths[i]`` the size of the ``i``-th set (``lengths.sum() ==
        nodes.size``).  This is the fast-path entry point: one copy, no
        per-set Python work.  ``roots`` / ``touch_edges`` + ``touch_lengths``
        carry the chunk's touch-tracking columns in the same packed layout
        (ignored on non-tracking pools; omissions drop completeness flags).
        """
        self._check_writable()
        nodes = np.asarray(nodes)
        lengths = np.asarray(lengths, dtype=np.int64)
        total = int(lengths.sum())
        if total != nodes.size:
            raise ValueError(
                f"lengths sum to {total} but {nodes.size} nodes were given"
            )
        count = int(lengths.size)
        self._reserve_nodes(total)
        self._reserve_sets(count)
        if total:
            self._nodes[self._used : self._used + total] = nodes
        if count:  # a zero-length write would trip read-only (mmap) buffers
            offsets = self._used + np.cumsum(lengths)
            self._indptr[
                self._num_sets + 1 : self._num_sets + 1 + count
            ] = offsets
        self._used += total
        self._num_sets += count
        if self._track_touches and count:
            self._record_touches(
                count,
                None if roots is None else np.asarray(roots, dtype=np.int32),
                touch_edges,
                touch_lengths if touch_edges is not None else None,
            )

    def extend_pool(self, other: "RRSetPool") -> None:
        """Append every set of ``other``, O(``other.total_nodes``).

        The in-place half of the merge kernel (:meth:`merge` builds a new
        pool from many): ``other``'s flat node array is copied once and
        its CSR offsets are shifted by this pool's current fill — the
        vectorized equivalent of ``extend(other)`` with no per-set work.
        Used by the parallel engine to fold worker shards into the
        caller's (possibly warm) pool.
        """
        self._check_writable()
        if other.num_nodes != self._num_nodes:
            raise ValueError(
                f"cannot extend with a pool over a different node universe "
                f"({other.num_nodes} != {self._num_nodes})"
            )
        total = other.total_nodes
        count = len(other)
        self._reserve_nodes(total)
        self._reserve_sets(count)
        if total:
            self._nodes[self._used : self._used + total] = other.nodes
        if count:  # a zero-length write would trip read-only (mmap) buffers
            # int64 before the shift: a dieted donor's uint32 offsets
            # would wrap once this pool's fill pushes them past 2**32.
            self._indptr[self._num_sets + 1 : self._num_sets + 1 + count] = (
                other.indptr[1:].astype(np.int64, copy=False) + self._used
            )
        self._used += total
        self._num_sets += count
        if self._track_touches and count:
            donor = other._track_touches
            self._record_touches(
                count,
                other._roots[:count] if donor and other._roots_ok else None,
                other._touch_edges[: other._touch_used]
                if donor and other._touch_ok
                else None,
                np.diff(other._touch_indptr[: count + 1])
                if donor and other._touch_ok
                else None,
            )

    # ------------------------------------------------------------------
    # Views and accounting
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Size of the node universe the sets draw from."""
        return self._num_nodes

    @property
    def nodes(self) -> np.ndarray:
        """Flat member-node array (``int32`` view over used entries)."""
        return self._nodes[: self._used]

    @property
    def indptr(self) -> np.ndarray:
        """CSR offsets; set ``i`` is ``nodes[indptr[i]:indptr[i+1]]``."""
        return self._indptr[: self._num_sets + 1]

    @property
    def lengths(self) -> np.ndarray:
        """Per-set sizes (length ``len(self)``)."""
        return np.diff(self.indptr)

    @property
    def total_nodes(self) -> int:
        """Total number of stored member entries across all sets."""
        return self._used

    @property
    def track_touches(self) -> bool:
        """Whether this pool maintains root / edge-touch columns."""
        return self._track_touches

    @property
    def roots_ok(self) -> bool:
        """True while *every* set was appended with its root recorded."""
        return self._roots_ok

    @property
    def touch_ok(self) -> bool:
        """True while *every* set was appended with its touch signature."""
        return self._touch_ok

    @property
    def roots(self) -> np.ndarray:
        """Per-set root nodes (``int32``; ``-1`` where unrecorded)."""
        if not self._track_touches:
            raise ValueError("pool does not track touch signatures")
        return self._roots[: self._num_sets]

    @property
    def touch_indptr(self) -> np.ndarray:
        """CSR offsets of the per-set edge-touch signatures."""
        if not self._track_touches:
            raise ValueError("pool does not track touch signatures")
        return self._touch_indptr[: self._num_sets + 1]

    @property
    def touch_edges(self) -> np.ndarray:
        """Flat sorted edge-id column of the touch signatures."""
        if not self._track_touches:
            raise ValueError("pool does not track touch signatures")
        return self._touch_edges[: self._touch_used]

    @property
    def nbytes(self) -> int:
        """Bytes of pool data in use (nodes + offsets + touch columns)."""
        used = self._used * self._nodes.itemsize + (
            self._num_sets + 1
        ) * self._indptr.itemsize
        if self._track_touches:
            used += (
                self._num_sets * self._roots.itemsize
                + self._touch_used * self._touch_edges.itemsize
                + (self._num_sets + 1) * self._touch_indptr.itemsize
            )
        return used

    @property
    def capacity_bytes(self) -> int:
        """Bytes currently allocated, including growth slack."""
        return self._nodes.nbytes + self._indptr.nbytes

    def __len__(self) -> int:
        return self._num_sets

    def __getitem__(self, index: int) -> np.ndarray:
        i = int(index)
        if i < 0:
            i += self._num_sets
        if not 0 <= i < self._num_sets:
            raise IndexError(f"set index {index} out of range [0, {self._num_sets})")
        return self._nodes[self._indptr[i] : self._indptr[i + 1]]

    def __iter__(self) -> Iterator[np.ndarray]:
        for i in range(self._num_sets):
            yield self[i]

    def to_list(self) -> list[np.ndarray]:
        """The legacy representation: one ``int64`` array per set."""
        return [np.asarray(rr_set, dtype=np.int64) for rr_set in self]

    def prefix(self, count: int) -> "RRSetPool":
        """A zero-copy *read-only* view of the first ``count`` sets.

        Shares the underlying buffers, so it must not be appended to and
        is only valid until the parent pool grows past its current
        capacity.  Used by :func:`~repro.rrset.tim.general_tim` to honour
        a pinned ``theta_override`` against a warm pool that holds more
        sets than the pin.
        """
        count = int(count)
        if not 0 <= count <= self._num_sets:
            raise ValueError(
                f"prefix count {count} out of range [0, {self._num_sets}]"
            )
        view = RRSetPool.__new__(RRSetPool)
        view._num_nodes = self._num_nodes
        view._nodes = self._nodes
        view._indptr = self._indptr
        view._num_sets = count
        view._used = int(self._indptr[count])
        view._set_ids_cache = None
        view._frozen = True  # appends would corrupt the shared buffers
        view._init_tracking(False)  # selection views never repair
        return view

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RRSetPool(sets={self._num_sets}, entries={self._used}, "
            f"n={self._num_nodes})"
        )

    # ------------------------------------------------------------------
    # Whole-pool kernels
    # ------------------------------------------------------------------
    def set_ids(self) -> np.ndarray:
        """Set id of every flat entry (``np.repeat`` over lengths).

        Cached: existing entries keep their set id under appends, so the
        cache stays valid exactly while the entry count is unchanged
        (appending only empty sets included) and is rebuilt lazily
        otherwise.  Callers must not mutate the returned array.
        """
        cache = self._set_ids_cache
        if cache is None or cache.size != self._used:
            cache = np.repeat(
                np.arange(self._num_sets, dtype=np.int64), self.lengths
            )
            self._set_ids_cache = cache
        return cache

    def coverage_counts(self) -> np.ndarray:
        """Per-node incidence counts: ``counts[v] = #{i : v in set i}``.

        One ``np.bincount`` over the flat node array — the pooled
        replacement for the seed's per-set per-node counting loop.
        """
        return np.bincount(self.nodes, minlength=self._num_nodes)

    def intersects(self, node_mask: np.ndarray) -> np.ndarray:
        """Boolean per-set array: does the set hit a marked node?

        ``node_mask`` is a length-``num_nodes`` boolean array; the result
        drives RR-set objective estimation (activation equivalence counts
        intersecting sets).  Empty sets never intersect.
        """
        node_mask = np.asarray(node_mask, dtype=bool)
        if node_mask.shape != (self._num_nodes,):
            raise ValueError(
                f"node_mask must have shape ({self._num_nodes},), "
                f"got {node_mask.shape}"
            )
        hit_entries = node_mask[self.nodes]
        hits = np.bincount(
            self.set_ids()[hit_entries], minlength=self._num_sets
        )
        return hits > 0

    def widths(
        self,
        in_degrees: np.ndarray,
        *,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> np.ndarray:
        """Per-set ``w(R)``: total in-degree of each set's members.

        Vectorises TIM's ``KptEstimation`` width statistic (one gather +
        ``bincount`` instead of a per-set reduction).  ``start``/``stop``
        restrict the computation to sets ``[start, stop)`` so callers
        consuming successive slices of a shared pool (the pooled KPT
        rounds) touch only the slice, not the whole pool.
        """
        in_degrees = np.asarray(in_degrees)
        stop = self._num_sets if stop is None else int(stop)
        start = int(start)
        if not 0 <= start <= stop <= self._num_sets:
            raise ValueError(
                f"invalid set range [{start}, {stop}) for {self._num_sets} sets"
            )
        if start == 0 and stop == self._num_sets:
            ids = self.set_ids()
            nodes = self.nodes
        else:
            indptr = self._indptr
            lo, hi = int(indptr[start]), int(indptr[stop])
            nodes = self._nodes[lo:hi]
            ids = np.repeat(
                np.arange(stop - start, dtype=np.int64),
                np.diff(indptr[start : stop + 1]),
            )
        return np.bincount(
            ids,
            weights=in_degrees[nodes].astype(np.float64),
            minlength=stop - start,
        ).astype(np.int64)

    # ------------------------------------------------------------------
    # Delta repair (dynamic graphs)
    # ------------------------------------------------------------------
    def repair(self, effect, generator, *, rng=None):
        """Repair this pool in place for a graph delta.

        ``effect`` is the :class:`~repro.graph.DeltaEffect` of applying
        the delta and ``generator`` an RR generator over the *new* graph.
        Convenience wrapper over :func:`repro.rrset.repair.repair_pool`
        (see there for eligibility and the affectedness rules); returns
        its :class:`~repro.rrset.repair.RepairReport`.
        """
        from repro.rrset.repair import repair_pool

        return repair_pool(self, effect, generator, rng=rng)

    def affected_by_edges(self, edge_mark: np.ndarray) -> np.ndarray:
        """Boolean per-set array: did the set's sampling touch a marked edge?

        ``edge_mark`` is a boolean array over the *old* graph's edge ids;
        the result is exact for recorded-touch pools (one gather +
        ``bincount`` over the touch CSR, the structural twin of
        :meth:`intersects`).  Requires a complete touch record.
        """
        if not (self._track_touches and self._touch_ok):
            raise ValueError(
                "affected_by_edges needs a complete touch record "
                "(track_touches pool with touch_ok)"
            )
        edge_mark = np.asarray(edge_mark, dtype=bool)
        touch = self._touch_edges[: self._touch_used]
        if touch.size and (
            int(touch.min()) < 0 or int(touch.max()) >= edge_mark.size
        ):
            raise ValueError(
                f"touch record references edge ids outside [0, "
                f"{edge_mark.size})"
            )
        # Gather the mark at every touch, then map each hit position back
        # to its owning set through the CSR boundaries — O(total touches)
        # for the gather plus O(hits log sets) for the searchsorted, with
        # no materialised per-touch set-ids array (the np.repeat twin
        # costs ~3x the memory traffic, and deltas are typically sparse
        # so hits ≪ touches).
        indptr = self._touch_indptr[: self._num_sets + 1]
        out = np.zeros(self._num_sets, dtype=bool)
        hit_pos = np.flatnonzero(edge_mark[touch])
        if hit_pos.size:
            set_idx = np.searchsorted(indptr, hit_pos, side="right") - 1
            out[set_idx] = True
        return out

    def drop_members(
        self,
        affected: np.ndarray,
        *,
        old_to_new_edge: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Compact the pool in place, removing every ``affected`` set.

        Returns the (``int64``) roots of the dropped sets so the caller
        can resample exactly those — the drop half of delta repair.
        Kept sets' touch signatures are rewritten through
        ``old_to_new_edge`` (the delta's edge-id remap; kept sets never
        touch a removed edge, so no ``-1`` survives).  All columns are
        rebuilt into fresh writable arrays: store-loaded pools adopt
        read-only memory maps, which in-place masking would trip over.
        Requires complete roots.
        """
        self._check_writable()
        if not (self._track_touches and self._roots_ok):
            raise ValueError(
                "drop_members needs recorded roots (track_touches pool "
                "with roots_ok)"
            )
        affected = np.asarray(affected, dtype=bool)
        if affected.shape != (self._num_sets,):
            raise ValueError(
                f"affected must have one flag per set ({self._num_sets}), "
                f"got shape {affected.shape}"
            )
        keep = ~affected
        dropped_roots = self._roots[: self._num_sets][affected].astype(
            np.int64
        )
        lengths = np.diff(self._indptr[: self._num_sets + 1])
        kept_nodes = self._nodes[: self._used][np.repeat(keep, lengths)]
        self._nodes = np.ascontiguousarray(kept_nodes, dtype=np.int32)
        self._indptr = np.concatenate(
            (
                np.zeros(1, dtype=np.int64),
                np.cumsum(lengths[keep], dtype=np.int64),
            )
        )
        self._roots = np.ascontiguousarray(
            self._roots[: self._num_sets][keep], dtype=np.int32
        )
        tlengths = np.diff(self._touch_indptr[: self._num_sets + 1])
        kept_touch = self._touch_edges[: self._touch_used][
            np.repeat(keep, tlengths)
        ]
        if old_to_new_edge is not None and kept_touch.size:
            remapped = np.asarray(old_to_new_edge, dtype=np.int64)[kept_touch]
            if remapped.size and int(remapped.min()) < 0:
                raise ValueError(
                    "kept touch signature references a removed edge"
                )
            kept_touch = remapped
        self._touch_edges = np.ascontiguousarray(kept_touch, dtype=np.int32)
        self._touch_indptr = np.concatenate(
            (
                np.zeros(1, dtype=np.int64),
                np.cumsum(tlengths[keep], dtype=np.int64),
            )
        )
        self._num_sets = int(self._roots.size)
        self._used = int(self._nodes.size)
        self._touch_used = int(self._touch_edges.size)
        self._set_ids_cache = None
        return dropped_roots


def unique_inverse(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(unique, inverse)`` of an integer key array via one sort.

    ``unique`` is sorted-distinct and ``unique[inverse]`` reconstructs
    ``keys`` — the fast replacement for ``np.unique(..,
    return_inverse=True)`` that the batched sweeps use when several lanes
    of one chunk may query the same memoised world variable in a single
    bulk call (a coin or threshold must be drawn once per distinct key).
    """
    order = np.argsort(keys, kind="stable")
    ordered = keys[order]
    first = np.empty(ordered.size, dtype=bool)
    if ordered.size:
        first[0] = True
        np.not_equal(ordered[1:], ordered[:-1], out=first[1:])
    inverse = np.empty(keys.size, dtype=np.int64)
    inverse[order] = np.cumsum(first) - 1
    return ordered[first], inverse


class ChunkCoinMemo:
    """Memoised per-``(chunk member, edge)`` Bernoulli coins.

    The batched RR-CIM and RR-SIM+ kernels test the same edge from several
    sub-searches of one world — forward labeling, the primary backward
    search, Case-1 secondary searches and Case-4 zig-zag checks — so a
    coin flipped in one sweep must be replayed by the others, exactly like
    the oracle's memoised :meth:`~repro.models.sources.WorldSource.
    edge_live`.  (RR-SIM's two-phase kernel gets away with a write-once
    record because its phases never re-test an edge among themselves; the
    richer kernels need a growable memo.)

    Keys are ``member * num_edges + edge_id``.  The memo is one sorted
    key array plus parallel values; every bulk query is a ``searchsorted``
    lookup, fresh draws are merged in sorted position via ``np.insert``.
    """

    __slots__ = (
        "_keys",
        "_vals",
        "_okeys",
        "_ovals",
        "_pending_keys",
        "_pending_vals",
        "_pending",
    )

    def __init__(self) -> None:
        # Base tier: bulk-recorded coins, consolidated (sorted) lazily.
        self._keys = np.empty(0, dtype=np.int64)
        self._vals = np.empty(0, dtype=bool)
        # Overlay tier: coins first drawn by a lookup; kept separate so
        # merging them never rewrites the (much larger) base.
        self._okeys = np.empty(0, dtype=np.int64)
        self._ovals = np.empty(0, dtype=bool)
        self._pending_keys: list[np.ndarray] = []
        self._pending_vals: list[np.ndarray] = []
        self._pending = 0

    @property
    def size(self) -> int:
        """Number of memoised coins (distinct keys seen so far)."""
        return self._keys.size + self._okeys.size + self._pending

    def record(self, keys: np.ndarray, vals: np.ndarray) -> None:
        """Append coins for previously-unseen keys without a lookup.

        The fast lane for sweep phases that can never re-test an edge
        (each source node expands at most once, and an edge belongs to
        exactly one source): coins accumulate as raw fragments, deferring
        all sorting to one consolidation pass when a later phase first
        needs to look something up.  Callers must guarantee the keys are
        distinct from everything recorded or drawn before.
        """
        if keys.size:
            self._pending_keys.append(keys)
            self._pending_vals.append(vals)
            self._pending += keys.size

    def _consolidate(self) -> None:
        if not self._pending:
            return
        keys = np.concatenate([self._keys, *self._pending_keys])
        vals = np.concatenate([self._vals, *self._pending_vals])
        order = np.argsort(keys, kind="stable")
        self._keys = keys[order]
        self._vals = vals[order]
        self._pending_keys.clear()
        self._pending_vals.clear()
        self._pending = 0

    def lookup_or_draw(
        self, keys: np.ndarray, probs: np.ndarray, gen: np.random.Generator
    ) -> np.ndarray:
        """Coin value for every key (repeats allowed within one call).

        Known keys replay their memoised value; unseen keys draw a fresh
        ``Bernoulli(probs)`` coin — once per *distinct* key — and are
        recorded for later sweeps.
        """
        if keys.size == 0:
            return np.empty(0, dtype=bool)
        self._consolidate()
        ukeys, inverse = unique_inverse(keys)
        uvals = np.empty(ukeys.size, dtype=bool)
        unseen = np.ones(ukeys.size, dtype=bool)
        for tier_keys, tier_vals in (
            (self._keys, self._vals),
            (self._okeys, self._ovals),
        ):
            if tier_keys.size and unseen.any():
                idx = np.flatnonzero(unseen)
                pos = np.minimum(
                    np.searchsorted(tier_keys, ukeys[idx]), tier_keys.size - 1
                )
                hit = tier_keys[pos] == ukeys[idx]
                uvals[idx[hit]] = tier_vals[pos[hit]]
                unseen[idx[hit]] = False
        if unseen.any():
            uprobs = np.empty(ukeys.size, dtype=np.float64)
            uprobs[inverse] = probs  # any occurrence carries the edge's prob
            idx = np.flatnonzero(unseen)
            uvals[idx] = gen.random(idx.size) < uprobs[idx]
            # Manual O(overlay) two-way merge into the overlay tier
            # (np.insert pays far too much per-call overhead here).
            new_keys = ukeys[idx]
            total = self._okeys.size + new_keys.size
            new_pos = np.searchsorted(self._okeys, new_keys) + np.arange(
                new_keys.size, dtype=np.int64
            )
            merged_keys = np.empty(total, dtype=np.int64)
            merged_vals = np.empty(total, dtype=bool)
            merged_keys[new_pos] = new_keys
            merged_vals[new_pos] = uvals[idx]
            old = np.ones(total, dtype=bool)
            old[new_pos] = False
            merged_keys[old] = self._okeys
            merged_vals[old] = self._ovals
            self._okeys = merged_keys
            self._ovals = merged_vals
        return uvals[inverse]

    def touched_keys(self) -> np.ndarray:
        """Sorted distinct ``member * num_edges + edge`` keys of every coin.

        The chunk's complete edge-touch record: one key per coin the
        kernel flipped, across all tiers.  Feeds the pool's touch columns
        via :func:`touches_from_keys` when delta repair is tracking.
        """
        self._consolidate()
        if not self._okeys.size:
            return self._keys.copy()
        if not self._keys.size:
            return self._okeys.copy()
        return np.sort(np.concatenate([self._keys, self._okeys]))


def unique_keys(keys: np.ndarray) -> np.ndarray:
    """Sorted distinct values of an integer key array.

    Drop-in for ``np.unique`` on the sweeps' ``world * n + node`` keys —
    a plain sort + neighbour-comparison, which is an order of magnitude
    faster than ``np.unique``'s generic path on these workloads.
    """
    if keys.size <= 1:
        return keys.copy()
    ordered = np.sort(keys)
    keep = np.empty(ordered.size, dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def touches_from_keys(
    keys: np.ndarray, num_edges: int, count: int
) -> tuple[np.ndarray, np.ndarray]:
    """Split sorted distinct ``member * num_edges + edge`` keys into the
    packed per-member touch rows :meth:`RRSetPool.append_flat` expects.

    Returns ``(touch_edges, touch_lengths)``: the flat ``int32`` edge-id
    column (grouped by member, ascending within each) and one length per
    chunk member — including zeros for members whose sweep flipped no
    coins.
    """
    if keys.size == 0:
        return np.empty(0, dtype=np.int32), np.zeros(count, dtype=np.int64)
    member, eid = np.divmod(keys, num_edges)
    lengths = np.bincount(member, minlength=count).astype(np.int64)
    return eid.astype(np.int32), lengths


def flatten_members(
    member_sets: Sequence[np.ndarray],
    member_ids: Sequence[np.ndarray],
    count: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Regroup level-order ``(set_id, node)`` fragments into packed sets.

    The batched generators discover members level-by-level: each sweep
    level yields parallel arrays of set ids and nodes.  This helper
    concatenates all levels, stably sorts by set id and returns
    ``(nodes, lengths)`` ready for :meth:`RRSetPool.append_flat` —
    including length-0 entries for sets that produced no members.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if not member_ids:
        return np.empty(0, dtype=np.int32), np.zeros(count, dtype=np.int64)
    ids = np.concatenate([np.asarray(a) for a in member_ids])
    nodes = np.concatenate([np.asarray(a) for a in member_sets])
    order = np.argsort(ids, kind="stable")
    lengths = np.bincount(ids, minlength=count).astype(np.int64)
    return nodes[order].astype(np.int32, copy=False), lengths
