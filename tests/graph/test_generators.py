"""Unit tests for graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    complete_digraph,
    cycle_digraph,
    erdos_renyi_digraph,
    grid_digraph,
    path_digraph,
    power_law_digraph,
    star_digraph,
)


class TestErdosRenyi:
    def test_edge_count_concentrates(self):
        g = erdos_renyi_digraph(100, 0.05, rng=0)
        expected = 100 * 99 * 0.05
        assert 0.6 * expected < g.num_edges < 1.4 * expected

    def test_no_self_loops(self):
        g = erdos_renyi_digraph(50, 0.2, rng=1)
        assert not np.any(g.edge_sources == g.edge_targets)

    def test_deterministic_with_seed(self):
        assert erdos_renyi_digraph(40, 0.1, rng=7) == erdos_renyi_digraph(40, 0.1, rng=7)

    def test_zero_probability(self):
        assert erdos_renyi_digraph(10, 0.0, rng=0).num_edges == 0

    def test_one_probability_is_complete(self):
        g = erdos_renyi_digraph(6, 1.0, rng=0)
        assert g.num_edges == 6 * 5

    def test_influence_probability_stamped(self):
        g = erdos_renyi_digraph(10, 0.5, probability=0.123, rng=0)
        assert np.allclose(g.edge_probabilities, 0.123)

    def test_rejects_bad_args(self):
        with pytest.raises(GraphError):
            erdos_renyi_digraph(-1, 0.5)
        with pytest.raises(GraphError):
            erdos_renyi_digraph(10, 1.5)


class TestPowerLaw:
    def test_average_degree_close_to_target(self):
        g = power_law_digraph(2000, average_degree=5.0, rng=0)
        avg = g.num_edges / g.num_nodes
        assert 3.5 < avg < 6.5

    def test_has_heavy_tail(self):
        g = power_law_digraph(2000, average_degree=5.0, rng=0)
        assert int(g.out_degrees.max()) > 5 * g.out_degrees.mean()

    def test_deterministic_with_seed(self):
        assert power_law_digraph(100, rng=3) == power_law_digraph(100, rng=3)

    def test_no_self_loops_or_parallels(self):
        # from_arrays would raise on either; construction succeeding is the check.
        g = power_law_digraph(200, rng=5)
        assert not np.any(g.edge_sources == g.edge_targets)

    def test_rejects_small_n(self):
        with pytest.raises(GraphError):
            power_law_digraph(1)

    def test_rejects_bad_exponent(self):
        with pytest.raises(GraphError):
            power_law_digraph(10, exponent=0.9)


class TestFixtures:
    def test_path(self):
        g = path_digraph(4)
        assert g.num_edges == 3
        assert g.has_edge(0, 1) and g.has_edge(2, 3)
        assert not g.has_edge(1, 0)

    def test_bidirectional_path(self):
        g = path_digraph(3, bidirectional=True)
        assert g.num_edges == 4
        assert g.has_edge(1, 0)

    def test_single_node_path(self):
        assert path_digraph(1).num_edges == 0

    def test_cycle(self):
        g = cycle_digraph(3)
        assert g.num_edges == 3
        assert g.has_edge(2, 0)

    def test_cycle_rejects_small(self):
        with pytest.raises(GraphError):
            cycle_digraph(1)

    def test_star_outward(self):
        g = star_digraph(5)
        assert g.out_degree(0) == 4
        assert g.in_degree(0) == 0

    def test_star_inward(self):
        g = star_digraph(5, outward=False)
        assert g.in_degree(0) == 4
        assert g.out_degree(0) == 0

    def test_complete(self):
        g = complete_digraph(4)
        assert g.num_edges == 12

    def test_grid(self):
        g = grid_digraph(2, 3)
        assert g.num_nodes == 6
        # Each internal adjacency is bidirectional: 2*(rows*(cols-1) + (rows-1)*cols).
        assert g.num_edges == 2 * (2 * 2 + 1 * 3)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.has_edge(0, 3) and g.has_edge(3, 0)

    def test_grid_rejects_bad_dims(self):
        with pytest.raises(GraphError):
            grid_digraph(0, 3)

    def test_probability_parameter(self):
        g = path_digraph(3, probability=0.4)
        assert g.edge_probability(0, 1) == pytest.approx(0.4)
