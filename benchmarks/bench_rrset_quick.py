"""Standalone batched RR-set engine benchmark -> BENCH_rrset.json.

Quantifies the ISSUE-1 acceptance numbers on a ~10k-node synthetic
power-law graph, without pytest-benchmark so CI can run it with numpy
alone:

* per-RR-set generation cost, per-root oracle vs ``generate_batch``
  (RR-IC and RR-SIM);
* pooled vs legacy ``greedy_max_coverage``;
* end-to-end SelfInfMax via ``general_imm`` at equal ``eps``, batched
  engine vs oracle-forced generation, with RR-estimated spreads of both
  seed sets to confirm quality parity.

Usage::

    PYTHONPATH=src python benchmarks/bench_rrset_quick.py [--quick] \
        [--nodes 10000] [--output BENCH_rrset.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.graph.generators import power_law_digraph
from repro.models.gaps import GAP
from repro.rrset import (
    IMMOptions,
    RRICGenerator,
    RRSimGenerator,
    general_imm,
    greedy_max_coverage,
    greedy_max_coverage_legacy,
    rr_estimate_objective,
)
from repro.rrset.base import RRSetGenerator

GAPS = GAP(q_a=0.3, q_a_given_b=0.75, q_b=0.5, q_b_given_a=0.5)


class _OracleRRSim(RRSimGenerator):
    """RR-SIM with the batched fast path disabled (the 'before' engine)."""

    generate_batch = RRSetGenerator.generate_batch


class _OracleRRIC(RRICGenerator):
    generate_batch = RRSetGenerator.generate_batch


def best_of(fn, repeats: int) -> float:
    """Minimum wall time over ``repeats`` runs (noise-robust)."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def bench_generation(generator, per_root_count, batch_count, repeats):
    t_oracle = best_of(lambda: generator.generate_many(per_root_count, rng=1), repeats)
    t_batch = best_of(lambda: generator.generate_batch(batch_count, rng=1), repeats)
    per_root_rate = per_root_count / t_oracle
    batch_rate = batch_count / t_batch
    return {
        "per_root_sets_per_s": round(per_root_rate, 1),
        "batched_sets_per_s": round(batch_rate, 1),
        "speedup": round(batch_rate / per_root_rate, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=10_000)
    parser.add_argument("--average-degree", type=float, default=8.0)
    parser.add_argument("--probability", type=float, default=0.2)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--output", default="BENCH_rrset.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller sample counts (CI mode)",
    )
    args = parser.parse_args(argv)

    per_root_count = 200 if args.quick else 500
    batch_count = 4000 if args.quick else 10_000
    repeats = 3 if args.quick else 5
    imm_cap = 10_000 if args.quick else 20_000

    graph = power_law_digraph(
        args.nodes, average_degree=args.average_degree,
        probability=args.probability, rng=2,
    )
    seeds_b = list(range(10))
    report = {
        "graph": {
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "average_degree": args.average_degree,
            "probability": args.probability,
        },
        "config": {
            "per_root_count": per_root_count,
            "batch_count": batch_count,
            "repeats": repeats,
            "gaps": [GAPS.q_a, GAPS.q_a_given_b, GAPS.q_b, GAPS.q_b_given_a],
        },
    }

    rr_ic = RRICGenerator(graph)
    rr_sim = RRSimGenerator(graph, GAPS, seeds_b)
    report["rr_ic_generation"] = bench_generation(
        rr_ic, per_root_count, batch_count, repeats
    )
    print("rr_ic_generation:", report["rr_ic_generation"])
    report["rr_sim_generation"] = bench_generation(
        rr_sim, per_root_count, batch_count, repeats
    )
    print("rr_sim_generation:", report["rr_sim_generation"])

    pool = rr_ic.generate_batch(batch_count, rng=7)
    rr_list = pool.to_list()
    t_pooled = best_of(lambda: greedy_max_coverage(pool, graph.num_nodes, args.k), repeats)
    t_legacy = best_of(
        lambda: greedy_max_coverage_legacy(rr_list, graph.num_nodes, args.k), repeats
    )
    assert greedy_max_coverage(pool, graph.num_nodes, args.k) == \
        greedy_max_coverage_legacy(rr_list, graph.num_nodes, args.k)
    report["greedy_max_coverage"] = {
        "sets": batch_count,
        "pooled_s": round(t_pooled, 4),
        "legacy_s": round(t_legacy, 4),
        "speedup": round(t_legacy / t_pooled, 2),
    }
    print("greedy_max_coverage:", report["greedy_max_coverage"])

    opts = IMMOptions(epsilon=0.5, max_rr_sets=imm_cap)
    oracle_sim = _OracleRRSim(graph, GAPS, seeds_b)
    t_new = best_of(lambda: general_imm(rr_sim, args.k, options=opts, rng=4), 2)
    t_old = best_of(lambda: general_imm(oracle_sim, args.k, options=opts, rng=4), 2)
    result_new = general_imm(rr_sim, args.k, options=opts, rng=4)
    result_old = general_imm(oracle_sim, args.k, options=opts, rng=4)
    eval_samples = 4000 if args.quick else 10_000
    spread_new = rr_estimate_objective(rr_sim, result_new.seeds, samples=eval_samples, rng=9)
    spread_old = rr_estimate_objective(rr_sim, result_old.seeds, samples=eval_samples, rng=9)
    report["selfinfmax_imm_end_to_end"] = {
        "epsilon": opts.epsilon,
        "k": args.k,
        "batched_s": round(t_new, 3),
        "oracle_s": round(t_old, 3),
        "speedup": round(t_old / t_new, 2),
        "batched_spread": round(spread_new.mean, 2),
        "oracle_spread": round(spread_old.mean, 2),
        "spread_stderr": round(spread_new.stderr, 3),
    }
    print("selfinfmax_imm_end_to_end:", report["selfinfmax_imm_end_to_end"])

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
