"""The paper's motivating scenario: a phone-and-watch viral campaign (§1).

An "Apple Watch" (item A) is complemented far more by an "iPhone" (item B)
than the other way round — most watch features need a paired phone, while
the phone is fully functional alone.  The paper encodes this asymmetric
complementarity as GAPs with (q_{A|B} - q_{A|∅}) > (q_{B|A} - q_{B|∅}) >= 0.

The phone is already on the market: its seed set is the network's organic
influencers.  The campaign must place k watch seeds — a SelfInfMax
instance.  We compare GeneralTIM(+SA) against the baselines a marketer
might reach for.

Run:  python examples/phone_watch_campaign.py
"""

from repro import ComICSession, EngineConfig, GAP, SelfInfMaxQuery, estimate_spread
from repro.algorithms import copying_seeds, high_degree_seeds, pagerank_seeds, random_seeds
from repro.datasets import load_dataset

K = 8
MC_RUNS = 400


def main() -> None:
    graph = load_dataset("flixster", scale=0.06, rng=11)
    print(f"campaign network: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # Asymmetric complementarity: the watch (A) needs the phone (B).
    gaps = GAP(q_a=0.15, q_a_given_b=0.75, q_b=0.55, q_b_given_a=0.65)
    assert (gaps.q_a_given_b - gaps.q_a) > (gaps.q_b_given_a - gaps.q_b) >= 0
    print(f"GAPs: {gaps}")

    # The phone's existing adopters: top PageRank influencers.
    phone_seeds = pagerank_seeds(graph, 20)
    print(f"phone (B) seeds: top-20 PageRank nodes")

    session = ComICSession(
        graph, gaps, config=EngineConfig(theta_override=15000), rng=3
    )
    result = session.run(SelfInfMaxQuery(
        seeds_b=tuple(phone_seeds), k=K, evaluation_runs=MC_RUNS,
    ))
    print(f"\nGeneralTIM ({result.method}) watch seeds: {result.seeds}")
    sandwich = result.raw.sandwich
    if sandwich is not None:
        print(f"sandwich winner: {sandwich.winner} "
              f"(candidates evaluated: {sandwich.evaluations})")

    strategies = {
        "GeneralTIM+SA": result.seeds,
        "HighDegree": high_degree_seeds(graph, K),
        "PageRank": pagerank_seeds(graph, K),
        "Copying(phone)": copying_seeds(graph, K, phone_seeds),
        "Random": random_seeds(graph, K, rng=4),
    }
    print(f"\nexpected watch adopters (sigma_A, {MC_RUNS} MC runs):")
    for name, seeds in strategies.items():
        estimate = estimate_spread(
            graph, gaps, seeds, phone_seeds, runs=MC_RUNS, rng=5
        )
        print(f"  {name:16s} {estimate.mean:8.1f} ± {estimate.stderr:.1f}")


if __name__ == "__main__":
    main()
