"""Deterministic fault injection for the resilience layer.

See :mod:`repro.faults.plan` for the model (seeded :class:`FaultPlan`,
named injection sites, context-scoped activation) and
``docs/resilience.md`` for the operator-facing failure-modes table the
plans exercise.
"""

from repro.faults.plan import (
    KNOWN_KINDS,
    KNOWN_SITES,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    fault_scope,
    fire,
)

__all__ = [
    "KNOWN_KINDS",
    "KNOWN_SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "fault_scope",
    "fire",
]
