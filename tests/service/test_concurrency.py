"""Concurrent store access: racing saves/loads/GC stay consistent.

Two kinds of contenders race on one store directory: threads inside one
process (two ``CatalogedPoolStore`` instances sharing files but not
locks) and spawn-separated processes (the real multi-daemon scenario).
Afterward the invariants must hold: the catalog matches the directories
on disk, nothing was quarantined, and every save/load round-trips.
"""

import multiprocessing
import threading

import numpy as np

from repro.models import GAP
from repro.rrset.pool import RRSetPool
from repro.service.catalog import CatalogedPoolStore
from repro.store import PoolKey, PoolStore

GAPS = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
FP = "a" * 64
KEY = PoolKey.make("rr-sim", GAPS, [0, 1])


def make_pool(num_nodes=40, sets=25, rng_seed=0):
    gen = np.random.default_rng(rng_seed)
    pool = RRSetPool(num_nodes)
    for _ in range(sets):
        size = int(gen.integers(0, 6))
        pool.append(gen.integers(0, num_nodes, size=size))
    return pool


def retry_interpreter_flake(fn):
    """Run ``fn``, retrying once around a CPython 3.11 threading bug.

    ``np.load`` parses npy headers with ``ast.literal_eval``; under
    thread contention CPython's compiler occasionally misaccounts its
    AST recursion counters and raises ``SystemError: AST constructor
    recursion depth mismatch``.  That is an interpreter defect, not a
    store-consistency failure — retry once so these tests keep policing
    the invariants they are about.  Anything else propagates.
    """
    try:
        return fn()
    except SystemError as exc:
        if "recursion depth" not in str(exc):
            raise
        return fn()


def assert_catalog_matches_disk(store):
    survivors = {row["digest"] for row in store.catalog.rows()}
    on_disk = {m.key.digest() for m in store.entries()}
    assert survivors == on_disk


def _process_worker(root, worker_id, rounds, errors):
    """Spawn-target: hammer one shared store with saves, loads and GC."""
    try:
        store = CatalogedPoolStore(root, max_store_bytes=200_000)
        for i in range(rounds):
            key = PoolKey.make("rr-sim", GAPS, [worker_id, i % 3])
            pool = make_pool(sets=20 + i, rng_seed=worker_id * 100 + i)
            store.save(key, pool, graph_fingerprint=FP)
            loaded = store.load(key, graph_fingerprint=FP)
            # a racing GC may have evicted the entry between save and
            # load — a miss is legal, corruption/quarantine is not
            if loaded is not None and len(loaded) < 20:
                errors.put(f"worker {worker_id}: short pool round {i}")
        if store.stats.invalidations:
            errors.put(
                f"worker {worker_id}: {store.stats.invalidations} invalidations"
            )
    except Exception as exc:  # pragma: no cover - failure reporting
        errors.put(f"worker {worker_id}: {type(exc).__name__}: {exc}")


class TestThreadRaces:
    def test_two_instances_racing_same_key_saves(self, tmp_path):
        root = tmp_path / "pools"
        a = CatalogedPoolStore(root)
        b = CatalogedPoolStore(root)
        base = make_pool(sets=30)
        barrier = threading.Barrier(2)
        failures = []

        def racer(store, extra_seed):
            try:
                pool = make_pool(sets=30)
                gen = np.random.default_rng(extra_seed)
                for _ in range(20):
                    size = int(gen.integers(0, 6))
                    pool.append(gen.integers(0, pool.num_nodes, size=size))
                barrier.wait()
                for _ in range(5):
                    retry_interpreter_flake(
                        lambda: store.save(KEY, pool, graph_fingerprint=FP)
                    )
                    retry_interpreter_flake(
                        lambda: store.load(KEY, graph_fingerprint=FP)
                    )
            except Exception as exc:  # pragma: no cover
                failures.append(exc)

        threads = [
            threading.Thread(target=racer, args=(a, 1)),
            threading.Thread(target=racer, args=(b, 2)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []
        # whichever writer won, the surviving entry is valid and served
        final = PoolStore(root)
        loaded = final.load(KEY, graph_fingerprint=FP)
        assert loaded is not None and len(loaded) == 50
        assert final.stats.invalidations == 0
        assert_catalog_matches_disk(a)

    def test_save_race_loser_defers_and_entry_stays_valid(self, tmp_path):
        """The append-lock loser must not write: it returns as if saved,
        and the installed entry remains exactly the winner's."""
        root = tmp_path / "pools"
        store = PoolStore(root)
        pool = make_pool(sets=30)
        store.save(KEY, pool, graph_fingerprint=FP)
        grown = make_pool(sets=30)
        gen = np.random.default_rng(7)
        for _ in range(20):
            size = int(gen.integers(0, 6))
            grown.append(gen.integers(0, grown.num_nodes, size=size))
        # hold the lock as a fake concurrent appender, then save
        from repro.store.pool_store import APPEND_LOCK_FILE

        lock = store.entry_dir(KEY) / APPEND_LOCK_FILE
        lock.write_text("held by the other process")
        store.save(KEY, grown, graph_fingerprint=FP)
        lock.unlink()
        assert store.stats.append_contentions == 1
        # deferred: the original entry is untouched and still loads (the
        # loser's caller treats its in-memory pool as authoritative — the
        # degraded outcome is just a store hit of the shorter prefix)
        loaded = store.load(KEY, graph_fingerprint=FP)
        assert len(loaded) == 30
        assert store.stats.invalidations == 0

    def test_gc_racing_loads_never_quarantines(self, tmp_path):
        root = tmp_path / "pools"
        quota_store = CatalogedPoolStore(root, max_store_bytes=10_000)
        reader = CatalogedPoolStore(root)
        failures = []

        def writer():
            try:
                for i in range(12):
                    key = PoolKey.make("rr-sim", GAPS, [50 + i])
                    retry_interpreter_flake(
                        lambda: quota_store.save(
                            key, make_pool(sets=120, rng_seed=i),
                            graph_fingerprint=FP,
                        )
                    )
            except Exception as exc:  # pragma: no cover
                failures.append(exc)

        def loader():
            try:
                for i in range(12):
                    key = PoolKey.make("rr-sim", GAPS, [50 + i])
                    retry_interpreter_flake(
                        lambda: reader.load(key, graph_fingerprint=FP)
                    )
            except Exception as exc:  # pragma: no cover
                failures.append(exc)

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=loader),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []
        assert reader.stats.invalidations == 0
        assert quota_store.catalog.total_bytes() <= 10_000
        assert_catalog_matches_disk(quota_store)


class TestProcessRaces:
    def test_two_processes_racing_saves_loads_and_gc(self, tmp_path):
        root = str(tmp_path / "pools")
        ctx = multiprocessing.get_context("spawn")
        errors = ctx.Queue()
        procs = [
            ctx.Process(
                target=_process_worker, args=(root, wid, 6, errors)
            )
            for wid in (1, 2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        collected = []
        while not errors.empty():
            collected.append(errors.get())
        assert collected == []
        # post-race audit from a fresh instance: catalog and disk agree,
        # and every surviving entry still validates
        audit = CatalogedPoolStore(root)
        assert_catalog_matches_disk(audit)
        for manifest in audit.entries():
            loaded = audit.load(
                manifest.key, graph_fingerprint=manifest.graph_fingerprint
            )
            assert loaded is not None
        assert audit.stats.invalidations == 0
