"""Property-based tests of Theorem 3 (monotonicity) via the exact oracle.

Hypothesis generates tiny random instances (graph, GAPs, seed sets); the
exact enumeration oracle then checks, with no Monte-Carlo tolerance:

* Q+ and Q-: sigma_A is monotone increasing in S_A (self-monotonicity);
* Q+: sigma_A is monotone increasing in S_B (cross-monotonicity);
* Q-: sigma_A is monotone decreasing in S_B.

The appendix's Example 1 shows these fail outside Q+/Q-, so the GAP
strategies are constrained to the respective regimes.
"""

import hypothesis.strategies as st
from hypothesis import given

from tests.properties._profiles import ci_settings

from repro.graph import DiGraph
from repro.models import GAP, exact_spread

MAX_NODES = 5


@st.composite
def tiny_graphs(draw) -> DiGraph:
    n = draw(st.integers(min_value=2, max_value=MAX_NODES))
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    count = draw(st.integers(min_value=1, max_value=min(len(pairs), 6)))
    chosen = draw(
        st.lists(
            st.sampled_from(pairs), min_size=count, max_size=count, unique=True
        )
    )
    probs = draw(
        st.lists(
            st.sampled_from([0.3, 0.6, 1.0]),
            min_size=len(chosen), max_size=len(chosen),
        )
    )
    return DiGraph.from_edges(n, [(u, v, p) for (u, v), p in zip(chosen, probs)])


_Q = st.sampled_from([0.0, 0.2, 0.5, 0.8, 1.0])


@st.composite
def q_plus_gaps(draw) -> GAP:
    q_a = draw(_Q)
    q_ab = draw(_Q.filter(lambda v: v >= q_a))
    q_b = draw(_Q)
    q_ba = draw(_Q.filter(lambda v: v >= q_b))
    return GAP(q_a, q_ab, q_b, q_ba)


@st.composite
def q_minus_gaps(draw) -> GAP:
    q_a = draw(_Q)
    q_ab = draw(_Q.filter(lambda v: v <= q_a))
    q_b = draw(_Q)
    q_ba = draw(_Q.filter(lambda v: v <= q_b))
    return GAP(q_a, q_ab, q_b, q_ba)


def seed_sets(draw, st_module, n):
    base = draw(
        st_module.lists(
            st_module.integers(0, n - 1), min_size=0, max_size=2, unique=True
        )
    )
    extra = draw(st_module.integers(0, n - 1))
    return base, extra


@ci_settings(40)
@given(graph=tiny_graphs(), gaps=q_plus_gaps(), data=st.data())
def test_self_monotone_increasing_q_plus(graph, gaps, data):
    n = graph.num_nodes
    seeds_a, extra = seed_sets(data.draw, st, n)
    seeds_b = data.draw(
        st.lists(st.integers(0, n - 1), min_size=0, max_size=2, unique=True)
    )
    small, _ = exact_spread(graph, gaps, seeds_a, seeds_b)
    large, _ = exact_spread(graph, gaps, seeds_a + [extra], seeds_b)
    assert large >= small - 1e-9


@ci_settings(40)
@given(graph=tiny_graphs(), gaps=q_minus_gaps(), data=st.data())
def test_self_monotone_increasing_q_minus(graph, gaps, data):
    n = graph.num_nodes
    seeds_a, extra = seed_sets(data.draw, st, n)
    seeds_b = data.draw(
        st.lists(st.integers(0, n - 1), min_size=0, max_size=2, unique=True)
    )
    small, _ = exact_spread(graph, gaps, seeds_a, seeds_b)
    large, _ = exact_spread(graph, gaps, seeds_a + [extra], seeds_b)
    assert large >= small - 1e-9


@ci_settings(40)
@given(graph=tiny_graphs(), gaps=q_plus_gaps(), data=st.data())
def test_cross_monotone_increasing_q_plus(graph, gaps, data):
    n = graph.num_nodes
    seeds_b, extra = seed_sets(data.draw, st, n)
    seeds_a = data.draw(
        st.lists(st.integers(0, n - 1), min_size=1, max_size=2, unique=True)
    )
    small, _ = exact_spread(graph, gaps, seeds_a, seeds_b)
    large, _ = exact_spread(graph, gaps, seeds_a, seeds_b + [extra])
    assert large >= small - 1e-9


@ci_settings(40)
@given(graph=tiny_graphs(), gaps=q_minus_gaps(), data=st.data())
def test_cross_monotone_decreasing_q_minus(graph, gaps, data):
    n = graph.num_nodes
    seeds_b, extra = seed_sets(data.draw, st, n)
    seeds_a = data.draw(
        st.lists(st.integers(0, n - 1), min_size=1, max_size=2, unique=True)
    )
    small, _ = exact_spread(graph, gaps, seeds_a, seeds_b)
    large, _ = exact_spread(graph, gaps, seeds_a, seeds_b + [extra])
    assert large <= small + 1e-9
