"""Product-dependent edge probabilities — the paper's final §8 extension.

Base Com-IC assumes one influence probability per edge, shared by both
items ("competitive goods are typically of the same kind and complementary
goods tend to be adopted together", §3).  The paper closes by suggesting an
extended model "in which influence probabilities on edges are
product-dependent": each edge carries ``p_A(u, v)`` and ``p_B(u, v)`` and
the information channel opens *per item* — one independent liveness coin
for A and one for B.

The engine already reports which item an inform is crossing an edge with
(the ``item`` argument of
:meth:`~repro.models.sources.RandomnessSource.edge_live`), so the
extension is a thin source adapter: :class:`ProductDependentSource` keys
the liveness coin on ``(item, edge)`` and substitutes ``p_B`` for B-item
tests.  All other semantics (NLA, tie-breaking, reconsideration) are
inherited verbatim from :func:`repro.models.comic.simulate`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.models.comic import DiffusionOutcome, simulate
from repro.models.gaps import GAP
from repro.models.sources import ITEM_A, CoinSource, RandomnessSource
from repro.rng import SeedLike


class ProductDependentSource(RandomnessSource):
    """Source adapter: independent per-item edge coins.

    Edge id ``e`` maps to inner ids ``2e`` (item A) and ``2e + 1`` (item
    B); B-item tests use ``probability_b[e]`` in place of the engine-
    supplied probability (which comes from the A graph).  Wrapping a
    :class:`~repro.models.sources.WorldSource` yields the deterministic
    possible-world view of the extended model for free.
    """

    def __init__(self, inner: RandomnessSource, probability_b: np.ndarray) -> None:
        self._inner = inner
        self._probability_b = np.ascontiguousarray(probability_b, dtype=np.float64)

    def edge_live(self, edge_id: int, probability: float, item: int = ITEM_A) -> bool:
        if item == ITEM_A:
            return self._inner.edge_live(2 * edge_id, probability)
        return self._inner.edge_live(
            2 * edge_id + 1, float(self._probability_b[edge_id])
        )

    def adopt_on_inform(
        self, node: int, item: int, q_uncond: float, q_cond: float, other_adopted: bool
    ) -> bool:
        return self._inner.adopt_on_inform(
            node, item, q_uncond, q_cond, other_adopted
        )

    def reconsider(self, node: int, item: int, q_uncond: float, q_cond: float) -> bool:
        return self._inner.reconsider(node, item, q_uncond, q_cond)

    def informer_order(self, node: int, informers: Sequence[tuple[int, int]]) -> list[int]:
        return self._inner.informer_order(node, informers)

    def seed_a_first(self, node: int) -> bool:
        return self._inner.seed_a_first(node)


def check_shared_topology(graph_a: DiGraph, graph_b: DiGraph) -> None:
    """Raise :class:`GraphError` unless both graphs share nodes and edges.

    The product-dependent model is "one topology, two probability
    vectors"; everything keyed by edge id must agree between the views.
    """
    if (
        graph_a.num_nodes != graph_b.num_nodes
        or graph_a.num_edges != graph_b.num_edges
        or not np.array_equal(graph_a.edge_sources, graph_b.edge_sources)
        or not np.array_equal(graph_a.edge_targets, graph_b.edge_targets)
    ):
        raise GraphError(
            "product-dependent simulation requires graphs with identical "
            "topology (only the probability vectors may differ)"
        )


def simulate_product_dependent(
    graph_a: DiGraph,
    graph_b: DiGraph,
    gaps: GAP,
    seeds_a: Iterable[int],
    seeds_b: Iterable[int],
    *,
    rng: SeedLike = None,
    source: Optional[RandomnessSource] = None,
) -> DiffusionOutcome:
    """Com-IC with product-dependent edge probabilities (§8 extension).

    ``graph_a`` and ``graph_b`` must share topology (same nodes and edge
    list); their probability vectors give ``p_A`` and ``p_B``.  Pass
    ``source`` to drive the randomness explicitly (e.g. a reusable
    :class:`~repro.models.sources.WorldSource` for paired runs).
    """
    check_shared_topology(graph_a, graph_b)
    inner = source if source is not None else CoinSource(rng)
    adapter = ProductDependentSource(inner, graph_b.edge_probabilities)
    return simulate(graph_a, gaps, seeds_a, seeds_b, source=adapter)
