"""Node-level automaton states (paper §3, Fig. 1).

W.r.t. each item, a node is in exactly one of four states.  The joint state
space has 16 combinations but only 11 are reachable from (idle, idle); the
five unreachable ones are listed in Appendix A.1 of the paper and exported
here as :data:`UNREACHABLE_JOINT_STATES` so tests can assert the invariant.
"""

from __future__ import annotations

import enum


class ItemState(enum.IntEnum):
    """State of one node with respect to one item.

    Transitions (Fig. 1):

    * ``IDLE -> ADOPTED`` with probability ``q_{X|∅}`` or ``q_{X|Y}``
      depending on whether the other item ``Y`` is adopted;
    * ``IDLE -> SUSPENDED`` on a failed unconditional test;
    * ``IDLE -> REJECTED`` on a failed conditional test (other item adopted);
    * ``SUSPENDED -> ADOPTED`` via reconsideration with probability ``rho``;
    * ``SUSPENDED -> REJECTED`` on failed reconsideration.

    ``ADOPTED`` and ``REJECTED`` are terminal.
    """

    IDLE = 0
    SUSPENDED = 1
    ADOPTED = 2
    REJECTED = 3


#: Joint states (state w.r.t. A, state w.r.t. B) proven unreachable from the
#: initial (IDLE, IDLE) state — paper Appendix A.1, Lemmas 9 and 10.
UNREACHABLE_JOINT_STATES: frozenset[tuple[ItemState, ItemState]] = frozenset(
    {
        (ItemState.IDLE, ItemState.REJECTED),
        (ItemState.SUSPENDED, ItemState.REJECTED),
        (ItemState.REJECTED, ItemState.IDLE),
        (ItemState.REJECTED, ItemState.SUSPENDED),
        (ItemState.REJECTED, ItemState.REJECTED),
    }
)


def is_terminal(state: ItemState) -> bool:
    """Whether ``state`` admits no further transitions."""
    return state in (ItemState.ADOPTED, ItemState.REJECTED)
