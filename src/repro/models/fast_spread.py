"""Vectorised Monte-Carlo spread estimation for the RR-SIM regime.

Under one-way complementarity (``q_{A|∅} <= q_{A|B}``, ``q_{B|∅} =
q_{B|A}``) the Com-IC outcome is *timing-free* (the path condition behind
Theorem 7): B's final adopter set is independent of A (Lemma 3), and a
node ends A-adopted iff a live-edge path from the A-seeds reaches it
through nodes ``w`` satisfying::

    alpha_A(w) < q_{A|B}   and   ( alpha_A(w) < q_{A|∅}  or  w in B-final )

— whether B arrives before or after the A information only shifts *when*
the node adopts (suspension + reconsideration), never *whether*.

That reduces a run to two reachability sweeps over one eagerly-sampled
world, which numpy executes with batched frontier gathers instead of the
general engine's per-inform Python loop (the "careful vectorization" the
model's Monte-Carlo cost profile demands).  Each run samples the world
eagerly: ``O(n + m)`` vector draws, shared by both sweeps so an edge keeps
one liveness coin across items, exactly as in the model.

:func:`fast_estimate_spread_one_way` is validated against the exact
enumeration oracle and the general engine in
``tests/models/test_fast_spread.py``; the speedup is quantified by
``benchmarks/bench_ablations.py``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import RegimeError, SeedSetError
from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.models.ic import gather_out_edges
from repro.models.spread import SpreadEstimate, _summarize
from repro.rng import SeedLike, make_rng


def _check_one_way(gaps: GAP) -> None:
    if not gaps.is_one_way_complementarity_for_a:
        raise RegimeError(
            "the vectorised estimator requires one-way complementarity "
            f"(q_A|0 <= q_A|B and q_B|0 = q_B|A); got {gaps}"
        )


def _seed_array(graph: DiGraph, seeds: Iterable[int], label: str) -> np.ndarray:
    out: list[int] = []
    seen: set[int] = set()
    for s in seeds:
        v = int(s)
        if not 0 <= v < graph.num_nodes:
            raise SeedSetError(f"{label} seed {v} out of range")
        if v not in seen:
            seen.add(v)
            out.append(v)
    return np.asarray(out, dtype=np.int64)


def _reachable(
    graph: DiGraph,
    seeds: np.ndarray,
    live: np.ndarray,
    enabled: np.ndarray,
) -> np.ndarray:
    """Nodes reachable from ``seeds`` via live edges through enabled nodes.

    Seeds count as adopted regardless of their own ``enabled`` flag (seeds
    bypass the NLA); non-seed nodes join iff enabled.
    """
    adopted = np.zeros(graph.num_nodes, dtype=bool)
    if seeds.size == 0:
        return adopted
    adopted[seeds] = True
    frontier = seeds
    while frontier.size:
        targets, _probs, eids = gather_out_edges(graph, frontier)
        if targets.size == 0:
            break
        hit = targets[live[eids]]
        fresh = hit[~adopted[hit] & enabled[hit]]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        adopted[fresh] = True
        frontier = fresh
    return adopted


def sample_one_way_outcome(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: np.ndarray,
    seeds_b: np.ndarray,
    gen: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """One world, both final adopter masks ``(a_adopted, b_adopted)``."""
    n, m = graph.num_nodes, graph.num_edges
    live = gen.random(m) < graph.edge_probabilities
    alpha_a = gen.random(n)
    alpha_b = gen.random(n)
    b_adopted = _reachable(graph, seeds_b, live, alpha_b < gaps.q_b)
    a_enabled = alpha_a < np.where(b_adopted, gaps.q_a_given_b, gaps.q_a)
    a_adopted = _reachable(graph, seeds_a, live, a_enabled)
    return a_adopted, b_adopted


def fast_estimate_spread_one_way(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: Iterable[int],
    seeds_b: Iterable[int],
    *,
    runs: int = 1000,
    rng: SeedLike = None,
    item: str = "a",
) -> SpreadEstimate:
    """Vectorised drop-in for :func:`repro.models.spread.estimate_spread`
    in the one-way-complementarity regime."""
    _check_one_way(gaps)
    if item not in ("a", "b"):
        raise ValueError(f"item must be 'a' or 'b', got {item!r}")
    gen = make_rng(rng)
    a_seeds = _seed_array(graph, seeds_a, "A")
    b_seeds = _seed_array(graph, seeds_b, "B")
    values = np.empty(runs, dtype=np.float64)
    for i in range(runs):
        a_adopted, b_adopted = sample_one_way_outcome(
            graph, gaps, a_seeds, b_seeds, gen
        )
        values[i] = a_adopted.sum() if item == "a" else b_adopted.sum()
    return _summarize(values)
