"""run_pipeline: cold/warm behaviour, cache invalidation, determinism."""

import json
import sqlite3

import pytest

from repro.errors import PipelineError
from repro.pipeline import (
    DEBUG_DB_FILE,
    PipelineDebugDB,
    run_pipeline,
)

from .conftest import TRUTH, make_config


class TestColdRun:
    def test_all_stages_ran(self, pipeline_runs):
        _workdir, cold, _warm = pipeline_runs
        assert [s.stage for s in cold.stages] == ["fit_edges", "fit_gap", "query"]
        assert all(s.status == "ran" for s in cold.stages)
        assert cold.stages_run == 3 and cold.stages_skipped == 0

    def test_fitted_graph_carries_learned_probabilities(
        self, pipeline_runs, graph
    ):
        _workdir, cold, _warm = pipeline_runs
        assert cold.fitted_graph.num_edges == graph.num_edges
        probs = cold.fitted_graph.edge_probabilities
        assert ((probs >= 0.0) & (probs <= 1.0)).all()

    def test_em_diagnostics_attached(self, pipeline_runs):
        _workdir, cold, _warm = pipeline_runs
        assert cold.em is not None
        assert len(cold.em.log_likelihoods) == cold.em.iterations + 1

    def test_learned_gap_contains_truth(self, pipeline_runs):
        _workdir, cold, _warm = pipeline_runs
        assert cold.learned_gap.contains_truth(TRUTH, slack=2.0)

    def test_query_answered(self, pipeline_runs):
        _workdir, cold, _warm = pipeline_runs
        assert len(cold.results) == 1
        assert len(cold.results[0].seeds) == 2

    def test_result_summary_is_json(self, pipeline_runs):
        _workdir, cold, _warm = pipeline_runs
        payload = json.loads(json.dumps(cold.to_dict()))
        assert payload["run_id"] == cold.run_id
        assert payload["stages_run"] == 3


class TestWarmRun:
    def test_stages_one_and_two_cached(self, pipeline_runs):
        _workdir, _cold, warm = pipeline_runs
        statuses = {s.stage: s.status for s in warm.stages}
        assert statuses == {
            "fit_edges": "cached", "fit_gap": "cached", "query": "ran",
        }
        assert warm.stages_skipped == 2

    def test_warm_run_reproduces_cold_outputs(self, pipeline_runs):
        _workdir, cold, warm = pipeline_runs
        assert warm.results[0].seeds == cold.results[0].seeds
        assert warm.learned_gap.gap == cold.learned_gap.gap
        by_stage_cold = {s.stage: s.output_digest for s in cold.stages}
        by_stage_warm = {s.stage: s.output_digest for s in warm.stages}
        assert by_stage_cold == by_stage_warm


class TestInvalidation:
    def test_changed_em_knob_recomputes_edges_only(
        self, graph, log, episodes, pipeline_runs
    ):
        workdir, _cold, _warm = pipeline_runs
        bumped = make_config(em_max_iterations=26)
        result = run_pipeline(
            graph, log, bumped, episodes=episodes, workdir=workdir
        )
        statuses = {s.stage: s.status for s in result.stages}
        assert statuses["fit_edges"] == "ran"      # key includes the knob
        assert statuses["fit_gap"] == "cached"     # untouched by EM knobs

    def test_changed_log_recomputes_gap(
        self, graph, episodes, pipeline_runs
    ):
        from repro.learning import generate_synthetic_log

        workdir, _cold, _warm = pipeline_runs
        other_log = generate_synthetic_log(
            [("a", "b", TRUTH)], num_users=800, rng=6
        )
        result = run_pipeline(
            graph, other_log, make_config(),
            episodes=episodes, workdir=workdir,
        )
        statuses = {s.stage: s.status for s in result.stages}
        assert statuses["fit_edges"] == "cached"   # EM key ignores the log
        assert statuses["fit_gap"] == "ran"


class TestFailures:
    def test_em_backend_without_episodes(self, graph, log, tmp_path):
        with pytest.raises(PipelineError, match="episode"):
            run_pipeline(graph, log, make_config(), workdir=tmp_path)
        db = PipelineDebugDB(tmp_path / DEBUG_DB_FILE)
        run = db.runs()[0]
        assert run["status"] == "failed"
        assert "fit_edges" in run["error"]
        stages = db.stages(run["run_id"])
        assert [s["status"] for s in stages] == ["failed"]
        db.close()

    def test_unlearnable_item_pair(self, graph, log, episodes, tmp_path):
        from repro.errors import EstimationError

        config = make_config(item_a="nope", item_b="b")
        with pytest.raises(EstimationError):
            run_pipeline(
                graph, log, config, episodes=episodes, workdir=tmp_path
            )
        db = PipelineDebugDB(tmp_path / DEBUG_DB_FILE)
        run = db.runs()[0]
        assert run["status"] == "failed" and "fit_gap" in run["error"]
        db.close()


#: timing-free projections used by the determinism test below.
_STAGE_COLS = "stage, status, input_digest, output_digest, detail"
_DETERMINISTIC_QUERIES = (
    f"SELECT {_STAGE_COLS} FROM stages ORDER BY stage",
    "SELECT iteration, log_likelihood FROM em_trace ORDER BY iteration",
    "SELECT edge_id, source, target, probability, observations"
    " FROM edge_fits ORDER BY edge_id",
    "SELECT parameter, value, halfwidth, ci_lo, ci_hi, samples,"
    " true_value, inside_ci FROM gap_fits ORDER BY parameter",
    "SELECT query_index, objective, query_json, seeds_json, estimate,"
    " method, engine FROM query_results ORDER BY query_index",
)


class TestDeterminism:
    def test_same_seed_gives_identical_debug_rows(
        self, graph, log, episodes, tmp_path
    ):
        """Same inputs + seed => byte-identical stage rows in fresh workdirs."""
        rows = []
        for name in ("one", "two"):
            workdir = tmp_path / name
            run_pipeline(
                graph, log, make_config(), episodes=episodes,
                workdir=workdir, truth=TRUTH,
            )
            conn = sqlite3.connect(workdir / DEBUG_DB_FILE)
            try:
                rows.append(
                    [
                        conn.execute(sql).fetchall()
                        for sql in _DETERMINISTIC_QUERIES
                    ]
                )
            finally:
                conn.close()
        assert rows[0] == rows[1]
        assert any(table for table in rows[0])  # the projections saw data
