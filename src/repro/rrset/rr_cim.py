"""RR-CIM: RR-set generation for CompInfMax (paper Algorithm 4, §6.3).

Valid regime (Theorem 8): mutual complementarity with ``q_{B|A} = 1``.
Here A and B genuinely interact, so resolving the world requires a richer
forward labeling from the fixed A-seed set (Eq. 4): each touched node gets
one of

* ``A-adopted``   — adopts A from the seeds alone;
* ``A-rejected``  — ``alpha_A > q_{A|B}``: can never adopt A;
* ``A-suspended`` — informed of A by an adopted node but needs B's boost;
* ``A-potential`` — would be informed of A only if some upstream suspended
  node were unlocked by B (information *potentially* flows through
  suspended nodes).

Labels strengthen monotonically (none < potential < suspended < adopted),
so the labeling runs as a worklist fixpoint with re-enqueue on promotion —
this realises the paper's "revisit and promote" remark.

The RR-set of a root ``v`` (empty unless ``v`` is suspended or potential)
is found by a primary backward search over AB-diffusible potential nodes,
collecting suspended nodes (Cases 1–2), launching secondary backward
searches through B-diffusible nodes from AB-diffusible suspended ones
(Case 1), and applying the zig-zag check of Case 4 to potential,
non-AB-diffusible nodes.

Local diffusibility predicates (§6.3)::

    AB-diffusible(v):  alpha_A <= q_{A|∅}  or
                       (q_{A|∅} < alpha_A <= q_{A|B} and alpha_B <= q_{B|∅})
    B-diffusible(v):   alpha_B <= q_{B|∅}  or  v labeled A-adopted

Batched fast path
-----------------

:meth:`RRCimGenerator.generate_batch` runs Algorithm 4 for a whole chunk
of independent worlds at once.  The four-label forward pass becomes one
level-synchronous sweep over a flat ``(chunk member, node)`` uint8 state
array: two bits hold the label (none < potential < suspended < adopted),
one bit the terminal rejection flag, and two 2-bit fields memoise each
node's lazily-drawn ``alpha_A`` category (below ``q_{A|∅}`` / between the
GAPs / at or above ``q_{A|B}``) and ``alpha_B`` outcome — the only facts
about the thresholds any phase ever reads.  Promotions re-enqueue exactly
like the oracle's worklist (a node promoted to A-adopted re-expands, since
its targets may now strengthen), so the sweep converges to the same
monotone fixpoint.

The backward half then runs three more bulk sweeps sharing the same state:
the primary searches of all roots, one *multi-source* reverse sweep for
every Case-1 secondary search (the union of per-start searches, valid
because exploration from a node is a function of the memoised world
alone), and per-candidate Case-4 zig-zag forward/backward sweeps laid out
as independent lanes.  Because sub-searches of one world may re-test an
edge, all liveness coins go through a shared
:class:`~repro.rrset.pool.ChunkCoinMemo` — the batched realisation of the
oracle's memoised ``WorldSource`` — so the output distribution matches
:meth:`RRCimGenerator.generate` exactly; ``tests/rrset/
test_batch_equivalence.py`` verifies fixed-world equality (Cases 1–4) and
aggregate frequencies.  Chunks adapt to the observed coin-record size so
memory stays bounded on worlds with large A-reachable regions.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

import numpy as np

from repro.errors import RegimeError
from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.models.possible_world import PossibleWorld
from repro.models.sources import ITEM_A, ITEM_B, WorldSource
from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator
from repro.rrset.pool import (
    ChunkCoinMemo,
    RRSetPool,
    expand_csr,
    touches_from_keys,
    unique_inverse,
    unique_keys,
)
from repro.rrset.sweep import make_flags, make_values

# Forward-labeling labels, ordered by strength (rejected is terminal).
LABEL_REJECTED = -1
LABEL_NONE = 0
LABEL_POTENTIAL = 1
LABEL_SUSPENDED = 2
LABEL_ADOPTED = 3

# Batched-kernel bitfield over one uint8 per (chunk member, node).  Bits
# 0-1 hold the label (LABEL_NONE .. LABEL_ADOPTED), bit 2 the terminal
# rejection flag (the oracle's LABEL_REJECTED), bits 3-4 the memoised
# alpha_A category and bits 5-6 the memoised alpha_B outcome.
_LBL_MASK = np.uint8(0b11)
_REJ_FLAG = np.uint8(1 << 2)
_AA_SHIFT = 3
_AA_MASK = np.uint8(0b11 << _AA_SHIFT)  # 0 unknown / 1 low / 2 mid / 3 high
_AB_SHIFT = 5
_AB_MASK = np.uint8(0b11 << _AB_SHIFT)  # 0 unknown / 1 pass / 2 fail

#: Target size of one chunk's edge-coin memo (entries) — bounds batch
#: memory on worlds with large A-reachable regions (ROADMAP sparse-state
#: item: the record, not the dense state, is what grows with the region).
_COIN_BUDGET = 16 << 20


def check_rr_cim_regime(gaps: GAP) -> None:
    """Raise :class:`RegimeError` unless Theorem 8's conditions hold."""
    if not gaps.is_rr_cim_regime:
        raise RegimeError(
            "RR-CIM requires mutual complementarity with q_{B|A} = 1; "
            f"got {gaps}"
        )


def forward_label_a_status(
    graph: DiGraph,
    world: WorldSource,
    gaps: GAP,
    seeds_a: Iterable[int],
) -> dict[int, int]:
    """Eq. (4) forward labeling from the A-seeds as a monotone fixpoint.

    Returns a sparse label map; untouched nodes are implicitly LABEL_NONE
    (A-idle, unreachable even potentially).
    """
    label: dict[int, int] = {}
    queue: deque[int] = deque()
    for s in seeds_a:
        s = int(s)
        if label.get(s) != LABEL_ADOPTED:
            label[s] = LABEL_ADOPTED
            queue.append(s)
    while queue:
        u = queue.popleft()
        lab_u = label.get(u, LABEL_NONE)
        if lab_u in (LABEL_NONE, LABEL_REJECTED):
            continue  # stale entry demoted before dequeue cannot occur, but be safe
        targets, probs, eids = graph.out_edges(u)
        for idx in range(targets.size):
            v = int(targets[idx])
            current = label.get(v, LABEL_NONE)
            if current in (LABEL_ADOPTED, LABEL_REJECTED):
                continue
            if not world.edge_live(int(eids[idx]), float(probs[idx])):
                continue
            alpha_a = world.alpha(v, ITEM_A)
            if alpha_a >= gaps.q_a_given_b:
                label[v] = LABEL_REJECTED
                continue
            if lab_u == LABEL_ADOPTED:
                candidate = LABEL_ADOPTED if alpha_a < gaps.q_a else LABEL_SUSPENDED
            else:
                candidate = LABEL_POTENTIAL
            if candidate > current:
                label[v] = candidate
                queue.append(v)
    return label


class RRCimGenerator(RRSetGenerator):
    """Random RR-set sampler for CompInfMax (Algorithm 4)."""

    # All liveness coins flow through the chunk memo (forward labeling
    # records, backward phases replay), so its key record is the exact
    # per-member edge-touch signature for delta repair.
    touch_mode = "recorded"

    def __init__(self, graph: DiGraph, gaps: GAP, seeds_a: Iterable[int]) -> None:
        super().__init__(graph)
        check_rr_cim_regime(gaps)
        self._gaps = gaps
        self._seeds_a = [int(s) for s in seeds_a]
        for s in self._seeds_a:
            if not 0 <= s < graph.num_nodes:
                raise RegimeError(f"A-seed {s} out of range")

    @property
    def gaps(self) -> GAP:
        """The GAP configuration (Q+ with ``q_{B|A} = 1``)."""
        return self._gaps

    @property
    def seeds_a(self) -> list[int]:
        """The fixed A-seed set."""
        return list(self._seeds_a)

    # ------------------------------------------------------------------
    # Diffusibility predicates (local node state in this world)
    # ------------------------------------------------------------------
    def _ab_diffusible(self, world: WorldSource, v: int) -> bool:
        alpha_a = world.alpha(v, ITEM_A)
        if alpha_a < self._gaps.q_a:
            return True
        return alpha_a < self._gaps.q_a_given_b and (
            world.alpha(v, ITEM_B) < self._gaps.q_b
        )

    def _b_diffusible(self, world: WorldSource, v: int, label: dict[int, int]) -> bool:
        if world.alpha(v, ITEM_B) < self._gaps.q_b:
            return True
        # An A-adopted node adopts B on being informed because q_{B|A} = 1.
        return label.get(v, LABEL_NONE) == LABEL_ADOPTED

    # ------------------------------------------------------------------
    # Secondary searches
    # ------------------------------------------------------------------
    def _secondary_backward_b(
        self,
        world: WorldSource,
        label: dict[int, int],
        start: int,
        rr_set: set[int],
    ) -> None:
        """Case 1: every node that can push B to ``start`` joins the RR-set.

        Reverse BFS through B-diffusible nodes; a non-B-diffusible node is
        still added (as a seed it adopts B unconditionally) but not expanded.
        """
        graph = self._graph
        visited = {start}
        queue: deque[int] = deque([start])
        while queue:
            x = queue.popleft()
            sources, probs, eids = graph.in_edges(x)
            for idx in range(sources.size):
                w = int(sources[idx])
                if w in visited:
                    continue
                if not world.edge_live(int(eids[idx]), float(probs[idx])):
                    continue
                visited.add(w)
                rr_set.add(w)
                if self._b_diffusible(world, w, label):
                    queue.append(w)

    def _case4_zigzag(
        self, world: WorldSource, label: dict[int, int], u: int
    ) -> bool:
        """Case 4: does seeding B at ``u`` unlock a suspended node that
        feeds A (and B) back to ``u``?

        Forward search ``Sf``: B-diffusible nodes reachable from ``u``
        through B-diffusible nodes (these would adopt B when ``u`` is the
        B-seed).  Backward search ``Sb``: nodes that can relay a joint A+B
        wave to ``u`` — A-adopted nodes relay unconditionally (``q_{B|A}=1``)
        and suspended/potential nodes relay when AB-diffusible.  ``u``
        qualifies iff some A-suspended node lies in both.
        """
        graph = self._graph
        forward: set[int] = set()
        fvisited = {u}
        queue: deque[int] = deque([u])
        while queue:
            x = queue.popleft()
            targets, probs, eids = graph.out_edges(x)
            for idx in range(targets.size):
                v = int(targets[idx])
                if v in fvisited:
                    continue
                if not world.edge_live(int(eids[idx]), float(probs[idx])):
                    continue
                fvisited.add(v)
                if self._b_diffusible(world, v, label):
                    forward.add(v)
                    queue.append(v)
        if not forward:
            return False
        backward: set[int] = set()
        bvisited = {u}
        queue = deque([u])
        while queue:
            x = queue.popleft()
            sources, probs, eids = graph.in_edges(x)
            for idx in range(sources.size):
                w = int(sources[idx])
                if w in bvisited:
                    continue
                if not world.edge_live(int(eids[idx]), float(probs[idx])):
                    continue
                bvisited.add(w)
                lab_w = label.get(w, LABEL_NONE)
                relays = lab_w == LABEL_ADOPTED or (
                    lab_w in (LABEL_POTENTIAL, LABEL_SUSPENDED)
                    and self._ab_diffusible(world, w)
                )
                if relays:
                    backward.add(w)
                    queue.append(w)
        return any(
            label.get(x, LABEL_NONE) == LABEL_SUSPENDED for x in forward & backward
        )

    # ------------------------------------------------------------------
    # RR-set generation
    # ------------------------------------------------------------------
    def generate(
        self,
        *,
        rng: SeedLike = None,
        root: Optional[int] = None,
        world=None,
        labels: Optional[dict[int, int]] = None,
    ) -> np.ndarray:
        """``world`` injects a fixed possible world (tests/ablations).

        ``labels`` injects a precomputed forward label map (as returned by
        :func:`forward_label_a_status` for the *same* world and A-seeds),
        so repeated fixed-world calls — the batch-equivalence tests sweep
        every root of one world — skip the per-call forward pass instead
        of recomputing it from scratch.
        """
        gen = make_rng(rng)
        if root is None:
            root = int(gen.integers(0, self._graph.num_nodes))
        if world is None:
            world = WorldSource(gen)
        graph = self._graph
        label = (
            labels
            if labels is not None
            else forward_label_a_status(graph, world, self._gaps, self._seeds_a)
        )
        root_label = label.get(root, LABEL_NONE)
        if root_label not in (LABEL_SUSPENDED, LABEL_POTENTIAL):
            # Already adopted, permanently rejected, or unreachable even
            # with B's help: no B-seed changes the root's A status.
            return np.empty(0, dtype=np.int64)

        rr_set: set[int] = set()
        visited = {root}
        queue: deque[int] = deque([root])
        while queue:
            u = queue.popleft()
            lab_u = label.get(u, LABEL_NONE)
            if lab_u == LABEL_SUSPENDED:
                rr_set.add(u)
                if self._ab_diffusible(world, u):
                    # Case 1: remote B-seeds can unlock u.
                    self._secondary_backward_b(world, label, u, rr_set)
                # Case 2 (not AB-diffusible): only u itself as a B-seed works.
            elif lab_u == LABEL_POTENTIAL:
                if self._ab_diffusible(world, u):
                    # Case 3: u transits A+B; continue the primary search.
                    sources, probs, eids = graph.in_edges(u)
                    for idx in range(sources.size):
                        w = int(sources[idx])
                        if w in visited:
                            continue
                        if world.edge_live(int(eids[idx]), float(probs[idx])):
                            visited.add(w)
                            queue.append(w)
                else:
                    # Case 4: u blocks the wave unless seeding B at u
                    # zig-zags through a suspended unlocker.
                    if self._case4_zigzag(world, label, u):
                        rr_set.add(u)
            # Adopted / rejected / untouched nodes end the primary branch.
        return np.fromiter(rr_set, dtype=np.int64, count=len(rr_set))

    # ------------------------------------------------------------------
    # Batched fast path (see module docstring)
    # ------------------------------------------------------------------
    def _edge_live_batch(
        self,
        members: np.ndarray,
        eids: np.ndarray,
        probs: np.ndarray,
        coins: ChunkCoinMemo,
        gen: np.random.Generator,
        world: Optional[PossibleWorld],
    ) -> np.ndarray:
        """Memoised liveness of one bulk edge batch (``members`` parallel
        to ``eids``); the batched ``WorldSource.edge_live``."""
        if world is not None:
            return world.live[eids]
        return coins.lookup_or_draw(
            members * self._graph.num_edges + eids, probs, gen
        )

    def _alpha_a_cat(
        self,
        state,
        keys: np.ndarray,
        gen: np.random.Generator,
        world: Optional[PossibleWorld],
    ) -> np.ndarray:
        """Memoised ``alpha_A`` category of *unique* (member, node) keys:
        1 below ``q_{A|∅}``, 2 between the GAPs, 3 at or above ``q_{A|B}``
        — the only facts about the threshold any phase reads."""
        gaps = self._gaps
        if world is not None:
            alpha = world.alpha_a[keys % self._graph.num_nodes]
            return np.where(
                alpha < gaps.q_a, 1, np.where(alpha < gaps.q_a_given_b, 2, 3)
            ).astype(np.uint8)
        st = state.get(keys)
        cat = (st & _AA_MASK) >> np.uint8(_AA_SHIFT)
        unknown = np.flatnonzero(cat == 0)
        if unknown.size:
            draw = gen.random(unknown.size)
            fresh = np.where(
                draw < gaps.q_a, 1, np.where(draw < gaps.q_a_given_b, 2, 3)
            ).astype(np.uint8)
            cat[unknown] = fresh
            state.put(keys[unknown], st[unknown] | (fresh << np.uint8(_AA_SHIFT)))
        return cat

    def _alpha_b_pass(
        self,
        state,
        keys: np.ndarray,
        gen: np.random.Generator,
        world: Optional[PossibleWorld],
    ) -> np.ndarray:
        """Memoised ``alpha_B < q_{B|∅}`` outcome of *unique* keys."""
        gaps = self._gaps
        if world is not None:
            return world.alpha_b[keys % self._graph.num_nodes] < gaps.q_b
        st = state.get(keys)
        stat = (st & _AB_MASK) >> np.uint8(_AB_SHIFT)
        unknown = np.flatnonzero(stat == 0)
        if unknown.size:
            fresh = np.where(
                gen.random(unknown.size) < gaps.q_b, 1, 2
            ).astype(np.uint8)
            stat[unknown] = fresh
            state.put(keys[unknown], st[unknown] | (fresh << np.uint8(_AB_SHIFT)))
        return stat == 1

    def _ab_diffusible_mask(
        self, state, keys, gen, world: Optional[PossibleWorld]
    ) -> np.ndarray:
        """Bulk AB-diffusibility; keys may repeat across zig-zag lanes, so
        each memoised variable resolves once per distinct key."""
        ukeys, inverse = unique_inverse(keys)
        cat = self._alpha_a_cat(state, ukeys, gen, world)
        ok = cat == 1
        mid = np.flatnonzero(cat == 2)
        if mid.size:
            ok[mid] = self._alpha_b_pass(state, ukeys[mid], gen, world)
        return ok[inverse]

    def _b_diffusible_mask(
        self, state, keys, gen, world: Optional[PossibleWorld]
    ) -> np.ndarray:
        """Bulk B-diffusibility (``alpha_B`` pass, or A-adopted since
        ``q_{B|A} = 1``); duplicate-key safe like the AB variant."""
        ukeys, inverse = unique_inverse(keys)
        ok = (state.get(ukeys) & _LBL_MASK) == LABEL_ADOPTED
        rest = np.flatnonzero(~ok)
        if rest.size:
            ok[rest] = self._alpha_b_pass(state, ukeys[rest], gen, world)
        return ok[inverse]

    def _edge_live_record(
        self, members, eids, probs, coins, gen, world: Optional[PossibleWorld]
    ) -> np.ndarray:
        """First-flip edge liveness: bulk fresh draws recorded append-only.

        Only valid when every key is provably untested so far — the
        forward-labeling phases qualify because each phase expands each
        node at most once and their expansion sets are disjoint.
        """
        if world is not None:
            return world.live[eids]
        keys = members * self._graph.num_edges + eids
        live = gen.random(keys.size) < probs
        coins.record(keys, live)
        return live

    def _forward_label_batch(
        self, b, state, coins, gen, world: Optional[PossibleWorld]
    ) -> None:
        """Eq. (4) labeling of ``b`` chunk worlds in two one-pass sweeps.

        The oracle runs a promote-and-requeue worklist, but the fixpoint
        factors: an A-adopted label only ever derives from adopted
        sources, so **Phase A** resolves the adopted closure first (each
        cat-mid target it reaches is thereby *final* suspended), and
        **Phase B** floods the potential wave from every suspended node.
        Each phase expands a node at most once and the phases' expansion
        sets are disjoint (adopted vs. suspended/potential), so every
        edge coin is a first flip — recorded append-only, no lookups —
        and no promotion can ever invalidate an earlier level.
        """
        graph = self._graph
        n = graph.num_nodes
        out_indptr, out_dst, out_prob, out_eid = graph.csr_out()
        # Dedupe like the oracle's label guard: a seed listed twice must
        # not expand (and flip coins for) its out-edges twice.
        seeds = np.unique(np.asarray(self._seeds_a, dtype=np.int64))
        if seeds.size == 0:
            return
        frontier = (
            np.repeat(np.arange(b, dtype=np.int64), seeds.size) * n
            + np.tile(seeds, b)
        )
        state.or_(frontier, np.uint8(LABEL_ADOPTED))
        susp_frags: list[np.ndarray] = []
        # Phase A: adopted closure; marks suspended / rejected boundaries.
        while frontier.size:
            fmember, fnode = np.divmod(frontier, n)
            reps, flat = expand_csr(out_indptr, fnode)
            if flat.size == 0:
                break
            live = self._edge_live_record(
                fmember[reps], out_eid[flat], out_prob[flat], coins, gen, world
            )
            tkeys = fmember[reps[live]] * n + out_dst[flat[live]]
            if tkeys.size == 0:
                break
            tkeys = unique_keys(tkeys)
            st = state.get(tkeys)
            open_ = ((st & _LBL_MASK) != LABEL_ADOPTED) & ((st & _REJ_FLAG) == 0)
            tkeys = tkeys[open_]
            if tkeys.size == 0:
                break
            cat = self._alpha_a_cat(state, tkeys, gen, world)
            state.or_(tkeys[cat == 3], _REJ_FLAG)  # alpha_A >= q_{A|B}: terminal
            low = tkeys[cat == 1]
            state.or_(low, np.uint8(LABEL_ADOPTED))
            mid = tkeys[cat == 2]
            if mid.size:
                fresh = mid[(state.get(mid) & _LBL_MASK) == LABEL_NONE]
                state.or_(fresh, np.uint8(LABEL_SUSPENDED))
                susp_frags.append(fresh)
            frontier = low
        # Phase B: the potential wave from every suspended node.
        frontier = (
            unique_keys(np.concatenate(susp_frags))
            if susp_frags
            else np.empty(0, dtype=np.int64)
        )
        while frontier.size:
            fmember, fnode = np.divmod(frontier, n)
            reps, flat = expand_csr(out_indptr, fnode)
            if flat.size == 0:
                break
            live = self._edge_live_record(
                fmember[reps], out_eid[flat], out_prob[flat], coins, gen, world
            )
            tkeys = fmember[reps[live]] * n + out_dst[flat[live]]
            if tkeys.size == 0:
                break
            tkeys = unique_keys(tkeys)
            st = state.get(tkeys)
            open_ = ((st & _LBL_MASK) == LABEL_NONE) & ((st & _REJ_FLAG) == 0)
            tkeys = tkeys[open_]
            if tkeys.size == 0:
                break
            cat = self._alpha_a_cat(state, tkeys, gen, world)
            state.or_(tkeys[cat == 3], _REJ_FLAG)
            newpot = tkeys[cat != 3]
            state.or_(newpot, np.uint8(LABEL_POTENTIAL))
            frontier = newpot

    def _primary_batch(
        self, b, chunk_roots, state, coins, gen, world: Optional[PossibleWorld]
    ) -> tuple[list[np.ndarray], list[np.ndarray], list[np.ndarray]]:
        """Primary backward searches of all chunk roots in one sweep.

        Returns ``(rr_frags, sec_frags, zig_frags)``: flat (member, node)
        key fragments of suspended RR-members, Case-1 secondary-search
        starts, and Case-4 zig-zag candidates.
        """
        graph = self._graph
        n = graph.num_nodes
        in_indptr, in_src, in_prob, in_eid = graph.csr_in()
        ids = np.arange(b, dtype=np.int64)
        root_keys = ids * n + chunk_roots
        root_lab = state.get(root_keys) & _LBL_MASK
        alive = (root_lab == LABEL_POTENTIAL) | (root_lab == LABEL_SUSPENDED)
        frontier = root_keys[alive]
        visited = make_flags(b, n, state.kind)
        visited.mark(frontier)
        rr_frags: list[np.ndarray] = []
        sec_frags: list[np.ndarray] = []
        zig_frags: list[np.ndarray] = []
        while frontier.size:
            lab = state.get(frontier) & _LBL_MASK
            susp = frontier[lab == LABEL_SUSPENDED]
            if susp.size:
                rr_frags.append(susp)  # Cases 1-2: suspended nodes join
                ab = self._ab_diffusible_mask(state, susp, gen, world)
                if ab.any():
                    sec_frags.append(susp[ab])  # Case 1 starts
            pot = frontier[lab == LABEL_POTENTIAL]
            grow = pot
            if pot.size:
                ab = self._ab_diffusible_mask(state, pot, gen, world)
                blocked = pot[~ab]
                if blocked.size:
                    zig_frags.append(blocked)  # Case 4 candidates
                grow = pot[ab]  # Case 3: transit A+B, continue the search
            if grow.size == 0:
                break
            gmember, gnode = np.divmod(grow, n)
            reps, flat = expand_csr(in_indptr, gnode)
            if flat.size == 0:
                break
            live = self._edge_live_batch(
                gmember[reps], in_eid[flat], in_prob[flat], coins, gen, world
            )
            tkeys = visited.mark_new(
                gmember[reps[live]] * n + in_src[flat[live]]
            )
            if tkeys.size == 0:
                break
            frontier = tkeys
        return rr_frags, sec_frags, zig_frags

    def _secondary_batch(
        self, starts, state, coins, gen, world: Optional[PossibleWorld], b: int
    ) -> list[np.ndarray]:
        """Case-1 secondary searches as one multi-source reverse sweep.

        Valid as a union because exploration beyond a node is a function
        of the memoised world alone: whichever start reaches a node first,
        the nodes found beyond it are the same, so the per-start searches
        of the oracle and this multi-source sweep collect the same union.
        """
        graph = self._graph
        n = graph.num_nodes
        in_indptr, in_src, in_prob, in_eid = graph.csr_in()
        visited = make_flags(b, n, state.kind)
        visited.mark(starts)
        frontier = starts  # starts expand unconditionally, as in the oracle
        collected: list[np.ndarray] = []
        while frontier.size:
            fmember, fnode = np.divmod(frontier, n)
            reps, flat = expand_csr(in_indptr, fnode)
            if flat.size == 0:
                break
            live = self._edge_live_batch(
                fmember[reps], in_eid[flat], in_prob[flat], coins, gen, world
            )
            tkeys = visited.mark_new(
                fmember[reps[live]] * n + in_src[flat[live]]
            )
            if tkeys.size == 0:
                break
            collected.append(tkeys)  # every node that can push B joins
            bd = self._b_diffusible_mask(state, tkeys, gen, world)
            frontier = tkeys[bd]  # non-B-diffusible nodes join, don't expand
        return collected

    def _zigzag_batch(
        self, cand_keys, state, coins, gen, world: Optional[PossibleWorld]
    ) -> np.ndarray:
        """Case-4 checks for all candidates, each as an independent lane.

        Lanes of the same chunk member share its memoised coins and
        thresholds, so running them together (or not at all, once a lane's
        verdict is known) cannot change any outcome.  Returns the subset
        of ``cand_keys`` whose zig-zag succeeds.
        """
        graph = self._graph
        n = graph.num_nodes
        out_indptr, out_dst, out_prob, out_eid = graph.csr_out()
        in_indptr, in_src, in_prob, in_eid = graph.csr_in()
        passed = np.zeros(cand_keys.size, dtype=bool)
        # Three per-lane states (two visited maps + the Sf-suspended
        # mask), so lanes are budgeted at 3 dense bytes per (lane, node).
        lane_budget = self.sweep.chunk_size(
            n,
            state.kind,
            state_bytes_per_node=3,
            max_members=max(cand_keys.size, 1),
            warn=False,
        )
        for lo in range(0, cand_keys.size, lane_budget):
            keys = cand_keys[lo : lo + lane_budget]
            j = keys.size
            lane_member, lane_node = np.divmod(keys, n)
            lanes = np.arange(j, dtype=np.int64)
            # Forward sweep: Sf = B-diffusible nodes reachable from u.
            fvisited = make_flags(j, n, state.kind)
            fvisited.mark(lanes * n + lane_node)
            sf_susp = make_flags(j, n, state.kind)  # suspended members of Sf
            any_forward = np.zeros(j, dtype=bool)
            flane, fnode = lanes, lane_node
            while flane.size:
                reps, flat = expand_csr(out_indptr, fnode)
                if flat.size == 0:
                    break
                live = self._edge_live_batch(
                    lane_member[flane[reps]], out_eid[flat], out_prob[flat],
                    coins, gen, world,
                )
                lkeys = fvisited.mark_new(
                    flane[reps[live]] * n + out_dst[flat[live]]
                )
                if lkeys.size == 0:
                    break
                tlane, tnode = np.divmod(lkeys, n)
                mkeys = lane_member[tlane] * n + tnode
                bd = self._b_diffusible_mask(state, mkeys, gen, world)
                any_forward[tlane[bd]] = True
                lab = state.get(mkeys) & _LBL_MASK
                sf_susp.mark(lkeys[bd & (lab == LABEL_SUSPENDED)])
                fkeep = lkeys[bd]  # only B-diffusible nodes expand
                flane, fnode = np.divmod(fkeep, n)
            # Backward sweep: Sb = relays feeding a joint A+B wave to u;
            # only lanes whose forward set is non-empty can succeed.
            blane = lanes[any_forward]
            bnode = lane_node[any_forward]
            bvisited = make_flags(j, n, state.kind)
            bvisited.mark(blane * n + bnode)
            verdict = np.zeros(j, dtype=bool)
            while blane.size:
                reps, flat = expand_csr(in_indptr, bnode)
                if flat.size == 0:
                    break
                live = self._edge_live_batch(
                    lane_member[blane[reps]], in_eid[flat], in_prob[flat],
                    coins, gen, world,
                )
                lkeys = bvisited.mark_new(
                    blane[reps[live]] * n + in_src[flat[live]]
                )
                if lkeys.size == 0:
                    break
                tlane, tnode = np.divmod(lkeys, n)
                mkeys = lane_member[tlane] * n + tnode
                lab = state.get(mkeys) & _LBL_MASK
                relay = lab == LABEL_ADOPTED  # q_{B|A} = 1: relays anything
                maybe = np.flatnonzero(
                    (lab == LABEL_POTENTIAL) | (lab == LABEL_SUSPENDED)
                )
                if maybe.size:
                    relay[maybe] = self._ab_diffusible_mask(
                        state, mkeys[maybe], gen, world
                    )
                rkeys = lkeys[relay]
                rlane = tlane[relay]
                verdict[rlane[sf_susp.get(rkeys)]] = True  # suspended in Sf ∩ Sb
                alive = ~verdict[rlane]  # satisfied lanes stop expanding
                blane, bnode = np.divmod(rkeys[alive], n)
            passed[lo : lo + j] = verdict
        return cand_keys[passed]

    def generate_batch(
        self,
        count: int,
        *,
        rng: SeedLike = None,
        roots: Optional[np.ndarray] = None,
        out: Optional[RRSetPool] = None,
        world: Optional[PossibleWorld] = None,
    ) -> RRSetPool:
        """Vectorized batch sampling (see module docstring).

        ``world`` pins one eagerly-sampled possible world shared by every
        set in the batch (fixed-world equivalence tests); by default each
        set samples its own independent world lazily — coins and
        threshold categories materialise only for the edges and nodes the
        sweeps touch, exactly like the oracle's
        :class:`~repro.models.sources.WorldSource`.
        """
        gen = make_rng(rng)
        graph = self._graph
        n = graph.num_nodes
        pool = out if out is not None else RRSetPool(n)
        if roots is None:
            roots = self.random_roots(count, rng=gen)
        else:
            roots = np.asarray(roots, dtype=np.int64)
        if roots.size == 0:
            return pool
        # The sweep engine budgets the chunk's state (uint8 byte-field
        # plus bool visited per (member, node) dense); the coin memo
        # grows with the A-region's degree per world, which is only
        # known after sampling — start with a modest probe chunk and
        # re-size from the observed coins-per-world (PR-1's adaptive
        # chunking, here bounding the memo instead of a phase record).
        backend = self.sweep.resolve_backend(n)
        max_chunk = self.sweep.chunk_size(
            n, backend, state_bytes_per_node=2, max_members=4096
        )
        chunk = min(max_chunk, 128)
        start = 0
        while start < roots.size:
            chunk_roots = roots[start : start + chunk]
            b = chunk_roots.size
            start += b
            state = make_values(b, n, np.uint8, backend)
            coins = ChunkCoinMemo()
            self._forward_label_batch(b, state, coins, gen, world)
            rr_frags, sec_frags, zig_frags = self._primary_batch(
                b, chunk_roots, state, coins, gen, world
            )
            if sec_frags:
                rr_frags.extend(
                    self._secondary_batch(
                        np.concatenate(sec_frags), state, coins, gen, world, b
                    )
                )
            if zig_frags:
                zig = self._zigzag_batch(
                    np.concatenate(zig_frags), state, coins, gen, world
                )
                if zig.size:
                    rr_frags.append(zig)
            if rr_frags:
                mkeys = unique_keys(np.concatenate(rr_frags))
                member, node = np.divmod(mkeys, n)
                nodes = node.astype(np.int32)
                lengths = np.bincount(member, minlength=b).astype(np.int64)
            else:
                nodes = np.empty(0, dtype=np.int32)
                lengths = np.zeros(b, dtype=np.int64)
            touch_edges = touch_lengths = None
            if pool.track_touches and world is None:
                # Even all-empty chunks carry real coin records (the
                # forward labeling and reverse-A searches ran), so the
                # extraction must not be skipped on the empty path.
                touch_edges, touch_lengths = touches_from_keys(
                    coins.touched_keys(), graph.num_edges, b
                )
            pool.append_flat(
                nodes,
                lengths,
                roots=chunk_roots,
                touch_edges=touch_edges,
                touch_lengths=touch_lengths,
            )
            coins_per_member = max(coins.size / b, 1.0)
            chunk = int(np.clip(_COIN_BUDGET / coins_per_member, 1, max_chunk))
        return pool
