"""Benchmark: Figure 5 — A-spread vs |S_A| for SelfInfMax.

Shape check (paper): the RR curve dominates Random everywhere and is the
best or tied-best method at the full budget on every dataset.
"""

from repro.experiments import figure5_selfinfmax_spread


def bench_fig5_selfinfmax(benchmark, bench_scale, save_table):
    result = benchmark.pedantic(
        lambda: figure5_selfinfmax_spread(bench_scale), rounds=1, iterations=1
    )
    save_table(result, "figure5_selfinfmax_spread")
    for dataset in bench_scale.datasets:
        at_k = {
            r["method"]: r["a_spread"]
            for r in result.rows
            if r["dataset"] == dataset and r["num_seeds"] == bench_scale.k
        }
        assert at_k["RR"] >= at_k["Random"], dataset
