"""RR-SIM under product-dependent edge probabilities (§8 extension).

The paper's closing extension gives every edge two independent liveness
coins — ``p_A(u, v)`` for A-informs and ``p_B(u, v)`` for B-informs
(:mod:`repro.models.product_edges`).  Theorem 7's argument survives
unchanged in the one-way-complementarity regime: B's diffusion is still
independent of A-seeds (Lemma 3 never touches edge coins), so

* Phase II forward-labels the B-adopted set over *B-live* edges, and
* Phase III runs the backward A-search over *A-live* edges,

with the two liveness families sampled independently.  The generator
shares the ``(2e, 2e + 1)`` inner-edge-id convention of
:class:`~repro.models.product_edges.ProductDependentSource`, so a fixed
:class:`~repro.models.sources.WorldSource` drives the forward simulator
and this sampler identically — which is how the tests check activation
equivalence.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

import numpy as np

from repro.errors import RegimeError
from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.models.product_edges import check_shared_topology
from repro.models.sources import ITEM_A, ITEM_B, WorldSource
from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator
from repro.rrset.rr_sim import check_rr_sim_regime


class RRSimProductGenerator(RRSetGenerator):
    """RR-SIM sampler for the product-dependent-edges model.

    ``graph_a`` / ``graph_b`` carry ``p_A`` / ``p_B`` on a shared
    topology; GAPs must satisfy Theorem 7's one-way complementarity.
    """

    def __init__(
        self,
        graph_a: DiGraph,
        graph_b: DiGraph,
        gaps: GAP,
        seeds_b: Iterable[int],
    ) -> None:
        super().__init__(graph_a)
        check_shared_topology(graph_a, graph_b)
        check_rr_sim_regime(gaps)
        self._graph_b = graph_b
        self._gaps = gaps
        self._seeds_b = [int(s) for s in seeds_b]
        for s in self._seeds_b:
            if not 0 <= s < graph_a.num_nodes:
                raise RegimeError(f"B-seed {s} out of range")

    @property
    def graph_b(self) -> DiGraph:
        """The B-probability view of the shared topology."""
        return self._graph_b

    def _forward_label_b(self, world: WorldSource) -> set[int]:
        """B-adopted set over B-live edges (inner edge ids ``2e + 1``)."""
        q_b = self._gaps.q_b
        b_adopted: set[int] = set()
        queue: deque[int] = deque()
        for s in self._seeds_b:
            if s not in b_adopted:
                b_adopted.add(s)
                queue.append(s)
        while queue:
            u = queue.popleft()
            targets, probs, eids = self._graph_b.out_edges(u)
            for idx in range(targets.size):
                v = int(targets[idx])
                if v in b_adopted:
                    continue
                if not world.edge_live(2 * int(eids[idx]) + 1, float(probs[idx])):
                    continue
                if world.alpha(v, ITEM_B) < q_b:
                    b_adopted.add(v)
                    queue.append(v)
        return b_adopted

    def _backward_search_a(
        self, world: WorldSource, root: int, b_adopted: set[int]
    ) -> np.ndarray:
        """Backward A-search over A-live edges (inner edge ids ``2e``)."""
        gaps = self._gaps
        rr_set: list[int] = []
        visited = {root}
        queue: deque[int] = deque([root])
        while queue:
            u = queue.popleft()
            rr_set.append(u)
            threshold = gaps.q_a_given_b if u in b_adopted else gaps.q_a
            if world.alpha(u, ITEM_A) >= threshold:
                continue
            sources, probs, eids = self._graph.in_edges(u)
            for idx in range(sources.size):
                w = int(sources[idx])
                if w in visited:
                    continue
                if world.edge_live(2 * int(eids[idx]), float(probs[idx])):
                    visited.add(w)
                    queue.append(w)
        return np.asarray(rr_set, dtype=np.int64)

    def generate(
        self, *, rng: SeedLike = None, root: Optional[int] = None, world=None
    ) -> np.ndarray:
        """``world`` injects a fixed possible world (tests/ablations)."""
        gen = make_rng(rng)
        if root is None:
            root = int(gen.integers(0, self._graph.num_nodes))
        if world is None:
            world = WorldSource(gen)
        b_adopted = self._forward_label_b(world)
        return self._backward_search_a(world, root, b_adopted)
