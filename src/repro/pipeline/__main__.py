"""``python -m repro.pipeline`` — run or inspect pipelines from the shell.

Two subcommands::

    python -m repro.pipeline run --graph edges.txt --log log.tsv \\
        [--episodes eps.npz] [--config config.json] --workdir runs/demo \\
        [--item-a A --item-b B] [--backend em|goyal] [--seed N] \\
        [--truth q_a,q_a_given_b,q_b,q_b_given_a]

        Runs the full pipeline and prints the JSON run summary
        (PipelineResult.to_dict) to stdout.  ``--config`` is a
        PipelineConfig.to_json file; the flags override its fields.

    python -m repro.pipeline runs --workdir runs/demo

        Lists the working directory's debug-DB run rows as JSON.

Exit status 0 on success, 1 on any pipeline/input error (message on
stderr).  The graph is a SNAP-style edge list
(:func:`repro.datasets.load_snap_graph`); its on-disk weighting is
irrelevant — stage 1 refits the probabilities.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.datasets.snap import load_snap_graph
from repro.errors import ReproError
from repro.learning.log_io import load_action_log, load_episodes
from repro.models.gaps import GAP
from repro.pipeline.config import PipelineConfig
from repro.pipeline.db import DEBUG_DB_FILE, PipelineDebugDB
from repro.pipeline.runner import run_pipeline


def _parse_truth(text: str) -> GAP:
    parts = text.split(",")
    if len(parts) != 4:
        raise ValueError(
            "truth must be 4 comma-separated floats: "
            "q_a,q_a_given_b,q_b,q_b_given_a"
        )
    q_a, q_ab, q_b, q_ba = (float(p) for p in parts)
    return GAP(q_a=q_a, q_a_given_b=q_ab, q_b=q_b, q_b_given_a=q_ba)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline",
        description="Run the log-to-query learning pipeline.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the pipeline end to end")
    run.add_argument("--graph", required=True, help="SNAP-style edge list")
    run.add_argument("--log", required=True, help="action log TSV")
    run.add_argument("--episodes", help="episode corpus .npz (EM backend)")
    run.add_argument("--config", help="PipelineConfig JSON file")
    run.add_argument("--workdir", required=True, help="cache + debug-DB dir")
    run.add_argument("--item-a", help="override config.item_a")
    run.add_argument("--item-b", help="override config.item_b")
    run.add_argument("--backend", choices=("em", "goyal"),
                     help="override config.edge_backend")
    run.add_argument("--seed", type=int, help="override config.seed")
    run.add_argument("--truth", type=_parse_truth, metavar="QA,QAB,QB,QBA",
                     help="ground-truth GAP for inside-CI verdicts")

    runs = sub.add_parser("runs", help="list a workdir's debug-DB runs")
    runs.add_argument("--workdir", required=True)
    return parser


def _item_override(text: str):
    try:
        return int(text)
    except ValueError:
        return text


def _cmd_run(args: argparse.Namespace) -> int:
    if args.config:
        config = PipelineConfig.from_json(
            Path(args.config).read_text(encoding="utf-8")
        )
    else:
        config = PipelineConfig()
    overrides = {}
    if args.item_a is not None:
        overrides["item_a"] = _item_override(args.item_a)
    if args.item_b is not None:
        overrides["item_b"] = _item_override(args.item_b)
    if args.backend is not None:
        overrides["edge_backend"] = args.backend
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        payload = config.to_dict()
        payload.update(overrides)
        config = PipelineConfig.from_dict(payload)

    graph = load_snap_graph(args.graph)
    log = load_action_log(args.log)
    episodes = load_episodes(args.episodes) if args.episodes else None
    result = run_pipeline(
        graph, log, config,
        episodes=episodes, workdir=args.workdir, truth=args.truth,
    )
    json.dump(result.to_dict(), sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    db_path = Path(args.workdir) / DEBUG_DB_FILE
    rows = PipelineDebugDB(db_path).runs() if db_path.exists() else []
    json.dump({"runs": rows}, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


def _main(argv: Optional[list[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        return _cmd_runs(args)
    except (ReproError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(_main())
