"""API-surface snapshot: ``repro.api.__all__`` changes must be deliberate.

If this test fails you probably added, renamed or removed a public name in
:mod:`repro.api`.  That can be the right thing to do — update the snapshot
here *and* the docs (README migration table, DESIGN.md API-layer section)
in the same change.
"""

import repro.api

EXPECTED_ALL = [
    "BlockingQuery",
    "ComICSession",
    "CompInfMaxQuery",
    "DeltaError",
    "DeltaReport",
    "EMResult",
    "EngineConfig",
    "GraphDelta",
    "InfluenceResult",
    "InvalidationReason",
    "LearnedGap",
    "MC_ENGINE",
    "MultiItemQuery",
    "ObjectiveSpec",
    "PipelineConfig",
    "PipelineDebugDB",
    "PipelineError",
    "PipelineResult",
    "PoolInfo",
    "PoolKey",
    "SelfInfMaxQuery",
    "SessionStats",
    "StageRecord",
    "generator_factory",
    "get_spec",
    "known_objectives",
    "known_regimes",
    "query_from_dict",
    "query_from_json",
    "register",
    "register_regime",
    "resolve",
    "run_pipeline",
    "spec_for_query",
    "unregister",
    "unregister_regime",
]


def test_all_is_pinned():
    assert sorted(repro.api.__all__) == EXPECTED_ALL


def test_every_name_resolves():
    for name in repro.api.__all__:
        assert getattr(repro.api, name) is not None, name


def test_top_level_reexports():
    import repro

    for name in (
        "ComICSession",
        "EngineConfig",
        "InfluenceResult",
        "SelfInfMaxQuery",
        "CompInfMaxQuery",
        "BlockingQuery",
        "MultiItemQuery",
    ):
        assert getattr(repro, name) is getattr(repro.api, name)
        assert name in repro.__all__


def test_builtin_objectives_registered():
    assert repro.api.known_objectives() == (
        "blocking",
        "compinfmax",
        "multi_item",
        "selfinfmax",
    )
    assert repro.api.known_regimes() == (
        "rr-block", "rr-cim", "rr-ic", "rr-sim", "rr-sim+"
    )
