"""repro.api — the unified, declarative Com-IC query layer.

One :class:`ComICSession` owns a network (graph + GAPs + engine config)
and answers frozen, JSON-round-trippable query objects for all four
optimisation workloads, caching RR-set pools across queries so sweeps top
up instead of resample::

    from repro.api import ComICSession, EngineConfig, SelfInfMaxQuery

    session = ComICSession(graph, gaps, config=EngineConfig(engine="imm"))
    result = session.run(SelfInfMaxQuery(seeds_b=(0, 1), k=10))
    result.seeds, result.estimate, result.diagnostics

The registry (:mod:`repro.api.registry`) makes the layer extensible:
new workloads bind a query type to a handler and inherit pooling,
diagnostics and JSON transport.  ``tests/api/test_public_surface.py``
pins ``__all__`` — extend it deliberately, never accidentally.
"""

from repro.api.config import EngineConfig
# The dynamic-graph vocabulary: deltas are applied through the session
# (ComICSession.apply_delta), so their types are part of this layer's
# public surface even though their homes are repro.graph / repro.errors.
from repro.errors import DeltaError, PipelineError
from repro.graph.delta import GraphDelta
# The learning vocabulary the pipeline produces/consumes: these live in
# repro.learning but are part of the query layer's public surface since
# PipelineResult hands them to api callers.
from repro.learning.em_cascades import EMResult
from repro.learning.estimator import LearnedGap
from repro.invalidation import InvalidationReason
from repro.api.queries import (
    BlockingQuery,
    CompInfMaxQuery,
    MultiItemQuery,
    SelfInfMaxQuery,
)
from repro.api.registry import (
    MC_ENGINE,
    ObjectiveSpec,
    generator_factory,
    get_spec,
    known_objectives,
    known_regimes,
    query_from_dict,
    query_from_json,
    register,
    register_regime,
    resolve,
    spec_for_query,
    unregister,
    unregister_regime,
)
from repro.api.results import InfluenceResult
from repro.api.session import (
    ComICSession,
    DeltaReport,
    PoolInfo,
    SessionStats,
)
# PoolKey is the shared cache/store identity; its home is repro.store but
# it is part of the session's public vocabulary (pool_info, select_seeds).
from repro.store import PoolKey

#: pipeline names re-exported lazily (PEP 562): repro.pipeline consumes
#: this layer (its runner builds ComICSessions), so importing it eagerly
#: here would be a circular import.  Deferral breaks the cycle while
#: keeping ``from repro.api import PipelineConfig`` working.
_PIPELINE_EXPORTS = frozenset(
    {
        "PipelineConfig",
        "PipelineDebugDB",
        "PipelineResult",
        "StageRecord",
        "run_pipeline",
    }
)


def __getattr__(name: str):
    if name in _PIPELINE_EXPORTS:
        from repro import pipeline as _pipeline

        return getattr(_pipeline, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BlockingQuery",
    "ComICSession",
    "CompInfMaxQuery",
    "DeltaError",
    "DeltaReport",
    "EMResult",
    "EngineConfig",
    "GraphDelta",
    "InfluenceResult",
    "InvalidationReason",
    "LearnedGap",
    "MC_ENGINE",
    "MultiItemQuery",
    "ObjectiveSpec",
    "PipelineConfig",
    "PipelineDebugDB",
    "PipelineError",
    "PipelineResult",
    "PoolInfo",
    "PoolKey",
    "SelfInfMaxQuery",
    "SessionStats",
    "StageRecord",
    "generator_factory",
    "get_spec",
    "known_objectives",
    "known_regimes",
    "query_from_dict",
    "query_from_json",
    "register",
    "register_regime",
    "resolve",
    "run_pipeline",
    "spec_for_query",
    "unregister",
    "unregister_regime",
]
