"""Unit tests for edge-probability assignment schemes."""

import numpy as np
import pytest

from repro.errors import EdgeProbabilityError
from repro.graph import (
    DiGraph,
    constant_probabilities,
    star_digraph,
    trivalency_probabilities,
    uniform_random_probabilities,
    weighted_cascade_probabilities,
)


def diamond() -> DiGraph:
    return DiGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


class TestConstant:
    def test_assigns_value(self):
        g = constant_probabilities(diamond(), 0.3)
        assert np.allclose(g.edge_probabilities, 0.3)

    def test_rejects_out_of_range(self):
        with pytest.raises(EdgeProbabilityError):
            constant_probabilities(diamond(), 1.2)


class TestWeightedCascade:
    def test_probability_is_inverse_indegree(self):
        g = weighted_cascade_probabilities(diamond())
        assert g.edge_probability(0, 1) == pytest.approx(1.0)
        assert g.edge_probability(1, 3) == pytest.approx(0.5)
        assert g.edge_probability(2, 3) == pytest.approx(0.5)

    def test_incoming_mass_is_one(self):
        g = weighted_cascade_probabilities(diamond())
        totals = np.zeros(4)
        np.add.at(totals, g.edge_targets, g.edge_probabilities)
        for v in range(1, 4):
            assert totals[v] == pytest.approx(1.0)

    def test_star(self):
        g = weighted_cascade_probabilities(star_digraph(11))
        assert np.allclose(g.edge_probabilities, 1.0)


class TestTrivalency:
    def test_only_allowed_values(self):
        g = trivalency_probabilities(diamond(), rng=0)
        assert set(np.round(g.edge_probabilities, 6)) <= {0.1, 0.01, 0.001}

    def test_custom_values(self):
        g = trivalency_probabilities(diamond(), values=(0.5,), rng=0)
        assert np.allclose(g.edge_probabilities, 0.5)

    def test_deterministic_with_seed(self):
        a = trivalency_probabilities(diamond(), rng=5)
        b = trivalency_probabilities(diamond(), rng=5)
        assert a == b

    def test_rejects_empty_values(self):
        with pytest.raises(EdgeProbabilityError):
            trivalency_probabilities(diamond(), values=())

    def test_rejects_out_of_range_values(self):
        with pytest.raises(EdgeProbabilityError):
            trivalency_probabilities(diamond(), values=(0.1, 2.0))


class TestUniformRandom:
    def test_within_bounds(self):
        g = uniform_random_probabilities(diamond(), 0.2, 0.4, rng=1)
        assert np.all(g.edge_probabilities >= 0.2)
        assert np.all(g.edge_probabilities <= 0.4)

    def test_rejects_bad_bounds(self):
        with pytest.raises(EdgeProbabilityError):
            uniform_random_probabilities(diamond(), 0.5, 0.2)
