"""RR-set-based objective estimation (the other use of Definition 2).

Activation equivalence states ``sigma(S) = n * P[S hits a random RR-set]``
— which estimates the objective *without running forward cascades*: draw
RR-sets, count intersections.  Unlike Monte-Carlo simulation the cost is
independent of ``|S|``, and one RR-set pool can evaluate many candidate
seed sets, which is exactly how TIM/IMM's greedy sees the objective.  For
RR-SIM/RR-CIM generators the estimated quantity is the SelfInfMax spread
/ CompInfMax boost of the corresponding regime.

Both estimators sample through the batched engine
(:meth:`~repro.rrset.base.RRSetGenerator.generate_batch`) into one flat
:class:`~repro.rrset.pool.RRSetPool` and test intersections with a single
vectorized :meth:`~repro.rrset.pool.RRSetPool.intersects` pass per
candidate seed set.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.models.spread import SpreadEstimate
from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator
from repro.rrset.pool import RRSetPool


def _seed_mask(n: int, seeds: Iterable[int]) -> np.ndarray:
    """Boolean membership mask over ``0..n-1`` (out-of-range ids ignored,
    matching the historical set-intersection semantics)."""
    mask = np.zeros(n, dtype=bool)
    for v in seeds:
        v = int(v)
        if 0 <= v < n:
            mask[v] = True
    return mask


def _estimate_from_hits(n: int, hits: int, samples: int) -> SpreadEstimate:
    fraction = hits / samples
    return SpreadEstimate(
        mean=n * fraction,
        std=n * math.sqrt(fraction * (1.0 - fraction)),
        runs=samples,
    )


def rr_estimate_objective(
    generator: RRSetGenerator,
    seeds: Iterable[int],
    *,
    samples: int = 10_000,
    rng: SeedLike = None,
) -> SpreadEstimate:
    """Estimate the generator's objective at ``seeds`` from fresh RR-sets.

    Returns a :class:`~repro.models.spread.SpreadEstimate` whose ``std``
    is the binomial per-sample deviation scaled by ``n`` (so
    ``stderr`` keeps its usual meaning).
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    gen = make_rng(rng)
    n = generator.graph.num_nodes
    pool = generator.generate_batch(samples, rng=gen)
    hits = int(pool.intersects(_seed_mask(n, seeds)).sum())
    return _estimate_from_hits(n, hits, samples)


def rr_estimate_many(
    generator: RRSetGenerator,
    seed_sets: Sequence[Iterable[int]],
    *,
    samples: int = 10_000,
    rng: SeedLike = None,
) -> list[SpreadEstimate]:
    """Evaluate several candidate seed sets against *one* shared RR pool.

    Sharing the pool makes the estimates positively correlated — ideal for
    ranking candidates (the TIM-style use) because the common sampling
    noise cancels in comparisons.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    gen = make_rng(rng)
    n = generator.graph.num_nodes
    pool = generator.generate_batch(samples, rng=gen)
    return [
        _estimate_from_hits(
            n, int(pool.intersects(_seed_mask(n, candidate)).sum()), samples
        )
        for candidate in seed_sets
    ]
