"""The Triggering model (Kempe et al. [15]), generalising IC and LT.

Every node ``v`` independently samples a *triggering set* ``T(v)`` from a
distribution over subsets of its in-neighbours; ``v`` activates at step
``t`` iff some node of ``T(v)`` activated at ``t - 1``.  The classical
RR-set results of Borgs et al. [2] and Tang et al. [24] (Proposition 1 of
the paper) are stated for this model; our general RR-set framework tests
subsume it.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from repro.errors import SeedSetError
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng

#: Samples a triggering set: receives (node, in_neighbors, in_probs, rng)
#: and returns a boolean mask over the in-neighbour array.
TriggerSampler = Callable[[int, np.ndarray, np.ndarray, np.random.Generator], np.ndarray]


def ic_trigger_sampler(
    node: int,
    in_neighbors: np.ndarray,
    in_probs: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """IC as a triggering model: include each in-neighbour independently."""
    return rng.random(in_neighbors.size) < in_probs


def lt_trigger_sampler(
    node: int,
    in_neighbors: np.ndarray,
    in_probs: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """LT as a triggering model: at most one in-neighbour, picked with
    probability equal to its edge weight (weights must sum to <= 1)."""
    mask = np.zeros(in_neighbors.size, dtype=bool)
    if in_neighbors.size == 0:
        return mask
    draw = rng.random()
    cumulative = 0.0
    for idx in range(in_neighbors.size):
        cumulative += float(in_probs[idx])
        if draw < cumulative:
            mask[idx] = True
            break
    return mask


def simulate_triggering(
    graph: DiGraph,
    seeds: Iterable[int],
    *,
    sampler: TriggerSampler = ic_trigger_sampler,
    rng: SeedLike = None,
) -> np.ndarray:
    """One Triggering-model cascade; returns the boolean activation mask.

    Triggering sets are sampled lazily, the first time a node is examined.
    """
    gen = make_rng(rng)
    n = graph.num_nodes
    active = np.zeros(n, dtype=bool)
    trigger_sets: dict[int, set[int]] = {}

    def trigger_set(v: int) -> set[int]:
        cached = trigger_sets.get(v)
        if cached is None:
            sources, probs, _eids = graph.in_edges(v)
            mask = sampler(v, sources, probs, gen)
            cached = {int(u) for u in sources[mask]}
            trigger_sets[v] = cached
        return cached

    frontier: list[int] = []
    for s in seeds:
        v = int(s)
        if not 0 <= v < n:
            raise SeedSetError(f"seed {v} out of range [0, {n - 1}]")
        if not active[v]:
            active[v] = True
            frontier.append(v)
    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            for v in graph.out_neighbors(u):
                v = int(v)
                if not active[v] and u in trigger_set(v):
                    active[v] = True
                    next_frontier.append(v)
        frontier = next_frontier
    return active
