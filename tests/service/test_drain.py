"""Graceful-drain shutdown: close() lets in-flight work finish first.

Every scenario wedges a request mid-execution deterministically by
holding the graph's session lock from the test thread — the request has
passed drain admission but blocks in ``_execute`` — then drives
``close()`` from another thread and observes the ordering guarantees:
new work is refused with 503, the close waits, and the wedged request
still completes against a live session.
"""

import threading
import time

import pytest

from repro.api import EngineConfig, SelfInfMaxQuery
from repro.graph import power_law_digraph, weighted_cascade_probabilities
from repro.models import GAP
from repro.service import ComICServer

GAPS = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
CONFIG = EngineConfig(engine="imm", max_rr_sets=800)
QUERY = SelfInfMaxQuery(seeds_b=(0, 1), k=3)


def wait_until(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.fixture
def server():
    graph = weighted_cascade_probabilities(power_law_digraph(120, rng=3))
    srv = ComICServer()
    srv.register_graph("g", graph, GAPS, config=CONFIG)
    yield srv
    srv.close()


def start_query(server, payload):
    """Run handle_query in a thread; returns (thread, results list)."""
    results = []

    def run():
        results.append(server.handle_query("g", payload))

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread, results


class TestGracefulDrain:
    def test_close_waits_for_inflight_query(self, server):
        """A query wedged behind the session lock completes with 200
        before close() reaches the sessions."""
        service = server._service("g")
        session = service.session
        with service.lock:  # wedge: the query admits, then blocks here
            thread, results = start_query(
                server, {"query": QUERY.to_dict(), "rng": 5}
            )
            wait_until(
                lambda: server._inflight == 1, message="query admission"
            )
            closer = threading.Thread(target=server.close, daemon=True)
            closer.start()
            wait_until(lambda: server.draining, message="draining flag")
            # close() must be parked in the drain wait, not past it:
            # the session is still open and the query still in flight.
            time.sleep(0.05)
            assert closer.is_alive()
            assert server.stats.drain_timeouts == 0
        thread.join(timeout=30)
        closer.join(timeout=30)
        assert not thread.is_alive() and not closer.is_alive()
        status, body = results[0]
        assert status == 200 and "error" not in body
        # the drained query really executed against a live session
        assert server.stats.queries == 1
        assert session.stats.queries == 1

    def test_new_work_refused_with_503_while_draining(self, server):
        service = server._service("g")
        with service.lock:
            thread, _ = start_query(
                server, {"query": QUERY.to_dict(), "rng": 5}
            )
            wait_until(
                lambda: server._inflight == 1, message="query admission"
            )
            closer = threading.Thread(target=server.close, daemon=True)
            closer.start()
            wait_until(lambda: server.draining, message="draining flag")
            errors_before = server.stats.errors
            status, body = server.handle_query(
                "g", {"query": QUERY.to_dict(), "rng": 6}
            )
            assert status == 503 and "draining" in body["error"]
            delta_status, delta_body = server.handle_delta(
                "g", {"delta": {}}
            )
            assert delta_status == 503 and "draining" in delta_body["error"]
            assert server.stats.draining_rejections == 2
            assert server.stats.errors == errors_before + 2
        thread.join(timeout=30)
        closer.join(timeout=30)
        assert not closer.is_alive()

    def test_coalesced_followers_drain_with_their_leader(self, server):
        """Leader and parked followers all count as in-flight: close()
        waits for the whole flight, and everyone gets the envelope."""
        service = server._service("g")
        payload = {"query": QUERY.to_dict(), "rng": 11}
        with service.lock:
            leader_thread, leader_results = start_query(server, payload)
            wait_until(
                lambda: server.stats.flights == 1, message="leadership"
            )
            follower_thread, follower_results = start_query(server, payload)
            wait_until(
                lambda: server._inflight == 2, message="follower admission"
            )
            closer = threading.Thread(target=server.close, daemon=True)
            closer.start()
            wait_until(lambda: server.draining, message="draining flag")
            time.sleep(0.05)
            assert closer.is_alive()  # both requests still in flight
        leader_thread.join(timeout=30)
        follower_thread.join(timeout=30)
        closer.join(timeout=30)
        assert not closer.is_alive()
        assert leader_results[0][0] == 200
        assert follower_results == leader_results  # verbatim envelope
        assert server.stats.coalesced == 1
        assert server.stats.queries == 1  # one execution served both
        assert server.stats.drain_timeouts == 0

    def test_drain_timeout_bounds_a_stuck_request(self, server):
        service = server._service("g")
        service.lock.acquire()
        try:
            thread, results = start_query(
                server, {"query": QUERY.to_dict(), "rng": 5}
            )
            wait_until(
                lambda: server._inflight == 1, message="query admission"
            )
            closer = threading.Thread(
                target=lambda: server.close(drain_timeout_s=0.05),
                daemon=True,
            )
            closer.start()
            wait_until(
                lambda: server.stats.drain_timeouts == 1,
                message="drain timeout",
            )
        finally:
            service.lock.release()
        # past the timeout, close still serialises with the straggler
        # via the graph lock, so both threads wind down cleanly
        thread.join(timeout=30)
        closer.join(timeout=30)
        assert not thread.is_alive() and not closer.is_alive()
        assert len(results) == 1

    def test_close_without_traffic_does_not_wait(self, server):
        start = time.monotonic()
        server.close()
        assert time.monotonic() - start < server.DEFAULT_DRAIN_TIMEOUT_S / 2
        assert server.stats.drain_timeouts == 0
        # idempotent: a second close drains an already-drained server
        server.close()
