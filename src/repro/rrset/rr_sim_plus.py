"""RR-SIM+: scope-limited forward labeling (paper Algorithm 3, §6.2.2).

RR-SIM spends ``EPT_F`` edge tests on forward labeling from the B-seeds even
when none of that region can reach the root.  RR-SIM+ first runs an
*unconditional* backward BFS from the root over live edges, collecting the
set ``T1`` of nodes that could possibly matter; only if ``T1`` contains
B-seeds does it run the (residual) forward labeling, starting from
``T1 ∩ S_B`` alone.  A second backward BFS — identical to RR-SIM's
Phase III and confined to ``T1`` by construction (it expands along exactly
the live in-edges the first pass already certified) — emits the RR-set.

Lemma 7 of the paper proves the B-adoption status of every node the second
pass can see agrees with RR-SIM's, hence the two generators sample the same
RR-set distribution; a statistical test asserts this.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

import numpy as np

from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.models.sources import WorldSource
from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator
from repro.rrset.rr_sim import (
    backward_search_a,
    check_rr_sim_regime,
    forward_label_b_adopted,
)


class RRSimPlusGenerator(RRSetGenerator):
    """Random RR-set sampler for SelfInfMax (Algorithm 3)."""

    def __init__(self, graph: DiGraph, gaps: GAP, seeds_b: Iterable[int]) -> None:
        super().__init__(graph)
        check_rr_sim_regime(gaps)
        self._gaps = gaps
        self._seeds_b = [int(s) for s in seeds_b]
        self._seeds_b_set = set(self._seeds_b)

    @property
    def gaps(self) -> GAP:
        """The GAP configuration (one-way complementarity)."""
        return self._gaps

    @property
    def seeds_b(self) -> list[int]:
        """The fixed B-seed set."""
        return list(self._seeds_b)

    def _first_backward_bfs(
        self, world: WorldSource, root: int
    ) -> set[int]:
        """Unconditional reverse reachability from ``root`` over live edges."""
        graph = self._graph
        visited = {root}
        queue: deque[int] = deque([root])
        while queue:
            u = queue.popleft()
            sources, probs, eids = graph.in_edges(u)
            for idx in range(sources.size):
                w = int(sources[idx])
                if w in visited:
                    continue
                if world.edge_live(int(eids[idx]), float(probs[idx])):
                    visited.add(w)
                    queue.append(w)
        return visited

    def generate(
        self, *, rng: SeedLike = None, root: Optional[int] = None, world=None
    ) -> np.ndarray:
        """``world`` injects a fixed possible world (tests/ablations)."""
        gen = make_rng(rng)
        if root is None:
            root = int(gen.integers(0, self._graph.num_nodes))
        if world is None:
            world = WorldSource(gen)
        t1 = self._first_backward_bfs(world, root)
        touched_seeds = t1 & self._seeds_b_set
        if touched_seeds:
            # Residual forward labeling from the in-scope B-seeds only; the
            # world source memoises, so re-tested edges stay consistent.
            b_adopted = forward_label_b_adopted(
                self._graph, world, self._gaps.q_b, sorted(touched_seeds)
            )
        else:
            b_adopted = set()
        return backward_search_a(self._graph, world, self._gaps, root, b_adopted)
