"""Tests for the DegreeDiscount / SingleDiscount heuristics."""

import numpy as np
import pytest

from repro.errors import SeedSetError
from repro.graph import DiGraph, power_law_digraph, star_digraph
from repro.algorithms import (
    degree_discount_seeds,
    high_degree_seeds,
    single_discount_seeds,
)


@pytest.fixture(scope="module")
def two_hubs() -> DiGraph:
    """Two hubs (0, 1) sharing most of their audience.

    Hub 0 points at nodes 2..11; hub 1 points at 2..10 plus 12.  A degree
    heuristic picks 0 then 1, but after 0 is chosen most of 1's audience is
    discounted, so the discount heuristics prefer the fresh audience of 13
    (a smaller hub over 14..18 with no overlap).
    """
    edges = []
    edges += [(0, v) for v in range(2, 12)]           # degree 10
    edges += [(1, v) for v in list(range(2, 11)) + [12]]  # degree 10, 9 shared
    edges += [(13, v) for v in range(14, 20)]         # degree 6, disjoint
    return DiGraph.from_edges(21, edges, default_probability=0.5)


class TestSingleDiscount:
    def test_matches_high_degree_for_one_seed(self, two_hubs):
        assert single_discount_seeds(two_hubs, 1) == high_degree_seeds(two_hubs, 1)

    def test_discount_has_no_effect_without_in_edges_to_seed(self):
        # On an outward star nobody points at the hub, so no discounting
        # happens and SingleDiscount equals HighDegree.
        graph = star_digraph(10)
        assert single_discount_seeds(graph, 3) == high_degree_seeds(graph, 3)

    def test_discount_applies_to_in_neighbors(self):
        # 0 -> 1 -> {2,3}; 4 -> {5,6}.  Seeding 1 (degree 2) first discounts
        # 0; the second pick must be 4, not a tie-broken low id.
        graph = DiGraph.from_edges(
            7, [(0, 1), (1, 2), (1, 3), (4, 5), (4, 6)]
        )
        seeds = single_discount_seeds(graph, 2)
        assert seeds[0] in (1, 4)
        assert set(seeds) == {1, 4}

    def test_k_zero(self, two_hubs):
        assert single_discount_seeds(two_hubs, 0) == []

    def test_k_too_large(self, two_hubs):
        with pytest.raises(SeedSetError):
            single_discount_seeds(two_hubs, two_hubs.num_nodes + 1)

    def test_exclude(self, two_hubs):
        seeds = single_discount_seeds(two_hubs, 2, exclude=[0])
        assert 0 not in seeds

    def test_distinct(self, two_hubs):
        seeds = single_discount_seeds(two_hubs, 5)
        assert len(seeds) == len(set(seeds)) == 5


class TestDegreeDiscount:
    def test_matches_high_degree_for_one_seed(self, two_hubs):
        assert degree_discount_seeds(two_hubs, 1) == high_degree_seeds(two_hubs, 1)

    def test_prefers_fresh_audience(self):
        # Mutual hub pair: 0 <-> 1 and both cover 2..9; 10 covers 11..16.
        # After choosing 0, node 1's discounted degree collapses, so 10 wins
        # the second pick despite lower raw degree.
        edges = [(0, 1), (1, 0)]
        edges += [(0, v) for v in range(2, 10)]
        edges += [(1, v) for v in range(2, 10)]
        edges += [(10, v) for v in range(11, 17)]
        graph = DiGraph.from_edges(17, edges, default_probability=0.9)
        seeds = degree_discount_seeds(graph, 2)
        assert seeds[0] in (0, 1)
        assert seeds[1] == 10

    def test_p_zero_degenerates_to_single_discount_formula(self):
        # With p = 0 the dd formula is d - 2t, still a discount heuristic;
        # sanity: the result is a valid distinct seed set.
        graph = power_law_digraph(
            120, exponent=2.16, average_degree=4.0, probability=0.1, rng=5
        )
        seeds = degree_discount_seeds(graph, 6, propagation_probability=0.0)
        assert len(set(seeds)) == 6

    def test_invalid_probability_rejected(self, two_hubs):
        with pytest.raises(SeedSetError):
            degree_discount_seeds(two_hubs, 1, propagation_probability=1.5)

    def test_default_p_is_mean_edge_probability(self, two_hubs):
        explicit = degree_discount_seeds(
            two_hubs, 4,
            propagation_probability=float(two_hubs.edge_probabilities.mean()),
        )
        assert degree_discount_seeds(two_hubs, 4) == explicit

    def test_exclude(self, two_hubs):
        seeds = degree_discount_seeds(two_hubs, 3, exclude=[0, 1])
        assert not {0, 1} & set(seeds)

    def test_deterministic(self, two_hubs):
        assert degree_discount_seeds(two_hubs, 5) == degree_discount_seeds(two_hubs, 5)

    def test_empty_graph(self):
        graph = DiGraph.from_edges(4, [])
        seeds = degree_discount_seeds(graph, 2)
        assert len(seeds) == 2


class TestAgainstHighDegreeQuality:
    def test_discount_at_least_matches_high_degree_on_overlap(self, two_hubs):
        """On the shared-audience fixture the discount heuristics must pick
        the disjoint hub 13 within the first three seeds; HighDegree wastes
        its second pick on the redundant twin hub."""
        for selector in (single_discount_seeds, degree_discount_seeds):
            seeds = selector(two_hubs, 3)
            assert 13 in seeds, selector.__name__
