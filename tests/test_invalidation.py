"""The shared invalidation vocabulary and its legacy-string shims."""

import warnings

import pytest

from repro.errors import StoreIntegrityError
from repro.invalidation import InvalidationReason, coerce_reason


class TestEnum:
    def test_values_are_strings(self):
        for member in InvalidationReason:
            assert isinstance(member, str)
            assert str(member) == member.value

    def test_vocabulary_is_pinned(self):
        assert sorted(m.value for m in InvalidationReason) == [
            "corrupt_columns",
            "delta_churn",
            "fingerprint_mismatch",
            "format_version",
            "key_mismatch",
            "malformed_manifest",
            "touch_absent",
        ]


class TestCoerceReason:
    def test_enum_passes_through_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            got = coerce_reason(InvalidationReason.DELTA_CHURN)
        assert got is InvalidationReason.DELTA_CHURN

    def test_canonical_string_passes_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            got = coerce_reason("corrupt_columns")
        assert got is InvalidationReason.CORRUPT_COLUMNS

    @pytest.mark.parametrize(
        "legacy, expected",
        [
            (
                "entry was sampled from a different graph (fingerprint...)",
                InvalidationReason.FINGERPRINT_MISMATCH,
            ),
            (
                "entry key K does not match requested K'",
                InvalidationReason.KEY_MISMATCH,
            ),
            (
                "entry has format_version 0, this build reads 1",
                InvalidationReason.FORMAT_VERSION,
            ),
            (
                "nodes column fails its CRC-32 check",
                InvalidationReason.CORRUPT_COLUMNS,
            ),
            (
                "indptr column has shape (3,), manifest says (5,)",
                InvalidationReason.CORRUPT_COLUMNS,
            ),
            ("malformed manifest: KeyError", InvalidationReason.MALFORMED_MANIFEST),
        ],
    )
    def test_legacy_strings_map_with_deprecation_warning(
        self, legacy, expected
    ):
        with pytest.warns(DeprecationWarning):
            assert coerce_reason(legacy) is expected

    def test_unrecognisable_string_degrades_not_raises(self):
        with pytest.warns(DeprecationWarning):
            got = coerce_reason("no idea what happened")
        assert got is InvalidationReason.MALFORMED_MANIFEST


class TestStoreIntegrityErrorReason:
    def test_explicit_reason_kept(self):
        exc = StoreIntegrityError(
            "boom", reason=InvalidationReason.DELTA_CHURN
        )
        assert exc.reason is InvalidationReason.DELTA_CHURN

    def test_reason_inferred_from_message_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            exc = StoreIntegrityError("nodes column fails its CRC-32 check")
        assert exc.reason is InvalidationReason.CORRUPT_COLUMNS

    def test_string_reason_coerced(self):
        exc = StoreIntegrityError("boom", reason="key_mismatch")
        assert exc.reason is InvalidationReason.KEY_MISMATCH
