"""Benchmark: Figure 8 — Sandwich Approximation under adversarial GAPs.

Shape check (paper): even with q_{B|∅} and q_{B|A} pulled far apart, the
seed sets found through the submodular bounds score within a small
relative error of the direct greedy's — the paper reports at most 0.4%;
at benchmark scale we allow more MC noise but the error must stay small.
"""

from repro.experiments import figure8_sa_stress


def bench_fig8_sa_stress(benchmark, bench_scale, save_table):
    result = benchmark.pedantic(
        lambda: figure8_sa_stress(bench_scale, greedy_pool=12, greedy_runs=15),
        rounds=1, iterations=1,
    )
    save_table(result, "figure8_sa_stress")
    sim_rows = [r for r in result.rows if r["problem"] == "SelfInfMax"]
    assert all(r["sa_relative_error"] < 0.5 for r in sim_rows)
