"""Touch-column persistence: optional store columns for pool repair.

Touch columns (roots + per-member edge-touch signatures) ride the PR 1
store format as *optional* extras — same ``FORMAT_VERSION``, manifests
of untracked pools byte-identical to before — so old entries load
unchanged and new entries degrade gracefully for readers that ignore
the ``touches`` record.
"""

import json

import numpy as np
import pytest

from repro.errors import StoreIntegrityError
from repro.graph import path_digraph, power_law_digraph
from repro.graph import weighted_cascade_probabilities
from repro.invalidation import InvalidationReason
from repro.models import GAP
from repro.rrset import RRICGenerator, RRSetPool, RRSimGenerator
from repro.store import PoolKey, PoolStore
from repro.store.pool_store import (
    ROOTS_FILE,
    TOUCH_EDGES_FILE,
    TOUCH_INDPTR_FILE,
)

GAPS = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
FP = "b" * 64
KEY = PoolKey.make("rr-sim", GAPS, [0, 1])


def graph():
    return weighted_cascade_probabilities(power_law_digraph(60, rng=2))


def recorded_pool(count=30, rng=0):
    g = graph()
    pool = RRSetPool(g.num_nodes, track_touches=True)
    RRSimGenerator(g, GAPS, (0, 1)).generate_batch(count, rng=rng, out=pool)
    return pool


def implicit_pool(count=30, rng=0):
    g = graph()
    pool = RRSetPool(g.num_nodes, track_touches=True)
    RRICGenerator(g).generate_batch(count, rng=rng, out=pool)
    return pool


@pytest.fixture
def store(tmp_path):
    return PoolStore(tmp_path / "pools")


class TestRoundTrip:
    @pytest.mark.parametrize("mmap", [False, True])
    def test_recorded_pool_round_trips_touch_columns(self, store, mmap):
        pool = recorded_pool()
        assert pool.touch_ok
        store.save(KEY, pool, graph_fingerprint=FP)
        loaded = store.load(KEY, graph_fingerprint=FP, mmap=mmap)
        assert loaded.track_touches and loaded.roots_ok and loaded.touch_ok
        assert np.array_equal(loaded.roots, pool.roots)
        assert np.array_equal(loaded.touch_edges, pool.touch_edges)
        assert np.array_equal(loaded.touch_indptr, pool.touch_indptr)

    def test_implicit_pool_round_trips_roots_only(self, store):
        pool = implicit_pool()
        assert pool.roots_ok and not pool.touch_ok
        store.save(KEY, pool, graph_fingerprint=FP)
        loaded = store.load(KEY, graph_fingerprint=FP)
        assert loaded.roots_ok and not loaded.touch_ok
        assert np.array_equal(loaded.roots, pool.roots)

    def test_untracked_pool_writes_no_touch_fields(self, store):
        pool = RRSetPool(10)
        pool.append(np.array([1, 2]))
        store.save(KEY, pool, graph_fingerprint=FP)
        entry_dir = next(store.root.rglob("manifest.json")).parent
        names = {p.name for p in entry_dir.iterdir()}
        assert ROOTS_FILE not in names
        assert TOUCH_EDGES_FILE not in names
        assert TOUCH_INDPTR_FILE not in names
        manifest = json.loads((entry_dir / "manifest.json").read_text())
        assert "touches" not in manifest
        loaded = store.load(KEY, graph_fingerprint=FP)
        assert not loaded.track_touches

    def test_manifest_records_touch_crcs(self, store):
        pool = recorded_pool()
        store.save(KEY, pool, graph_fingerprint=FP)
        entry_dir = next(store.root.rglob("manifest.json")).parent
        manifest = json.loads((entry_dir / "manifest.json").read_text())
        record = manifest["touches"]
        assert set(record) == {
            "roots_crc32",
            "touch_edges_crc32",
            "touch_indptr_crc32",
            "total_touches",
        }
        assert record["total_touches"] == int(pool.touch_edges.size)


class TestAppendFallback:
    def test_tracked_pool_growth_rewrites_and_round_trips(self, store):
        g = graph()
        pool = RRSetPool(g.num_nodes, track_touches=True)
        gen = RRSimGenerator(g, GAPS, (0, 1))
        gen.generate_batch(20, rng=0, out=pool)
        store.save(KEY, pool, graph_fingerprint=FP)
        gen.generate_batch(15, rng=1, out=pool)
        store.save(KEY, pool, graph_fingerprint=FP)
        # growth of a touch-tracked entry never takes the incremental
        # append path (it cannot extend the touch columns in place)
        assert store.stats.appends == 0
        loaded = store.load(KEY, graph_fingerprint=FP)
        assert len(loaded) == 35
        assert loaded.touch_ok
        assert np.array_equal(loaded.touch_edges, pool.touch_edges)


class TestCorruption:
    @pytest.mark.parametrize(
        "filename", [ROOTS_FILE, TOUCH_EDGES_FILE, TOUCH_INDPTR_FILE]
    )
    def test_corrupt_touch_column_quarantines(self, store, filename):
        pool = recorded_pool()
        store.save(KEY, pool, graph_fingerprint=FP)
        entry_dir = next(store.root.rglob("manifest.json")).parent
        column = np.load(entry_dir / filename)
        column = np.array(column, copy=True)
        column[0] += 1
        np.save(entry_dir / filename, column)
        # strict load surfaces the typed reason...
        with pytest.raises(StoreIntegrityError) as excinfo:
            store.load_strict(KEY, graph_fingerprint=FP)
        assert excinfo.value.reason is InvalidationReason.CORRUPT_COLUMNS
        # ...and the forgiving load maps it to a counted miss + quarantine
        assert store.load(KEY, graph_fingerprint=FP) is None
        assert store.stats.invalidations == 1
        assert store.stats.invalidations_by_reason == {
            "corrupt_columns": 1
        }

    def test_missing_touch_file_quarantines(self, store):
        pool = recorded_pool()
        store.save(KEY, pool, graph_fingerprint=FP)
        entry_dir = next(store.root.rglob("manifest.json")).parent
        (entry_dir / TOUCH_EDGES_FILE).unlink()
        assert store.load(KEY, graph_fingerprint=FP) is None
        assert store.stats.invalidations_by_reason == {
            "corrupt_columns": 1
        }

    def test_quarantine_reason_json_carries_reason_code(self, store):
        pool = recorded_pool()
        store.save(KEY, pool, graph_fingerprint=FP)
        entry_dir = next(store.root.rglob("manifest.json")).parent
        (entry_dir / ROOTS_FILE).unlink()
        assert store.load(KEY, graph_fingerprint=FP) is None
        reasons = list(store.root.rglob("reason.json"))
        assert reasons, "quarantine must record its reason"
        payload = json.loads(reasons[0].read_text())
        assert payload["reason_code"] == "corrupt_columns"


class TestByReasonStats:
    def test_fingerprint_mismatch_counted_by_reason(self, store):
        pool = recorded_pool()
        store.save(KEY, pool, graph_fingerprint=FP)
        assert store.load(KEY, graph_fingerprint="c" * 64) is None
        assert store.stats.invalidations_by_reason == {
            "fingerprint_mismatch": 1
        }
        assert store.stats.as_dict()["invalidations_by_reason"] == {
            "fingerprint_mismatch": 1
        }
