"""Property-based tests for the extension modules.

Covers the seed-overlap metrics, the discount heuristics, the IMM engine,
the stable string hash, the k-item GAP tables and the Com-LT model — the
invariants a fuzzer can check without Monte-Carlo tolerance.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given

from tests.properties._profiles import ci_settings

from repro.analysis import rank_weighted_overlap, seed_jaccard
from repro.graph import DiGraph
from repro.models import GAP, MultiItemGaps, normalize_lt_weights, simulate_comlt
from repro.rng import stable_hash
from repro.rrset import IMMOptions, RRICGenerator, general_imm
from repro.algorithms import degree_discount_seeds, single_discount_seeds


@st.composite
def small_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    count = draw(st.integers(min_value=0, max_value=min(len(pairs), 18)))
    chosen = draw(
        st.lists(st.sampled_from(pairs), min_size=count, max_size=count, unique=True)
    )
    prob = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    return DiGraph.from_edges(n, chosen, default_probability=prob)


seed_lists = st.lists(
    st.integers(min_value=0, max_value=50), max_size=12, unique=True
)


class TestOverlapMetrics:
    @ci_settings(80)
    @given(first=seed_lists, second=seed_lists)
    def test_jaccard_bounds_and_symmetry(self, first, second):
        value = seed_jaccard(first, second)
        assert 0.0 <= value <= 1.0
        assert value == seed_jaccard(second, first)

    @ci_settings(80)
    @given(seeds=seed_lists)
    def test_jaccard_identity(self, seeds):
        assert seed_jaccard(seeds, seeds) == 1.0

    @ci_settings(80)
    @given(first=seed_lists, second=seed_lists)
    def test_rank_overlap_bounds_and_symmetry(self, first, second):
        value = rank_weighted_overlap(first, second)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(rank_weighted_overlap(second, first))

    @ci_settings(80)
    @given(seeds=seed_lists)
    def test_rank_overlap_identity(self, seeds):
        assert rank_weighted_overlap(seeds, seeds) == 1.0


class TestDiscountHeuristics:
    @ci_settings(50)
    @given(graph=small_graphs(), data=st.data())
    def test_seed_sets_valid(self, graph, data):
        k = data.draw(st.integers(min_value=0, max_value=graph.num_nodes))
        for selector in (single_discount_seeds, degree_discount_seeds):
            seeds = selector(graph, k)
            assert len(seeds) == k
            assert len(set(seeds)) == k
            assert all(0 <= v < graph.num_nodes for v in seeds)

    @ci_settings(50)
    @given(graph=small_graphs())
    def test_first_seed_is_max_degree(self, graph):
        if graph.num_nodes == 0:
            return
        top = int(np.max(graph.out_degrees))
        for selector in (single_discount_seeds, degree_discount_seeds):
            seeds = selector(graph, 1)
            assert int(graph.out_degrees[seeds[0]]) == top


class TestIMMProperties:
    @ci_settings(20)
    @given(graph=small_graphs(), data=st.data())
    def test_valid_and_deterministic(self, graph, data):
        k = data.draw(st.integers(min_value=0, max_value=graph.num_nodes))
        opts = IMMOptions(max_rr_sets=200, min_rr_sets=10)
        gen = RRICGenerator(graph)
        r1 = general_imm(gen, k, options=opts, rng=7)
        r2 = general_imm(gen, k, options=opts, rng=7)
        assert r1.seeds == r2.seeds
        assert len(r1.seeds) == min(k, graph.num_nodes) if k else r1.seeds == []
        assert len(set(r1.seeds)) == len(r1.seeds)
        assert 0.0 <= r1.estimated_objective <= graph.num_nodes


class TestStableHash:
    @ci_settings(100)
    @given(text=st.text(max_size=40))
    def test_range_and_determinism(self, text):
        value = stable_hash(text)
        assert 0 <= value < 2**31
        assert value == stable_hash(text)

    def test_known_value_pinned(self):
        # Guards against accidental algorithm changes breaking stored seeds.
        assert stable_hash("flixster") == 1427826004


class TestMultiItemGapTables:
    @ci_settings(40)
    @given(
        num_items=st.integers(min_value=1, max_value=4),
        base=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        boost=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
    )
    def test_additive_tables_always_valid(self, num_items, base, boost):
        gaps = MultiItemGaps.additive(num_items, base=base, boost_per_item=boost)
        if boost >= 0:
            assert gaps.is_mutually_complementary
        if boost <= 0:
            assert gaps.is_mutually_competitive

    @ci_settings(40)
    @given(
        q_a=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        q_ab=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        q_b=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        q_ba=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_pairwise_embedding_round_trip(self, q_a, q_ab, q_b, q_ba):
        gap = GAP(q_a=q_a, q_a_given_b=q_ab, q_b=q_b, q_b_given_a=q_ba)
        multi = MultiItemGaps.from_pairwise_gap(gap)
        assert multi.q(0, frozenset()) == q_a
        assert multi.q(0, frozenset({1})) == q_ab
        assert multi.q(1, frozenset()) == q_b
        assert multi.q(1, frozenset({0})) == q_ba


class TestComLTInvariants:
    @ci_settings(30)
    @given(graph=small_graphs(), rng_seed=st.integers(min_value=0, max_value=999))
    def test_seeds_always_adopt_and_states_consistent(self, graph, rng_seed):
        graph = normalize_lt_weights(graph)
        gaps = GAP(q_a=0.5, q_a_given_b=0.8, q_b=0.4, q_b_given_a=0.7)
        seeds_a = [0]
        seeds_b = [graph.num_nodes - 1]
        outcome = simulate_comlt(graph, gaps, seeds_a, seeds_b, rng=rng_seed)
        assert bool(outcome.a_adopted[0])
        assert bool(outcome.b_adopted[graph.num_nodes - 1])
        # Adoption times exist exactly for adopters.
        assert np.all((outcome.adopted_a_at >= 0) == outcome.a_adopted)
        assert np.all((outcome.adopted_b_at >= 0) == outcome.b_adopted)
