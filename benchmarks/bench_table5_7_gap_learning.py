"""Benchmark: Tables 5-7 — GAP learning from action logs.

Shape check: with 12K users per pair, the estimator recovers the paper's
published GAPs within 2x confidence intervals for (almost) every pair.
"""

from repro.experiments import tables5to7_learned_gaps
from repro.learning import generate_synthetic_log, learn_gap_pair
from repro.models import GAP


def bench_tables5to7_learned_gaps(benchmark, bench_scale, save_table):
    result = benchmark.pedantic(
        lambda: tables5to7_learned_gaps(bench_scale, num_users=12_000),
        rounds=1, iterations=1,
    )
    save_table(result, "tables5to7_learned_gaps")
    recovered = [r["recovered"] for r in result.rows]
    assert sum(recovered) >= len(recovered) - 2


def bench_gap_learning_kernel(benchmark):
    """Micro-benchmark: log generation + estimation for one item pair."""
    truth = GAP(0.88, 0.92, 0.92, 0.96)

    def run():
        log = generate_synthetic_log([("A", "B", truth)], num_users=4000, rng=0)
        return learn_gap_pair(log, "A", "B")

    learned = benchmark(run)
    assert abs(learned.gap.q_a - truth.q_a) < 0.05
