"""Tests for GeneralTIM: coverage greedy, theta computation, end-to-end."""

import math

import numpy as np
import pytest

from repro.errors import SeedSetError
from repro.graph import DiGraph, star_digraph, path_digraph
from repro.rrset import RRICGenerator, TIMOptions, general_tim, greedy_max_coverage
from repro.rrset.tim import compute_theta, estimate_kpt, _log_n_choose_k


class TestGreedyMaxCoverage:
    def test_picks_max_cover(self):
        sets = [np.array([0, 1]), np.array([1, 2]), np.array([1]), np.array([3])]
        seeds, covered, gains = greedy_max_coverage(sets, n=4, k=1)
        assert seeds == [1]
        assert covered == 3
        assert gains == [3]

    def test_marginal_counting(self):
        sets = [np.array([0, 1]), np.array([0]), np.array([2]), np.array([2, 3])]
        seeds, covered, gains = greedy_max_coverage(sets, n=4, k=2)
        assert seeds[0] in (0, 2)
        assert covered == 4
        assert gains == [2, 2]

    def test_more_seeds_than_useful(self):
        sets = [np.array([0])]
        seeds, covered, gains = greedy_max_coverage(sets, n=3, k=3)
        assert covered == 1
        assert len(seeds) == 3
        assert len(set(seeds)) == 3  # never repeats a node

    def test_empty_sets(self):
        seeds, covered, gains = greedy_max_coverage([], n=3, k=2)
        assert covered == 0

    def test_negative_k_rejected(self):
        with pytest.raises(SeedSetError):
            greedy_max_coverage([], n=3, k=-1)


class TestCandidateRestrictedGreedy:
    SETS = [
        np.array([0, 1]), np.array([1, 2]), np.array([1]),
        np.array([3]), np.array([2, 3]),
    ]

    def test_restriction_confines_picks(self):
        seeds, covered, gains = greedy_max_coverage(
            self.SETS, n=4, k=2, candidates=[0, 2, 3]
        )
        assert 1 not in seeds  # the unrestricted winner is masked out
        assert set(seeds) <= {0, 2, 3}
        assert covered == sum(gains)

    def test_matches_legacy_with_candidates(self):
        from repro.rrset import greedy_max_coverage_legacy

        rng = np.random.default_rng(3)
        sets = [
            rng.choice(30, size=rng.integers(0, 6), replace=False)
            for _ in range(200)
        ]
        candidates = list(range(0, 30, 2))
        assert greedy_max_coverage(
            sets, n=30, k=5, candidates=candidates
        ) == greedy_max_coverage_legacy(
            sets, n=30, k=5, candidates=candidates
        )

    def test_returns_at_most_candidate_count(self):
        seeds, _, _ = greedy_max_coverage(
            self.SETS, n=4, k=3, candidates=[1, 2]
        )
        assert len(seeds) == 2
        assert len(set(seeds)) == 2

    def test_out_of_range_candidates_rejected(self):
        with pytest.raises(SeedSetError, match="candidate"):
            greedy_max_coverage(self.SETS, n=4, k=1, candidates=[7])

    def test_general_tim_threads_candidates(self):
        graph = star_digraph(6, probability=1.0)
        generator = RRICGenerator(graph)
        result = general_tim(
            generator, 1, options=TIMOptions(theta_override=300),
            rng=1, candidates=[1, 2, 3, 4, 5],
        )
        # The center always wins unrestricted; masked out, a leaf is picked.
        assert result.seeds[0] != 0
        assert result.seeds[0] in {1, 2, 3, 4, 5}


class TestTheta:
    def test_log_n_choose_k(self):
        assert _log_n_choose_k(10, 3) == pytest.approx(math.log(120))
        assert _log_n_choose_k(5, 0) == pytest.approx(0.0)

    def test_theta_decreases_with_kpt(self):
        t1 = compute_theta(1000, 10, kpt=1.0, epsilon=0.5, ell=1.0)
        t2 = compute_theta(1000, 10, kpt=100.0, epsilon=0.5, ell=1.0)
        assert t2 < t1

    def test_theta_decreases_with_epsilon(self):
        t1 = compute_theta(1000, 10, kpt=10.0, epsilon=0.1, ell=1.0)
        t2 = compute_theta(1000, 10, kpt=10.0, epsilon=1.0, ell=1.0)
        assert t2 < t1
        # Eq. (3) scales as 1/eps^2 (modulo the (8 + 2 eps) factor).
        assert t1 / t2 > 50

    def test_kpt_at_least_one(self):
        generator = RRICGenerator(path_digraph(4, probability=0.1))
        assert estimate_kpt(generator, 1, rng=0) >= 1.0


class TestGeneralTIM:
    def test_star_center_wins(self):
        """On an outward star under IC, the centre covers every RR-set."""
        graph = star_digraph(30)
        result = general_tim(
            RRICGenerator(graph), 1,
            options=TIMOptions(theta_override=400), rng=0,
        )
        assert result.seeds == [0]
        assert result.theta == 400
        # The centre is in every RR-set, so the estimate is the full graph.
        assert result.estimated_objective == pytest.approx(30.0, rel=0.05)

    def test_disconnected_components_get_one_seed_each(self):
        # Two disjoint deterministic paths: optimal k=2 picks both heads.
        edges = [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)]
        graph = DiGraph.from_edges(6, edges)
        result = general_tim(
            RRICGenerator(graph), 2,
            options=TIMOptions(theta_override=600), rng=1,
        )
        assert sorted(result.seeds) == [0, 3]

    def test_k_zero(self):
        result = general_tim(
            RRICGenerator(path_digraph(4)), 0,
            options=TIMOptions(theta_override=50), rng=0,
        )
        assert result.seeds == []
        assert result.coverage == 0

    def test_k_out_of_range(self):
        with pytest.raises(SeedSetError):
            general_tim(RRICGenerator(path_digraph(3)), 9, rng=0)

    def test_estimation_path_runs(self):
        graph = star_digraph(20)
        result = general_tim(
            RRICGenerator(graph), 1,
            options=TIMOptions(epsilon=1.0, max_rr_sets=800), rng=2,
        )
        assert result.seeds == [0]
        assert result.theta <= 800

    def test_options_validation(self):
        with pytest.raises(ValueError):
            TIMOptions(epsilon=0.0)
        with pytest.raises(ValueError):
            TIMOptions(ell=-1.0)
        with pytest.raises(ValueError):
            TIMOptions(max_rr_sets=0)

    def test_marginal_coverage_monotone_decreasing(self):
        graph = star_digraph(15)
        result = general_tim(
            RRICGenerator(graph), 3,
            options=TIMOptions(theta_override=300), rng=3,
        )
        gains = result.marginal_coverage
        assert all(gains[i] >= gains[i + 1] for i in range(len(gains) - 1))
