"""k-item extension of Com-IC (the paper's §8 future-work direction).

The paper sketches an extension to ``k`` items with ``k * 2^(k-1)`` GAP
parameters: for each item, one adoption probability per combination of
*other* items already adopted.  This module implements that extension using
the threshold (possible-world) semantics, which generalises cleanly:

* each node draws one threshold ``alpha_i`` per item;
* on being informed of item ``i`` while not yet decided, the node adopts
  iff ``alpha_i <= q_{i | S}`` where ``S`` is its currently-adopted set;
* whenever the node adopts some item, every *informed-but-undecided* item
  ``j`` is re-evaluated against the enlarged set — the natural
  generalisation of two-item reconsideration.

For ``k = 2`` these dynamics coincide exactly with Com-IC run under a
:class:`~repro.models.sources.WorldSource` (a tested invariant): the
single-chance "rejected" state of the two-item NLA is equivalent to a
threshold re-check that can never succeed later.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import GapError, SeedSetError
from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class MultiItemGaps:
    """Adoption probability table ``q_{i|S}`` for ``k`` items.

    ``table[i]`` maps each frozenset of *other* item indices to the adoption
    probability of item ``i`` given exactly that set is adopted.  All
    ``2^(k-1)`` subsets must be present for every item.
    """

    num_items: int
    table: tuple[Mapping[frozenset, float], ...] = field(repr=False)

    def __post_init__(self) -> None:
        if self.num_items < 1:
            raise GapError(f"need at least one item, got {self.num_items}")
        if len(self.table) != self.num_items:
            raise GapError(
                f"table has {len(self.table)} items, expected {self.num_items}"
            )
        for i, per_item in enumerate(self.table):
            others = [j for j in range(self.num_items) if j != i]
            expected = {
                frozenset(combo)
                for size in range(len(others) + 1)
                for combo in itertools.combinations(others, size)
            }
            if set(per_item.keys()) != expected:
                raise GapError(
                    f"item {i}: table must cover all {len(expected)} subsets of "
                    "other items"
                )
            for subset, q in per_item.items():
                if not 0.0 <= q <= 1.0:
                    raise GapError(f"q_{{{i}|{set(subset)}}} = {q} outside [0, 1]")
                if i in subset:
                    raise GapError(f"item {i} cannot condition on itself")

    def q(self, item: int, adopted_others: frozenset) -> float:
        """``q_{item | adopted_others}``."""
        return float(self.table[item][adopted_others])

    @classmethod
    def from_pairwise_gap(cls, gaps: GAP) -> "MultiItemGaps":
        """Embed a two-item :class:`~repro.models.gaps.GAP` (A=0, B=1)."""
        return cls(
            num_items=2,
            table=(
                {frozenset(): gaps.q_a, frozenset({1}): gaps.q_a_given_b},
                {frozenset(): gaps.q_b, frozenset({0}): gaps.q_b_given_a},
            ),
        )

    @classmethod
    def uniform(cls, num_items: int, q: float) -> "MultiItemGaps":
        """All adoption probabilities equal to ``q`` (fully independent items)."""
        tables = []
        for i in range(num_items):
            others = [j for j in range(num_items) if j != i]
            per_item = {
                frozenset(combo): q
                for size in range(len(others) + 1)
                for combo in itertools.combinations(others, size)
            }
            tables.append(per_item)
        return cls(num_items=num_items, table=tuple(tables))

    @classmethod
    def additive(
        cls, num_items: int, base: float, boost_per_item: float
    ) -> "MultiItemGaps":
        """Complement (or compete) additively: ``q_{i|S} = clip(base + |S| * boost)``.

        Positive ``boost_per_item`` models mutual complementarity growing
        with the number of already-adopted items; negative models mutual
        competition.  Probabilities are clipped into [0, 1].
        """
        tables = []
        for i in range(num_items):
            others = [j for j in range(num_items) if j != i]
            per_item = {
                frozenset(combo): min(
                    max(base + boost_per_item * size, 0.0), 1.0
                )
                for size in range(len(others) + 1)
                for combo in itertools.combinations(others, size)
            }
            tables.append(per_item)
        return cls(num_items=num_items, table=tuple(tables))

    @property
    def is_mutually_complementary(self) -> bool:
        """Whether every ``q_{i|.}`` is monotone non-decreasing under subset
        inclusion — the k-item generalisation of ``Q+``."""
        return self._is_monotone(increasing=True)

    @property
    def is_mutually_competitive(self) -> bool:
        """Whether every ``q_{i|.}`` is monotone non-increasing under subset
        inclusion — the k-item generalisation of ``Q-``."""
        return self._is_monotone(increasing=False)

    def _is_monotone(self, *, increasing: bool) -> bool:
        for i, per_item in enumerate(self.table):
            others = [j for j in range(self.num_items) if j != i]
            for subset, q in per_item.items():
                for extra in others:
                    if extra in subset:
                        continue
                    larger = per_item[subset | {extra}]
                    if increasing and larger < q:
                        return False
                    if not increasing and larger > q:
                        return False
        return True


def simulate_multi_item(
    graph: DiGraph,
    gaps: MultiItemGaps,
    seed_sets: Sequence[Iterable[int]],
    *,
    rng: SeedLike = None,
) -> np.ndarray:
    """One k-item cascade; returns a ``(k, n)`` boolean adoption matrix.

    ``seed_sets[i]`` seeds item ``i``.  Dynamics are the threshold semantics
    described in the module docstring; within a step, inform events are
    processed in a uniformly shuffled order (tie-breaking).
    """
    gen = make_rng(rng)
    k = gaps.num_items
    if len(seed_sets) != k:
        raise SeedSetError(f"expected {k} seed sets, got {len(seed_sets)}")
    n = graph.num_nodes
    adopted = np.zeros((k, n), dtype=bool)
    informed = np.zeros((k, n), dtype=bool)
    alpha = gen.random((k, n))
    edge_state = np.zeros(graph.num_edges, dtype=np.int8)  # 0 untested 1 live 2 blocked

    def edge_live(eid: int, p: float) -> bool:
        if edge_state[eid] == 0:
            edge_state[eid] = 1 if gen.random() < p else 2
        return edge_state[eid] == 1

    def adopted_set(v: int) -> frozenset:
        return frozenset(int(i) for i in np.flatnonzero(adopted[:, v]))

    newly: list[tuple[int, int]] = []  # (node, item)

    def try_adopt(v: int, item: int) -> None:
        """Threshold test for an informed, undecided item; cascades
        re-evaluation of the node's other informed items on success."""
        if adopted[item][v]:
            return
        others = adopted_set(v)
        if alpha[item][v] <= gaps.q(item, others):
            adopted[item][v] = True
            newly.append((v, item))
            for j in range(k):
                if j != item and informed[j][v] and not adopted[j][v]:
                    try_adopt(v, j)

    for item, seeds in enumerate(seed_sets):
        for s in seeds:
            v = int(s)
            if not 0 <= v < n:
                raise SeedSetError(f"seed {v} out of range [0, {n - 1}]")
            if not adopted[item][v]:
                adopted[item][v] = True
                informed[item][v] = True
                newly.append((v, item))

    while newly:
        outgoing = newly
        newly = []
        informs: list[tuple[int, int]] = []
        for u, item in outgoing:
            targets, probs, eids = graph.out_edges(u)
            for idx in range(targets.size):
                v = int(targets[idx])
                if informed[item][v]:
                    continue
                if edge_live(int(eids[idx]), float(probs[idx])):
                    informs.append((v, item))
        gen.shuffle(informs)
        for v, item in informs:
            if informed[item][v]:
                continue
            informed[item][v] = True
            try_adopt(v, item)
    return adopted


def estimate_multi_item_spread(
    graph: DiGraph,
    gaps: MultiItemGaps,
    seed_sets: Sequence[Iterable[int]],
    *,
    runs: int = 500,
    rng: SeedLike = None,
) -> np.ndarray:
    """Monte-Carlo estimate of ``sigma_i`` for every item.

    Returns a length-``k`` array of expected adoption counts.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    gen = make_rng(rng)
    seed_sets = [list(s) for s in seed_sets]
    totals = np.zeros(gaps.num_items, dtype=np.float64)
    for _ in range(runs):
        adopted = simulate_multi_item(graph, gaps, seed_sets, rng=gen)
        totals += adopted.sum(axis=1)
    return totals / runs
