"""Structural tests for the four RR-set generators, including deterministic
worlds that exercise each case of Algorithm 4 (RR-CIM)."""

import numpy as np
import pytest

from repro.errors import RegimeError
from repro.graph import DiGraph, path_digraph
from repro.models import GAP
from repro.models.possible_world import FrozenWorldSource, PossibleWorld
from repro.rng import make_rng
from repro.rrset import (
    RRCimGenerator,
    RRICGenerator,
    RRSimGenerator,
    RRSimPlusGenerator,
)
from repro.rrset.rr_cim import (
    LABEL_ADOPTED,
    LABEL_POTENTIAL,
    LABEL_REJECTED,
    LABEL_SUSPENDED,
    forward_label_a_status,
)


def frozen_world(graph, alpha_a=None, alpha_b=None, live=None):
    n, m = graph.num_nodes, graph.num_edges
    return FrozenWorldSource(
        PossibleWorld(
            live=np.ones(m, dtype=bool) if live is None else np.asarray(live),
            priority=np.linspace(0.05, 0.95, m),
            alpha_a=np.zeros(n) if alpha_a is None else np.asarray(alpha_a, dtype=float),
            alpha_b=np.zeros(n) if alpha_b is None else np.asarray(alpha_b, dtype=float),
            tau_a_first=np.ones(n, dtype=bool),
        )
    )


class TestRRIC:
    def test_path_ancestors(self):
        graph = path_digraph(5)
        rr = RRICGenerator(graph).generate(rng=0, root=3)
        assert sorted(rr.tolist()) == [0, 1, 2, 3]

    def test_root_always_included(self):
        graph = path_digraph(3, probability=0.0)
        rr = RRICGenerator(graph).generate(rng=0, root=2)
        assert rr.tolist() == [2]

    def test_random_root_in_range(self):
        graph = path_digraph(4)
        generator = RRICGenerator(graph)
        for _ in range(10):
            rr = generator.generate(rng=None)
            assert all(0 <= v < 4 for v in rr)

    def test_generate_many(self):
        graph = path_digraph(4)
        sets = RRICGenerator(graph).generate_many(5, rng=0)
        assert len(sets) == 5


class TestRRSimStructure:
    def test_regime_enforced(self):
        graph = path_digraph(3)
        with pytest.raises(RegimeError):
            RRSimGenerator(graph, GAP(0.3, 0.8, 0.5, 0.9), [0])  # q_b != q_ba
        with pytest.raises(RegimeError):
            RRSimGenerator(graph, GAP(0.8, 0.3, 0.5, 0.5), [0])  # competition

    def test_seed_range_checked(self):
        with pytest.raises(RegimeError):
            RRSimGenerator(path_digraph(3), GAP(0.3, 0.8, 0.5, 0.5), [7])

    def test_boosted_node_expands_backwards(self):
        """A node whose alpha_A lies in (q_a, q_ab) expands only when it is
        B-adopted in the world."""
        graph = path_digraph(3)
        gaps = GAP(0.3, 0.8, 0.5, 0.5)
        # alpha_A of node 1 requires the boost; B-seed at 0 reaches node 1
        # iff alpha_B(1) < q_b.
        boosted = frozen_world(graph, alpha_a=[0.0, 0.5, 0.0], alpha_b=[0.0, 0.2, 0.9])
        rr = RRSimGenerator(graph, gaps, [0]).generate(rng=0, root=2, world=boosted)
        assert sorted(rr.tolist()) == [0, 1, 2]
        unboosted = frozen_world(graph, alpha_a=[0.0, 0.5, 0.0], alpha_b=[0.0, 0.9, 0.9])
        rr = RRSimGenerator(graph, gaps, [0]).generate(rng=0, root=2, world=unboosted)
        assert sorted(rr.tolist()) == [1, 2]  # stops at the unboostable node

    def test_properties(self):
        generator = RRSimGenerator(path_digraph(3), GAP(0.3, 0.8, 0.5, 0.5), [0])
        assert generator.seeds_b == [0]
        assert generator.gaps.q_a == 0.3


class TestRRSimPlusStructure:
    def test_regime_enforced(self):
        with pytest.raises(RegimeError):
            RRSimPlusGenerator(path_digraph(3), GAP(0.3, 0.8, 0.5, 0.9), [0])

    def test_matches_rr_sim_in_fixed_world(self):
        graph = DiGraph.from_edges(
            6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 2, 1.0), (2, 5, 1.0)]
        )
        gaps = GAP(0.3, 0.8, 0.5, 0.5)
        seeds_b = [0, 3]
        for seed in range(6):
            gen1, gen2 = make_rng(seed), make_rng(seed)
            world_a = frozen_world(graph, alpha_a=[0.1] * 6, alpha_b=[0.2] * 6)
            world_b = frozen_world(graph, alpha_a=[0.1] * 6, alpha_b=[0.2] * 6)
            rr_sim = RRSimGenerator(graph, gaps, seeds_b).generate(
                rng=gen1, root=5, world=world_a
            )
            rr_plus = RRSimPlusGenerator(graph, gaps, seeds_b).generate(
                rng=gen2, root=5, world=world_b
            )
            assert sorted(rr_sim.tolist()) == sorted(rr_plus.tolist())

    def test_skips_forward_labeling_when_seeds_unreachable(self):
        """B-seeds in a separate component: the RR-set must match a run with
        no B-seeds at all (the forward pass is skipped)."""
        graph = DiGraph.from_edges(5, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)])
        gaps = GAP(0.3, 0.8, 0.5, 0.5)
        world = frozen_world(graph, alpha_a=[0.1, 0.5, 0.1, 0.1, 0.1],
                             alpha_b=[0.0] * 5)
        # Node 1 needs the boost; B-seed 3 cannot reach it -> backward BFS
        # stops at node 1.
        rr = RRSimPlusGenerator(graph, gaps, [3]).generate(rng=0, root=2, world=world)
        assert sorted(rr.tolist()) == [1, 2]


class TestRRCimForwardLabeling:
    def test_labels_on_path(self):
        graph = path_digraph(5)
        gaps = GAP(0.3, 0.8, 0.5, 1.0)
        # node1 adopted (alpha < q_a); node2 suspended; node3 potential
        # (reached via suspended node2); node4 rejected (alpha >= q_ab).
        world = frozen_world(
            graph, alpha_a=[0.0, 0.1, 0.5, 0.2, 0.9], alpha_b=[0.0] * 5
        )
        label = forward_label_a_status(graph, world, gaps, [0])
        assert label[0] == LABEL_ADOPTED
        assert label[1] == LABEL_ADOPTED
        assert label[2] == LABEL_SUSPENDED
        assert label[3] == LABEL_POTENTIAL
        assert label[4] == LABEL_REJECTED

    def test_promotion_from_potential_to_suspended(self):
        """A node first reached through a suspended chain, later through an
        adopted chain, must be promoted (the paper's revisit remark)."""
        # 0 -> 1 -> 3 (1 suspended) and 0 -> 2 -> 3 (2 adopted, longer in BFS
        # order); 3's alpha is in the suspended range.
        graph = DiGraph.from_edges(4, [(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.0), (2, 3, 1.0)])
        gaps = GAP(0.3, 0.8, 0.5, 1.0)
        world = frozen_world(graph, alpha_a=[0.0, 0.5, 0.1, 0.5], alpha_b=[0.0] * 4)
        label = forward_label_a_status(graph, world, gaps, [0])
        assert label[1] == LABEL_SUSPENDED
        assert label[2] == LABEL_ADOPTED
        assert label[3] == LABEL_SUSPENDED  # promoted from potential

    def test_promotion_to_adopted_continues_cascade(self):
        # 3 is adoptable (alpha < q_a) but first reached via suspended 1;
        # when adopted 2 reaches it, 3 must become adopted and label 4.
        graph = DiGraph.from_edges(
            5, [(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)]
        )
        gaps = GAP(0.3, 0.8, 0.5, 1.0)
        world = frozen_world(
            graph, alpha_a=[0.0, 0.5, 0.1, 0.1, 0.1], alpha_b=[0.0] * 5
        )
        label = forward_label_a_status(graph, world, gaps, [0])
        assert label[3] == LABEL_ADOPTED
        assert label[4] == LABEL_ADOPTED


class TestRRCimStructure:
    def test_regime_enforced(self):
        graph = path_digraph(3)
        with pytest.raises(RegimeError):
            RRCimGenerator(graph, GAP(0.3, 0.8, 0.5, 0.9), [0])  # q_ba != 1
        with pytest.raises(RegimeError):
            RRCimGenerator(graph, GAP(0.8, 0.3, 0.5, 1.0), [0])  # not Q+

    def test_adopted_root_yields_empty_set(self):
        graph = path_digraph(3)
        gaps = GAP(0.3, 0.8, 0.5, 1.0)
        world = frozen_world(graph, alpha_a=[0.0, 0.1, 0.1], alpha_b=[0.0] * 3)
        rr = RRCimGenerator(graph, gaps, [0]).generate(rng=0, root=2, world=world)
        assert rr.size == 0

    def test_rejected_root_yields_empty_set(self):
        graph = path_digraph(3)
        gaps = GAP(0.3, 0.8, 0.5, 1.0)
        world = frozen_world(graph, alpha_a=[0.0, 0.1, 0.95], alpha_b=[0.0] * 3)
        rr = RRCimGenerator(graph, gaps, [0]).generate(rng=0, root=2, world=world)
        assert rr.size == 0

    def test_unreachable_root_yields_empty_set(self):
        graph = DiGraph.from_edges(3, [(0, 1, 1.0)])
        gaps = GAP(0.3, 0.8, 0.5, 1.0)
        rr = RRCimGenerator(graph, gaps, [0]).generate(rng=0, root=2)
        assert rr.size == 0

    def test_case1_secondary_search_collects_b_feeders(self):
        """Suspended AB-diffusible root: every node that can push B to it
        (through B-diffusible nodes) belongs to the RR-set."""
        # B feeder chain: 3 -> 2 -> root 1; A chain 0 -> 1.
        graph = DiGraph.from_edges(4, [(0, 1, 1.0), (2, 1, 1.0), (3, 2, 1.0)])
        gaps = GAP(0.3, 0.8, 0.5, 1.0)
        world = frozen_world(
            graph,
            alpha_a=[0.0, 0.5, 0.9, 0.9],   # root suspended; feeders can't adopt A
            alpha_b=[0.0, 0.2, 0.2, 0.9],   # root and node2 B-diffusible
        )
        rr = RRCimGenerator(graph, gaps, [0]).generate(rng=0, root=1, world=world)
        # Node 2 pushes B to 1; node 3 pushes through 2; the A-seed 0 also
        # qualifies (seeding B there feeds B over the live edge 0 -> 1); and
        # the root itself always does.
        assert sorted(rr.tolist()) == [0, 1, 2, 3]

    def test_case2_not_ab_diffusible_only_root(self):
        graph = DiGraph.from_edges(3, [(0, 1, 1.0), (2, 1, 1.0)])
        gaps = GAP(0.3, 0.8, 0.5, 1.0)
        world = frozen_world(
            graph,
            alpha_a=[0.0, 0.5, 0.9],
            alpha_b=[0.0, 0.9, 0.2],  # root NOT B-diffusible -> not AB-diffusible
        )
        rr = RRCimGenerator(graph, gaps, [0]).generate(rng=0, root=1, world=world)
        assert rr.tolist() == [1]

    def test_case3_transits_through_potential(self):
        """Root potential; upstream suspended node found through the primary
        search; its B-feeders join too."""
        # A: 0 -> 1 (suspended) -> 2 (potential, root); B feeder 3 -> 1.
        graph = DiGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (3, 1, 1.0)])
        gaps = GAP(0.3, 0.8, 0.5, 1.0)
        world = frozen_world(
            graph,
            alpha_a=[0.0, 0.5, 0.1, 0.9],
            alpha_b=[0.0, 0.2, 0.2, 0.9],
        )
        rr = RRCimGenerator(graph, gaps, [0]).generate(rng=0, root=2, world=world)
        # The suspended node 1, its B-feeder 3, and the A-seed 0 (which can
        # also feed B to node 1) all flip the root; the root itself cannot
        # (it is A-potential: seeding B there never informs it of A).
        assert sorted(rr.tolist()) == [0, 1, 3]

    def test_case4_zigzag(self):
        """Figure-3-style gadget: root fed by a potential, non-AB-diffusible
        node u; u as B-seed unlocks suspended u0 which feeds A+B back."""
        # a(0) -> u0(1); u0 <-> u(2); u -> v(3).
        graph = DiGraph.from_edges(
            4, [(0, 1, 1.0), (1, 2, 1.0), (2, 1, 1.0), (2, 3, 1.0)]
        )
        gaps = GAP(0.3, 0.8, 0.5, 1.0)
        world = frozen_world(
            graph,
            # u0 suspended (0.5); u potential, alpha in [q_a, q_ab) = 0.5;
            # v potential with alpha < q_a.
            alpha_a=[0.0, 0.5, 0.5, 0.1],
            # u NOT B-diffusible (0.9 >= q_b); u0 B-diffusible (0.2).
            alpha_b=[0.0, 0.2, 0.9, 0.2],
        )
        rr = RRCimGenerator(graph, gaps, [0]).generate(rng=0, root=3, world=world)
        assert 2 in rr.tolist(), "case-4 zig-zag node must join the RR-set"
        # Verify against the model: with u as the only B-seed, v flips.
        from repro.models import simulate

        out_without = simulate(graph, gaps, [0], [], source=world)
        assert not out_without.a_adopted[3]
        out_with = simulate(graph, gaps, [0], [2], source=world)
        assert out_with.a_adopted[3]
