"""Tests for GAP sensitivity analysis (Theorem 10 as a measurement)."""

import pytest

from repro.analysis import (
    GAP_PARAMETERS,
    gap_sensitivity,
    perturb_gap,
)
from repro.errors import GapError
from repro.graph import path_digraph, star_digraph
from repro.models import GAP

Q_PLUS = GAP(q_a=0.3, q_a_given_b=0.7, q_b=0.4, q_b_given_a=0.8)


class TestPerturbGap:
    @pytest.mark.parametrize("parameter", GAP_PARAMETERS)
    def test_shift_applied(self, parameter):
        shifted = perturb_gap(Q_PLUS, parameter, 0.1)
        assert getattr(shifted, parameter) == pytest.approx(
            getattr(Q_PLUS, parameter) + 0.1
        )

    def test_clipping(self):
        assert perturb_gap(Q_PLUS, "q_a", 5.0).q_a == 1.0
        assert perturb_gap(Q_PLUS, "q_a", -5.0).q_a == 0.0

    def test_unknown_parameter_rejected(self):
        with pytest.raises(GapError, match="unknown GAP parameter"):
            perturb_gap(Q_PLUS, "rho_a", 0.1)

    def test_original_untouched(self):
        perturb_gap(Q_PLUS, "q_b", 0.2)
        assert Q_PLUS.q_b == 0.4


class TestGapSensitivity:
    def test_exact_monotone_on_single_edge(self):
        """On edge 0 -> 1 with p = 1, the spread at q_a is exactly 1 + q_a."""
        graph = path_digraph(2, probability=1.0)
        result = gap_sensitivity(
            graph, Q_PLUS, [0], [],
            parameter="q_a", deltas=(-0.2, 0.0, 0.2), runs=2500, rng=1,
        )
        assert result.parameter == "q_a"
        assert result.values == pytest.approx([0.1, 0.3, 0.5])
        for value, spread in zip(result.values, result.spreads):
            assert spread == pytest.approx(1.0 + value, abs=0.05)
        assert result.is_monotone(slack=0.02)
        assert result.all_in_q_plus

    def test_q_plus_flag_false_when_sweep_leaves_region(self):
        graph = path_digraph(2, probability=1.0)
        result = gap_sensitivity(
            graph, Q_PLUS, [0], [],
            parameter="q_a", deltas=(0.0, 0.5), runs=20, rng=2,
        )
        # q_a = 0.8 > q_a_given_b = 0.7 leaves Q+.
        assert not result.all_in_q_plus

    def test_cross_parameter_boost_visible(self):
        """Raising q_{B|∅} with complementary GAPs raises sigma_A."""
        graph = star_digraph(40, probability=1.0)
        gaps = GAP(q_a=0.2, q_a_given_b=0.9, q_b=0.3, q_b_given_a=0.9)
        result = gap_sensitivity(
            graph, gaps, [0], [0],
            parameter="q_b", deltas=(-0.2, 0.0, 0.3), runs=500, rng=3,
        )
        assert result.spreads[-1] > result.spreads[0]
        assert result.range_width() > 1.0

    def test_rows_shape(self):
        graph = path_digraph(2)
        result = gap_sensitivity(
            graph, Q_PLUS, [0], [], parameter="q_b", deltas=(0.0,), runs=10, rng=4
        )
        rows = result.as_rows()
        assert len(rows) == 1
        assert set(rows[0]) == {"value", "spread", "stderr"}

    def test_deterministic(self):
        graph = star_digraph(10, probability=0.5)
        kwargs = dict(parameter="q_a", deltas=(0.0, 0.1), runs=50, rng=5)
        first = gap_sensitivity(graph, Q_PLUS, [0], [1], **kwargs)
        second = gap_sensitivity(graph, Q_PLUS, [0], [1], **kwargs)
        assert first.spreads == second.spreads
