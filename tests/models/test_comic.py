"""Unit tests for the Com-IC diffusion engine (deterministic behaviours)."""

import numpy as np
import pytest

from repro.errors import SeedSetError
from repro.graph import DiGraph, path_digraph, star_digraph
from repro.models import GAP, ItemState, simulate
from repro.models.possible_world import FrozenWorldSource, sample_possible_world


class TestSeeds:
    def test_seeds_adopt_unconditionally(self):
        g = path_digraph(3)
        gaps = GAP(q_a=0.0, q_a_given_b=0.0, q_b=0.0, q_b_given_a=0.0)
        out = simulate(g, gaps, [0], [2], rng=0)
        assert out.a_adopted[0] and out.b_adopted[2]
        assert out.num_a_adopted == 1 and out.num_b_adopted == 1

    def test_dual_seed_adopts_both(self):
        g = path_digraph(2)
        out = simulate(g, GAP.independent(), [0], [0], rng=0)
        assert out.a_adopted[0] and out.b_adopted[0]

    def test_duplicate_seeds_deduplicated(self):
        g = path_digraph(2)
        out = simulate(g, GAP.classic_ic(), [0, 0, 0], [], rng=0)
        assert out.num_a_adopted == 2

    def test_rejects_out_of_range_seed(self):
        g = path_digraph(2)
        with pytest.raises(SeedSetError):
            simulate(g, GAP.classic_ic(), [5], [], rng=0)
        with pytest.raises(SeedSetError):
            simulate(g, GAP.classic_ic(), [], [-1], rng=0)

    def test_empty_seeds_empty_outcome(self):
        g = path_digraph(3)
        out = simulate(g, GAP.classic_ic(), [], [], rng=0)
        assert out.num_a_adopted == 0 and out.num_b_adopted == 0
        assert out.steps == 0


class TestDeterministicCascades:
    def test_full_path_adoption(self):
        g = path_digraph(5)
        out = simulate(g, GAP.classic_ic(), [0], [], rng=0)
        assert out.num_a_adopted == 5
        assert out.adopted_a_at.tolist() == [0, 1, 2, 3, 4]

    def test_blocked_edge_stops_cascade(self):
        g = DiGraph.from_edges(3, [(0, 1, 0.0), (1, 2, 1.0)])
        out = simulate(g, GAP.classic_ic(), [0], [], rng=0)
        assert out.num_a_adopted == 1

    def test_independent_items_both_spread(self):
        g = path_digraph(4)
        out = simulate(g, GAP.independent(), [0], [0], rng=0)
        assert out.num_a_adopted == 4 and out.num_b_adopted == 4

    def test_star_broadcast(self):
        g = star_digraph(6)
        out = simulate(g, GAP.classic_ic(), [0], [], rng=0)
        assert out.num_a_adopted == 6
        assert np.all(out.adopted_a_at[1:] == 1)


class TestNlaStates:
    def test_failed_unconditional_test_suspends(self):
        g = path_digraph(2)
        gaps = GAP(q_a=0.0, q_a_given_b=0.0, q_b=0.0, q_b_given_a=0.0)
        out = simulate(g, gaps, [0], [], rng=0)
        assert out.joint_state(1) == (ItemState.SUSPENDED, ItemState.IDLE)

    def test_failed_conditional_test_rejects(self):
        # Node 1 adopts B first (q_b = 1), then is informed of A with
        # q_{A|B} = 0: it must reject A.
        g = path_digraph(2)
        gaps = GAP(q_a=1.0, q_a_given_b=0.0, q_b=1.0, q_b_given_a=1.0)
        # Make B arrive strictly earlier: B seeded at node 1's predecessor is
        # node 0 as well, so force order via a longer A path.
        g2 = DiGraph.from_edges(4, [(0, 1, 1.0), (1, 3, 1.0), (2, 3, 1.0)])
        out = simulate(g2, gaps, [0], [2], rng=0)
        # B reaches node 3 at step 1; A reaches it at step 2.
        assert out.b_adopted[3]
        assert out.joint_state(3)[0] == ItemState.REJECTED

    def test_reconsideration_adopts_when_q_ab_is_one(self):
        # Node 1: informed of A with q_a = 0 -> suspended; then adopts B and
        # reconsiders A with rho = (1 - 0)/(1 - 0) = 1 -> adopts.
        g = DiGraph.from_edges(3, [(0, 2, 1.0), (1, 2, 1.0)])
        gaps = GAP(q_a=0.0, q_a_given_b=1.0, q_b=1.0, q_b_given_a=1.0)
        out = simulate(g, gaps, [0], [1], rng=0)
        assert out.a_adopted[2] and out.b_adopted[2]

    def test_reconsideration_failure_rejects(self):
        g = DiGraph.from_edges(3, [(0, 2, 1.0), (1, 2, 1.0)])
        gaps = GAP(q_a=0.0, q_a_given_b=0.0, q_b=1.0, q_b_given_a=1.0)
        out = simulate(g, gaps, [0], [1], rng=0)
        assert out.b_adopted[2]
        assert not out.a_adopted[2]

    def test_pure_competition_first_wins(self):
        # A arrives at node 2 in one hop, B needs two: A wins, B rejected.
        g = DiGraph.from_edges(4, [(0, 2, 1.0), (1, 3, 1.0), (3, 2, 1.0)])
        out = simulate(g, GAP.pure_competition(), [0], [1], rng=0)
        assert out.a_adopted[2]
        assert out.joint_state(2)[1] == ItemState.REJECTED

    def test_adoption_propagates_from_reconsidered_node(self):
        # Node 2 adopts A only by reconsideration; node 3 downstream of 2
        # must then be informed of A.
        g = DiGraph.from_edges(4, [(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        gaps = GAP(q_a=0.0, q_a_given_b=1.0, q_b=1.0, q_b_given_a=1.0)
        out = simulate(g, gaps, [0], [1], rng=0)
        assert out.a_adopted[2]
        # Node 3 is informed of A; with q_{A|B}=1 and B adopted it adopts.
        assert out.a_adopted[3] and out.b_adopted[3]


class TestOutcomeApi:
    def test_counts_match_masks(self):
        g = path_digraph(4)
        out = simulate(g, GAP.independent(0.7, 0.7), [0], [0], rng=1)
        assert out.num_a_adopted == int(out.a_adopted.sum())
        assert out.num_b_adopted == int(out.b_adopted.sum())

    def test_adoption_times_only_for_adopters(self):
        g = path_digraph(4)
        out = simulate(g, GAP.independent(0.5, 0.5), [0], [], rng=2)
        assert np.all((out.adopted_a_at >= 0) == out.a_adopted)

    def test_max_steps_truncates(self):
        g = path_digraph(10)
        out = simulate(g, GAP.classic_ic(), [0], [], rng=0, max_steps=3)
        assert out.num_a_adopted == 4  # seed + 3 steps

    def test_world_source_is_reusable_and_deterministic(self):
        g = path_digraph(6)
        world = sample_possible_world(g, rng=3)
        src = FrozenWorldSource(world)
        out1 = simulate(g, GAP.independent(0.6, 0.6), [0], [], source=src)
        out2 = simulate(g, GAP.independent(0.6, 0.6), [0], [], source=src)
        assert np.array_equal(out1.a_adopted, out2.a_adopted)
