"""The shared invalidation vocabulary: why a cached artifact was rejected.

Before this module, three layers described "we could not serve the cached
thing" in three private dialects: the store's quarantine ``reason.json``
carried free-form exception text, :class:`~repro.api.session.SessionStats`
counted ``store_invalidations`` with no reason at all, and
``diagnostics.resilience`` events stringified whatever the helper had on
hand.  :class:`InvalidationReason` is the one enum all of them now speak —
``(str, Enum)``, so members JSON-serialise as their string value and
compare equal to it, which keeps every existing ``reason == "..."``
consumer working.

:func:`coerce_reason` is the deprecation shim: it accepts an enum member,
a canonical value string, or one of the legacy free-form strings the old
layers emitted (matched by their stable substrings), mapping the latter to
the right member with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from enum import Enum

__all__ = ["InvalidationReason", "coerce_reason"]


class InvalidationReason(str, Enum):
    """Why a cached pool (in memory or on disk) could not be served as-is."""

    #: entry was sampled from a different graph (fingerprint mismatch).
    FINGERPRINT_MISMATCH = "fingerprint_mismatch"
    #: entry's manifest describes a different :class:`~repro.store.PoolKey`.
    KEY_MISMATCH = "key_mismatch"
    #: entry was written by an incompatible on-disk format version.
    FORMAT_VERSION = "format_version"
    #: column files fail their shape or CRC-32 checks (on-disk corruption).
    CORRUPT_COLUMNS = "corrupt_columns"
    #: manifest is unreadable, unparsable, or not a pool-store manifest.
    MALFORMED_MANIFEST = "malformed_manifest"
    #: graph delta churn exceeded ``EngineConfig.delta_churn_threshold`` —
    #: the pool was regenerated rather than repaired.
    DELTA_CHURN = "delta_churn"
    #: pool lacks the root / touch columns incremental repair needs.
    TOUCH_ABSENT = "touch_absent"

    def __str__(self) -> str:  # "fingerprint_mismatch", not the repr
        return self.value


#: stable substrings of the legacy free-form reason strings, in match
#: order (first hit wins; more specific patterns come first).
_LEGACY_PATTERNS: tuple[tuple[str, InvalidationReason], ...] = (
    ("different graph", InvalidationReason.FINGERPRINT_MISMATCH),
    ("fingerprint", InvalidationReason.FINGERPRINT_MISMATCH),
    ("does not match requested", InvalidationReason.KEY_MISMATCH),
    ("format_version", InvalidationReason.FORMAT_VERSION),
    ("CRC-32", InvalidationReason.CORRUPT_COLUMNS),
    ("manifest says", InvalidationReason.CORRUPT_COLUMNS),
    ("column file", InvalidationReason.CORRUPT_COLUMNS),
    ("column dtypes", InvalidationReason.CORRUPT_COLUMNS),
    ("touch", InvalidationReason.TOUCH_ABSENT),
    ("churn", InvalidationReason.DELTA_CHURN),
    ("manifest", InvalidationReason.MALFORMED_MANIFEST),
)


def coerce_reason(value) -> InvalidationReason:
    """Normalise ``value`` into an :class:`InvalidationReason`.

    Enum members and canonical value strings pass through silently.  A
    legacy free-form string (the exception text the pre-enum layers used
    as the reason) is mapped to the member whose stable substring it
    carries, with a :class:`DeprecationWarning` — and anything totally
    unrecognisable degrades to :attr:`InvalidationReason.MALFORMED_MANIFEST`
    rather than raising, because reason accounting must never break the
    recovery path it describes.
    """
    if isinstance(value, InvalidationReason):
        return value
    text = str(value)
    try:
        return InvalidationReason(text)
    except ValueError:
        pass
    for pattern, reason in _LEGACY_PATTERNS:
        if pattern in text:
            warnings.warn(
                f"free-form invalidation reason {text!r} is deprecated; "
                f"pass InvalidationReason.{reason.name} instead",
                DeprecationWarning,
                stacklevel=2,
            )
            return reason
    warnings.warn(
        f"unrecognised invalidation reason {text!r}; recording it as "
        f"{InvalidationReason.MALFORMED_MANIFEST.value!r}",
        DeprecationWarning,
        stacklevel=2,
    )
    return InvalidationReason.MALFORMED_MANIFEST
