"""`FaultPlan`: deterministic, seeded fault injection for resilience tests.

The resilience layer (shard retry in :mod:`repro.parallel`, quarantine
and save-degradation in :mod:`repro.store`, deadline best-effort in the
engines) exists to survive events that are miserable to produce on
demand — a worker segfault mid-batch, a torn manifest, a full disk.
Rather than killing real processes from tests (slow, racy, platform
bound), the components expose **named injection points**: cheap hooks
that consult the active :class:`FaultPlan` and, when a
:class:`FaultSpec` matches, simulate the failure exactly where the real
one would strike.  With no plan active every hook is a single
context-variable read returning ``None`` — the production paths carry no
other overhead.

Determinism is the design requirement: a plan matches specs by an
*arming counter* per site (the ``at``-th .. ``at+times-1``-th time the
site is reached fires), never by wall clock or randomness, and any
random bytes a fault needs (e.g. column corruption) come from a
per-site stream derived from the plan's seed.  The same plan against
the same code path therefore fires the same faults at the same points,
every run — ordinary pytest exercises every failure path.

Injection sites
---------------

==========================  =====================================================
site                        meaning (kinds it honours)
==========================  =====================================================
``parallel.shard``          one shard dispatch to a worker process
                            (``crash`` — the worker ``os._exit``\\ s;
                            ``hang`` — the worker sleeps past the shard
                            deadline; ``slow`` — the worker sleeps
                            ``delay_s`` then computes normally)
``engine.top_up``           one TIM/IMM sampling chunk (``slow`` — sleep
                            ``delay_s`` before sampling; ``error`` —
                            raise :class:`InjectedFault`)
``store.save.columns``      column write during :meth:`PoolStore.save`
                            (``enospc`` — raise ``OSError(ENOSPC)``;
                            ``eacces`` — raise ``OSError(EACCES)``)
``store.save.manifest``     manifest write during save (``torn`` — the
                            manifest is truncated mid-JSON, as a torn
                            write would leave it)
``store.save.install``      the stage→rename step (``crash`` — raise
                            :class:`InjectedFault` *without* cleaning the
                            staging directory, as a killed writer would)
``store.load``              entry read during :meth:`PoolStore.load`
                            (``corrupt`` — deterministically overwrite
                            bytes of the entry's ``nodes.npy``)
``pipeline.fit_edges``      the edge-probability stage of
                            :func:`~repro.pipeline.run_pipeline`
                            (``error`` — raise :class:`InjectedFault`;
                            ``slow`` — sleep ``delay_s`` before fitting)
``pipeline.fit_gap``        the GAP-estimation stage of the pipeline
                            (same kinds as ``pipeline.fit_edges``)
==========================  =====================================================

Usage::

    plan = FaultPlan([FaultSpec("parallel.shard", "crash")], seed=7)
    with fault_scope(plan):
        engine.generate_batch(2000, rng=3)   # first shard's worker dies
    assert plan.fired[0]["kind"] == "crash"
"""

from __future__ import annotations

import zlib
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

import numpy as np

#: every site the library arms; specs naming anything else are typos.
KNOWN_SITES = frozenset(
    {
        "parallel.shard",
        "engine.top_up",
        "store.save.columns",
        "store.save.manifest",
        "store.save.install",
        "store.load",
        "pipeline.fit_edges",
        "pipeline.fit_gap",
    }
)

#: kinds each site knows how to simulate (documented above).
KNOWN_KINDS = frozenset(
    {"crash", "hang", "slow", "error", "enospc", "eacces", "torn", "corrupt"}
)


class InjectedFault(Exception):
    """An artificial failure raised by a fault-injection hook.

    Deliberately *not* a :class:`~repro.errors.ReproError`: the library's
    own degradation paths catch specific real exception types
    (``OSError``, ``StoreError``, ``BrokenProcessPool``), and an injected
    stand-in for an uncatchable event (a killed process) must never be
    swallowed by them accidentally.
    """

    def __init__(self, site: str, kind: str) -> None:
        super().__init__(f"injected fault {kind!r} at {site!r}")
        self.site = site
        self.kind = kind


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: fire ``times`` times starting at the ``at``-th
    arming of ``site`` (armings are counted from 0 per site)."""

    site: str
    kind: str
    #: first arming index of ``site`` this spec fires on.
    at: int = 0
    #: how many consecutive armings it fires on (use a large value to
    #: make a site fail persistently, e.g. to exhaust retries).
    times: int = 1
    #: sleep length for ``slow`` / ``hang`` kinds (seconds).
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: {sorted(KNOWN_SITES)}"
            )
        if self.kind not in KNOWN_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {sorted(KNOWN_KINDS)}"
            )
        if self.at < 0:
            raise ValueError(f"at must be >= 0, got {self.at}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")

    def matches(self, index: int) -> bool:
        """Whether this spec fires on the ``index``-th arming of its site."""
        return self.at <= index < self.at + self.times


class FaultPlan:
    """A deterministic schedule of injected faults.

    ``specs`` is the full schedule; ``seed`` feeds the per-site random
    streams faults draw corruption bytes from.  The plan is stateful —
    :meth:`arm` advances one counter per site — so use a fresh plan per
    scenario.  :attr:`fired` records every fault that actually fired (in
    order) for test assertions.
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), *, seed: int = 0) -> None:
        self._specs = tuple(specs)
        for spec in self._specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(
                    f"specs must be FaultSpec instances, got {type(spec).__name__}"
                )
        self._seed = int(seed)
        self._counters: dict[str, int] = {}
        #: chronological record of fired faults: {site, kind, index}.
        self.fired: list[dict] = []

    @property
    def specs(self) -> tuple[FaultSpec, ...]:
        """The plan's schedule, as given."""
        return self._specs

    @property
    def seed(self) -> int:
        """Seed of the per-site corruption streams."""
        return self._seed

    def arm(self, site: str) -> Optional[FaultSpec]:
        """Advance ``site``'s arming counter; the spec to fire, if any.

        The first spec (in schedule order) matching the current arming
        index wins, so overlapping specs are resolved deterministically.
        """
        if site not in KNOWN_SITES:
            raise ValueError(f"unknown fault site {site!r}")
        index = self._counters.get(site, 0)
        self._counters[site] = index + 1
        for spec in self._specs:
            if spec.site == site and spec.matches(index):
                self.fired.append({"site": site, "kind": spec.kind, "index": index})
                return spec
        return None

    def armings(self, site: str) -> int:
        """How many times ``site`` has been armed so far."""
        return self._counters.get(site, 0)

    def rng_for(self, site: str) -> np.random.Generator:
        """A deterministic random stream for ``site``'s fault payloads."""
        return np.random.default_rng(
            [self._seed, zlib.crc32(site.encode("utf-8"))]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultPlan(specs={len(self._specs)}, seed={self._seed}, "
            f"fired={len(self.fired)})"
        )


_ACTIVE_PLAN: ContextVar[Optional[FaultPlan]] = ContextVar(
    "repro_active_fault_plan", default=None
)


def active_plan() -> Optional[FaultPlan]:
    """The fault plan governing the current context, or ``None``."""
    return _ACTIVE_PLAN.get()


@contextmanager
def fault_scope(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Install ``plan`` as the context's active fault plan."""
    token = _ACTIVE_PLAN.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE_PLAN.reset(token)


def fire(site: str) -> Optional[FaultSpec]:
    """Arm ``site`` against the active plan (the hook the library calls).

    With no plan active this is a single context-variable read — the
    production cost of carrying the injection points.
    """
    plan = _ACTIVE_PLAN.get()
    if plan is None:
        return None
    return plan.arm(site)
