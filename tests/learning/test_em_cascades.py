"""Tests for the EM cascade-learning estimator (Saito et al. style)."""

import numpy as np
import pytest

from repro.errors import EstimationError, SeedSetError
from repro.graph import DiGraph, path_digraph, star_digraph
from repro.learning.em_cascades import (
    EMResult,
    em_learn_probabilities,
    generate_ic_episodes,
    simulate_ic_with_times,
)


class TestSimulateWithTimes:
    def test_deterministic_path(self):
        graph = path_digraph(4, probability=1.0)
        times = simulate_ic_with_times(graph, [0], rng=1)
        assert list(times) == [0, 1, 2, 3]

    def test_never_activated_marked_minus_one(self):
        graph = path_digraph(3, probability=0.0)
        times = simulate_ic_with_times(graph, [0], rng=2)
        assert list(times) == [0, -1, -1]

    def test_seed_validation(self):
        with pytest.raises(SeedSetError):
            simulate_ic_with_times(path_digraph(3), [5])

    def test_multiple_seeds_start_at_zero(self):
        graph = path_digraph(5, probability=1.0)
        times = simulate_ic_with_times(graph, [0, 3], rng=3)
        assert times[0] == 0 and times[3] == 0
        assert times[4] == 1


class TestGenerateEpisodes:
    def test_shapes_and_count(self):
        graph = star_digraph(6, probability=0.5)
        episodes = generate_ic_episodes(graph, 10, rng=4)
        assert len(episodes) == 10
        assert all(e.shape == (6,) for e in episodes)

    def test_validation(self):
        graph = star_digraph(4)
        with pytest.raises(EstimationError):
            generate_ic_episodes(graph, -1)
        with pytest.raises(EstimationError):
            generate_ic_episodes(graph, 2, seeds_per_episode=0)
        with pytest.raises(EstimationError):
            generate_ic_episodes(graph, 2, seeds_per_episode=5)

    def test_reproducible(self):
        graph = star_digraph(8, probability=0.4)
        a = generate_ic_episodes(graph, 5, rng=9)
        b = generate_ic_episodes(graph, 5, rng=9)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))


class TestEMRecovery:
    def test_single_parent_recovers_frequency(self):
        """With one candidate parent per success, EM reduces to counting."""
        graph = star_digraph(41, probability=0.3)
        episodes = [
            simulate_ic_with_times(graph, [0], rng=seed) for seed in range(400)
        ]
        result = em_learn_probabilities(graph, episodes)
        assert result.converged
        # Every hub->leaf edge was attempted in all 400 episodes.
        assert int(result.observations.min()) == 400
        assert float(result.probabilities.mean()) == pytest.approx(0.3, abs=0.03)

    def test_multi_parent_symmetric_credit(self):
        """Two symmetric parents must receive symmetric estimates."""
        graph = DiGraph.from_edges(3, [(0, 2), (1, 2)], default_probability=0.5)
        episodes = [
            simulate_ic_with_times(graph, [0, 1], rng=seed) for seed in range(800)
        ]
        result = em_learn_probabilities(graph, episodes)
        p = result.probabilities
        assert p[0] == pytest.approx(p[1], abs=0.08)
        assert p.mean() == pytest.approx(0.5, abs=0.08)

    def test_chain_with_intermediate_failures(self):
        """On a path the estimator sees both successes and failures."""
        graph = path_digraph(3, probability=0.6)
        episodes = [
            simulate_ic_with_times(graph, [0], rng=seed) for seed in range(1000)
        ]
        result = em_learn_probabilities(graph, episodes)
        assert result.probabilities[0] == pytest.approx(0.6, abs=0.06)
        # Edge (1, 2) is only observed when node 1 activated (~60% of runs).
        assert result.probabilities[1] == pytest.approx(0.6, abs=0.08)
        assert result.observations[1] < result.observations[0]

    def test_unobserved_edges_keep_initial(self):
        graph = path_digraph(3, probability=1.0)
        # Seed at node 2 only: no edge is ever attempted.
        episodes = [simulate_ic_with_times(graph, [2], rng=1)]
        result = em_learn_probabilities(graph, episodes, initial=0.25)
        assert np.all(result.observations == 0)
        assert np.allclose(result.probabilities, 0.25)

    def test_as_graph_round_trip(self):
        graph = path_digraph(3, probability=0.5)
        episodes = generate_ic_episodes(graph, 50, rng=6)
        result = em_learn_probabilities(graph, episodes)
        learned = result.as_graph(graph)
        assert learned.num_edges == graph.num_edges
        assert np.array_equal(learned.edge_probabilities, result.probabilities)


class TestEMValidation:
    def test_bad_episode_shape(self):
        graph = path_digraph(3)
        with pytest.raises(EstimationError, match="shape"):
            em_learn_probabilities(graph, [np.zeros(5, dtype=np.int64)])

    def test_bad_parameters(self):
        graph = path_digraph(3)
        episodes = generate_ic_episodes(graph, 2, rng=1)
        with pytest.raises(EstimationError):
            em_learn_probabilities(graph, episodes, max_iterations=0)
        with pytest.raises(EstimationError):
            em_learn_probabilities(graph, episodes, tolerance=-1.0)
        with pytest.raises(EstimationError):
            em_learn_probabilities(graph, episodes, initial=1.0)

    def test_no_episodes(self):
        graph = path_digraph(3, probability=0.5)
        result = em_learn_probabilities(graph, [])
        assert isinstance(result, EMResult)
        assert np.all(result.observations == 0)


class TestLogLikelihoodTrace:
    def test_trace_length_is_iterations_plus_one(self):
        graph = star_digraph(8, probability=0.4)
        episodes = generate_ic_episodes(graph, 40, rng=9)
        result = em_learn_probabilities(graph, episodes, max_iterations=15)
        assert len(result.log_likelihoods) == result.iterations + 1

    def test_trace_is_monotone_non_decreasing(self):
        """The observed-data log-likelihood never drops across M-steps."""
        graph = star_digraph(10, probability=0.35)
        episodes = generate_ic_episodes(graph, 60, rng=13)
        result = em_learn_probabilities(graph, episodes, max_iterations=25)
        trace = result.log_likelihoods
        assert len(trace) >= 2
        assert all(b >= a - 1e-9 for a, b in zip(trace, trace[1:]))

    def test_trace_defaults_empty(self):
        result = EMResult(
            probabilities=np.zeros(0),
            iterations=0,
            converged=True,
            observations=np.zeros(0, dtype=np.int64),
        )
        assert result.log_likelihoods == ()


class TestChildStreamConvention:
    """Per-episode child streams (the RR-layer seeding convention)."""

    def test_episode_prefix_stable_under_corpus_growth(self):
        graph = star_digraph(8, probability=0.4)
        short = generate_ic_episodes(graph, 5, rng=21)
        long = generate_ic_episodes(graph, 9, rng=21)
        assert all(np.array_equal(x, y) for x, y in zip(short, long))

    def test_synthetic_log_pair_stable_under_extra_pairs(self):
        from repro.learning import generate_synthetic_log
        from repro.models import GAP

        gap = GAP(q_a=0.3, q_a_given_b=0.75, q_b=0.5, q_b_given_a=0.5)
        solo = generate_synthetic_log([("a", "b", gap)], num_users=50, rng=17)
        both = generate_synthetic_log(
            [("a", "b", gap), ("c", "d", gap)], num_users=50, rng=17
        )
        for user in solo.users:
            for item in ("a", "b"):
                assert solo.rate_time(user, item) == both.rate_time(user, item)
                assert (
                    solo.inform_time(user, item)
                    == both.inform_time(user, item)
                )
