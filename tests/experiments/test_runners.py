"""Integration tests for the table/figure runners at miniature scale.

These assert structure (columns, row counts) and the stable qualitative
claims (orderings that survive tiny instances), not the paper's numbers —
EXPERIMENTS.md records the full-scale comparison.
"""

import pytest

from repro.experiments import (
    ExperimentScale,
    figure4_epsilon_effect,
    figure5_selfinfmax_spread,
    figure6_compinfmax_boost,
    figure7a_runtime,
    figure7b_scalability,
    figure8_sa_stress,
    table1_dataset_stats,
    table2_improvement,
    table8_sandwich_ratio,
    tables5to7_learned_gaps,
)
from repro.rrset import TIMOptions


@pytest.fixture(scope="module")
def tiny() -> ExperimentScale:
    return ExperimentScale(
        scale=0.015,
        k=3,
        opposite_size=6,
        mid_rank_start=4,
        mc_runs=50,
        tim_options=TIMOptions(theta_override=600),
        datasets=("flixster",),
        seed=7,
    )


class TestTable1:
    def test_structure(self, tiny):
        result = table1_dataset_stats(tiny)
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row["dataset"] == "flixster"
        assert row["nodes"] == round(12_900 * 0.015)
        assert row["paper_avg_out_degree"] == 14.8


class TestTable2:
    def test_structure_and_positive_copying_gap(self, tiny):
        result = table2_improvement(tiny)
        assert len(result.rows) == 6  # 3 SIM + 3 CIM settings
        problems = {row["problem"] for row in result.rows}
        assert problems == {"SelfInfMax", "CompInfMax"}
        # The stable claim at any scale: GeneralTIM beats Copying of
        # mid-tier seeds for SelfInfMax.
        sim_rows = [r for r in result.rows if r["problem"] == "SelfInfMax"]
        assert all(r["impr_vs_copying_pct"] > 0 for r in sim_rows)


class TestTables5to7:
    def test_recovery(self, tiny):
        result = tables5to7_learned_gaps(tiny, num_users=6000)
        assert len(result.rows) == 12
        recovered = [row["recovered"] for row in result.rows]
        # With 6K users nearly all pairs should recover their ground truth.
        assert sum(recovered) >= len(recovered) - 2


class TestTable8:
    def test_ratios_in_unit_interval(self, tiny):
        result = table8_sandwich_ratio(tiny)
        row = result.rows[0]
        ratio_cols = [c for c in result.columns if c != "dataset"]
        for col in ratio_cols:
            assert 0.0 <= row[col] <= 1.0, col
        # Learned (close) GAPs must give a ratio near 1 (paper: > 0.99).
        assert row["SIM_learn"] > 0.9


class TestFigure4:
    def test_runtime_falls_with_epsilon(self, tiny):
        result = figure4_epsilon_effect(
            tiny, epsilons=(0.3, 1.0), max_rr_sets=4000
        )
        assert len(result.rows) == 2
        fast = result.rows[-1]
        slow = result.rows[0]
        assert fast["theta"] <= slow["theta"]
        assert fast["rr_sim_time_s"] <= slow["rr_sim_time_s"] * 1.5


class TestFigure5:
    def test_rr_beats_random_at_full_k(self, tiny):
        result = figure5_selfinfmax_spread(tiny)
        by_method = {
            (r["method"], r["num_seeds"]): r["a_spread"] for r in result.rows
        }
        assert by_method[("RR", tiny.k)] >= by_method[("Random", tiny.k)]

    def test_spread_monotone_in_k_for_rr(self, tiny):
        result = figure5_selfinfmax_spread(tiny)
        rr = sorted(
            (r["num_seeds"], r["a_spread"])
            for r in result.rows
            if r["method"] == "RR"
        )
        values = [v for _, v in rr]
        # Allow tiny MC wiggle.
        assert all(b >= a - 1.0 for a, b in zip(values, values[1:]))


class TestFigure6:
    def test_anchor_reported_and_rr_competitive(self, tiny):
        result = figure6_compinfmax_boost(tiny)
        assert all(r["sigma_a_no_b"] > 0 for r in result.rows)
        by_method = {
            (r["method"], r["num_seeds"]): r["boost"] for r in result.rows
        }
        assert by_method[("RR", tiny.k)] >= by_method[("Random", tiny.k)] - 0.5


class TestFigure7:
    def test_runtime_columns(self, tiny):
        result = figure7a_runtime(tiny, include_greedy=True,
                                  greedy_pool=8, greedy_runs=10)
        row = result.rows[0]
        for col in ("rr_sim_s", "rr_sim_plus_s", "rr_cim_s",
                    "greedy_sim_s", "greedy_cim_s"):
            assert row[col] >= 0.0

    def test_scalability_rows(self, tiny):
        result = figure7b_scalability(tiny, sizes=(200, 400), theta=300)
        assert [r["nodes"] for r in result.rows] == [200, 400]
        assert all(r["rr_sim_plus_s"] >= 0 for r in result.rows)


class TestFigure8:
    def test_structure_and_small_error(self, tiny):
        result = figure8_sa_stress(tiny, greedy_pool=8, greedy_runs=10)
        assert len(result.rows) == 6
        sim_rows = [r for r in result.rows if r["problem"] == "SelfInfMax"]
        # SA stays effective: the winner is never dramatically better than
        # the bound-derived candidates (paper reports <= 0.4% error; tiny
        # scale is noisier, so allow a loose cap).
        assert all(r["sa_relative_error"] <= 0.5 for r in sim_rows)
