"""FaultPlan: deterministic matching, scoping, and validation."""

import numpy as np
import pytest

from repro.faults import (
    KNOWN_KINDS,
    KNOWN_SITES,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    fault_scope,
    fire,
)


class TestFaultSpec:
    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("no.such.site", "crash")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("parallel.shard", "meteor")

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="at must be"):
            FaultSpec("parallel.shard", "crash", at=-1)
        with pytest.raises(ValueError, match="times must be"):
            FaultSpec("parallel.shard", "crash", times=0)
        with pytest.raises(ValueError, match="delay_s must be"):
            FaultSpec("parallel.shard", "slow", delay_s=-0.1)

    def test_matches_window(self):
        spec = FaultSpec("parallel.shard", "crash", at=2, times=3)
        assert [spec.matches(i) for i in range(7)] == [
            False, False, True, True, True, False, False,
        ]

    def test_every_known_site_and_kind_constructs(self):
        for site in KNOWN_SITES:
            for kind in KNOWN_KINDS:
                FaultSpec(site, kind)


class TestFaultPlan:
    def test_arming_counts_per_site(self):
        plan = FaultPlan([FaultSpec("parallel.shard", "crash", at=1)])
        assert plan.arm("parallel.shard") is None
        assert plan.arm("store.load") is None  # independent counter
        fired = plan.arm("parallel.shard")
        assert fired is not None and fired.kind == "crash"
        assert plan.armings("parallel.shard") == 2
        assert plan.armings("store.load") == 1
        assert plan.fired == [
            {"site": "parallel.shard", "kind": "crash", "index": 1}
        ]

    def test_first_matching_spec_wins(self):
        plan = FaultPlan(
            [
                FaultSpec("store.load", "corrupt", at=0, times=5),
                FaultSpec("store.load", "error", at=0, times=5),
            ]
        )
        assert plan.arm("store.load").kind == "corrupt"

    def test_arm_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan().arm("nope")

    def test_rejects_non_spec(self):
        with pytest.raises(TypeError, match="FaultSpec"):
            FaultPlan([("parallel.shard", "crash")])

    def test_rng_for_is_deterministic_per_site(self):
        a = FaultPlan(seed=7).rng_for("store.load")
        b = FaultPlan(seed=7).rng_for("store.load")
        other = FaultPlan(seed=7).rng_for("parallel.shard")
        draw = lambda rng: rng.integers(0, 2**31, size=4).tolist()  # noqa: E731
        assert draw(a) == draw(b)
        assert draw(a) != draw(other)

    def test_same_plan_same_code_path_fires_identically(self):
        def run():
            plan = FaultPlan(
                [FaultSpec("engine.top_up", "error", at=2, times=2)], seed=3
            )
            with fault_scope(plan):
                for _ in range(6):
                    fire("engine.top_up")
            return plan.fired

        assert run() == run()


class TestScoping:
    def test_no_active_plan_fire_is_noop(self):
        assert active_plan() is None
        assert fire("parallel.shard") is None

    def test_fault_scope_installs_and_restores(self):
        plan = FaultPlan([FaultSpec("parallel.shard", "crash")])
        with fault_scope(plan):
            assert active_plan() is plan
            assert fire("parallel.shard").kind == "crash"
        assert active_plan() is None

    def test_scopes_nest(self):
        outer = FaultPlan()
        inner = FaultPlan()
        with fault_scope(outer):
            with fault_scope(inner):
                assert active_plan() is inner
            assert active_plan() is outer


class TestInjectedFault:
    def test_is_not_a_repro_error(self):
        from repro.errors import ReproError

        exc = InjectedFault("parallel.shard", "crash")
        assert not isinstance(exc, ReproError)
        assert exc.site == "parallel.shard" and exc.kind == "crash"
        assert "parallel.shard" in str(exc)
