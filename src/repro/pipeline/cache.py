"""Content-addressed stage cache and input fingerprints.

The pipeline is *resumable*: a stage whose inputs are byte-identical to a
previous run's loads that run's outputs instead of recomputing.  The
discipline mirrors :class:`~repro.store.PoolStore`:

* identity is content, never wall clock — a stage's **key** is a plain
  JSON dict of its knobs plus the fingerprints of everything it reads
  (graph fingerprint, action-log fingerprint, episode-corpus
  fingerprint), and its digest (16-hex SHA-256 of the canonical JSON)
  names the cache directory;
* installs are atomic — outputs are staged into a hidden sibling
  directory and ``os.replace``\\ d into place, so a crashed writer leaves
  no half-entry a later run could trust;
* loads validate — the stored key must equal the requested key and every
  array's checksum must match its manifest entry, else the entry is
  treated as a miss (and overwritten by the recompute).

Fingerprints hash canonical *content*: :func:`fingerprint_log` the
canonical event stream (``repr`` of time/user/item so ``1`` and ``"1"``
differ), :func:`fingerprint_episodes` the stacked activation-time bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import zlib
from pathlib import Path
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro.errors import PipelineError
from repro.learning.action_log import ActionLog
from repro.pipeline.config import canonical_json, digest_of

__all__ = ["StageCache", "fingerprint_log", "fingerprint_episodes"]

PathLike = Union[str, os.PathLike]

_META_FILE = "meta.json"


def fingerprint_log(log: ActionLog) -> str:
    """16-hex-char content fingerprint of an action log's canonical events."""
    digest = hashlib.sha256()
    for event in log.canonical_events():
        line = f"{event.action}\t{event.time!r}\t{event.user!r}\t{event.item!r}\n"
        digest.update(line.encode("utf-8"))
    return digest.hexdigest()[:16]


def fingerprint_episodes(episodes: Sequence[np.ndarray]) -> str:
    """16-hex-char content fingerprint of an episode corpus."""
    digest = hashlib.sha256()
    digest.update(f"episodes:{len(episodes)}\n".encode("ascii"))
    for episode in episodes:
        arr = np.ascontiguousarray(episode, dtype=np.int64)
        digest.update(f"{arr.shape}\n".encode("ascii"))
        digest.update(arr.tobytes())
    return digest.hexdigest()[:16]


class StageCache:
    """A directory of content-addressed stage outputs.

    Entries live at ``root/<digest>/`` with one ``.npy`` file per output
    array and a ``meta.json`` recording the full key (for validation),
    per-array CRC-32 checksums, and the stage's JSON-serialisable
    ``extra`` diagnostics (so a cache hit can replay the original run's
    convergence record into the debug DB).
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise PipelineError(f"unusable cache root {self.root}: {exc}") from exc

    @staticmethod
    def digest(key: dict[str, Any]) -> str:
        """The content address of a stage key (16 hex chars)."""
        return digest_of(key)

    def entry_dir(self, key: dict[str, Any]) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.root / self.digest(key)

    # ------------------------------------------------------------------
    # Load (validating; miss on any mismatch)
    # ------------------------------------------------------------------
    def load(
        self, key: dict[str, Any]
    ) -> Optional[tuple[dict[str, np.ndarray], dict[str, Any]]]:
        """The entry's ``(arrays, extra)`` if present and valid, else None.

        Validation failures (tampered meta, stale key collision, corrupt
        array bytes) are treated as misses, never errors — the pipeline
        recomputes and overwrites, the PoolStore forgiving-load policy.
        """
        entry = self.entry_dir(key)
        meta_path = entry / _META_FILE
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if meta.get("key") != json.loads(canonical_json(key)):
            return None
        arrays: dict[str, np.ndarray] = {}
        columns = meta.get("columns")
        if not isinstance(columns, dict):
            return None
        for name, column in columns.items():
            try:
                arr = np.load(entry / f"{name}.npy", allow_pickle=False)
            except (OSError, ValueError):
                return None
            if zlib.crc32(np.ascontiguousarray(arr).tobytes()) != column.get(
                "crc32"
            ) or list(arr.shape) != column.get("shape"):
                return None
            arrays[name] = arr
        return arrays, meta.get("extra", {})

    # ------------------------------------------------------------------
    # Save (stage → atomic rename)
    # ------------------------------------------------------------------
    def save(
        self,
        key: dict[str, Any],
        arrays: dict[str, np.ndarray],
        extra: dict[str, Any],
    ) -> Path:
        """Install the entry for ``key``; replaces any existing entry."""
        digest = self.digest(key)
        final = self.root / digest
        staging = self.root / f".staging-{digest}-{os.getpid()}"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        try:
            columns: dict[str, Any] = {}
            for name, arr in arrays.items():
                arr = np.ascontiguousarray(arr)
                np.save(staging / f"{name}.npy", arr, allow_pickle=False)
                columns[name] = {
                    "crc32": zlib.crc32(arr.tobytes()),
                    "shape": list(arr.shape),
                }
            meta = {
                "key": json.loads(canonical_json(key)),
                "columns": columns,
                "extra": extra,
            }
            (staging / _META_FILE).write_text(
                json.dumps(meta, sort_keys=True, indent=2), encoding="utf-8"
            )
            if final.exists():
                shutil.rmtree(final)
            os.replace(staging, final)
        except OSError as exc:
            shutil.rmtree(staging, ignore_errors=True)
            raise PipelineError(
                f"cannot install cache entry {final}: {exc}"
            ) from exc
        return final
