"""Learning model parameters from user action logs (paper §7.2).

* :class:`~repro.learning.action_log.ActionLog` — timestamped
  ``(user, item, action, time)`` events with the two signal types the
  paper extracts from Flixster ("want to see"/"not interested") and
  Douban (wish lists): *inform* events and *rate* (adoption) events;
* :func:`~repro.learning.estimator.learn_gap_pair` — the counting
  estimator of §7.2 with 95% confidence intervals;
* :mod:`~repro.learning.synthetic_logs` — a generator producing logs from
  *ground-truth* GAPs, letting tests validate estimator recovery (which
  the paper's proprietary data never could);
* :func:`~repro.learning.influence_probs.learn_influence_probabilities` —
  the static Bernoulli edge-probability learner of Goyal et al. [12] used
  to weight the graphs;
* :func:`~repro.learning.em_cascades.em_learn_probabilities` — the EM
  credit-assignment estimator (Saito et al.) over cascade episodes, the
  other standard edge-probability learner of the IM literature.
"""

from repro.learning.action_log import ActionEvent, ActionLog, INFORM, RATE
from repro.learning.em_cascades import (
    EMResult,
    em_learn_probabilities,
    generate_ic_episodes,
    simulate_ic_with_times,
)
from repro.learning.estimator import LearnedGap, learn_gap_pair
from repro.learning.log_io import (
    load_action_log,
    load_episodes,
    save_action_log,
    save_episodes,
)
from repro.learning.influence_probs import learn_influence_probabilities
from repro.learning.synthetic_logs import generate_synthetic_log

__all__ = [
    "ActionEvent",
    "ActionLog",
    "INFORM",
    "RATE",
    "LearnedGap",
    "learn_gap_pair",
    "generate_synthetic_log",
    "learn_influence_probabilities",
    "EMResult",
    "em_learn_probabilities",
    "save_action_log",
    "load_action_log",
    "save_episodes",
    "load_episodes",
    "generate_ic_episodes",
    "simulate_ic_with_times",
]
