"""Documentation health checks: the docs stay consistent with the code."""

import ast
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent
DOCS = sorted((ROOT / "docs").glob("*.md")) + [
    ROOT / "README.md", ROOT / "DESIGN.md", ROOT / "EXPERIMENTS.md",
]

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_MODULE_REF = re.compile(r"`(repro(?:\.[a-z_]+)+)`")


def test_docs_exist():
    names = {path.name for path in DOCS}
    assert {"model.md", "algorithms.md", "api.md", "README.md"} <= names


@pytest.mark.parametrize("path", DOCS, ids=lambda p: p.name)
def test_python_fences_are_valid_syntax(path):
    """Every ```python fence in the docs must at least parse."""
    text = path.read_text(encoding="utf-8")
    for index, block in enumerate(_FENCE.findall(text)):
        try:
            ast.parse(block)
        except SyntaxError as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"{path.name} python block #{index}: {exc}")


def test_api_doc_imports_resolve():
    """Every import statement in docs/api.md must execute."""
    text = (ROOT / "docs" / "api.md").read_text(encoding="utf-8")
    for block in _FENCE.findall(text):
        for node in ast.walk(ast.parse(block)):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                statement = ast.get_source_segment(block, node)
                exec(statement, {})  # noqa: S102 - doc verification


@pytest.mark.parametrize("path", DOCS, ids=lambda p: p.name)
def test_referenced_modules_importable(path):
    """Backticked dotted `repro.*` module references must import."""
    import importlib

    text = path.read_text(encoding="utf-8")
    for reference in set(_MODULE_REF.findall(text)):
        # Strip trailing attribute-looking segments until a module imports.
        parts = reference.split(".")
        for depth in range(len(parts), 1, -1):
            try:
                importlib.import_module(".".join(parts[:depth]))
                break
            except ModuleNotFoundError:
                continue
        else:  # pragma: no cover - failure reporting
            pytest.fail(f"{path.name}: unimportable reference {reference}")
