"""Properties of the learning layer the pipeline leans on.

1. ``learn_gap_pair`` recovers the generating GAP: on a synthetic NLA
   log drawn from a known quadruple, every fitted parameter lands within
   a few CI halfwidths of truth (``contains_truth`` with slack — the CI
   machinery itself is what's under test, not luck).
2. The Saito EM's observed-data log-likelihood trace is monotone
   non-decreasing — the textbook EM guarantee; a violation means the
   E-step credit or the M-step update is wrong.

Both scale with the nightly ``ci-deep`` profile (10x examples).
"""

import hypothesis.strategies as st
from hypothesis import given

from tests.properties._profiles import ci_settings

from repro.graph import star_digraph
from repro.learning import generate_synthetic_log, learn_gap_pair
from repro.learning.em_cascades import (
    em_learn_probabilities,
    generate_ic_episodes,
)
from repro.models import GAP

#: probabilities kept away from {0, 1}: boundary parameters have
#: degenerate CIs (halfwidth -> 0 at p in {0,1} with moderate samples).
_PROB = st.floats(min_value=0.25, max_value=0.85, allow_nan=False)


@st.composite
def gaps(draw) -> GAP:
    return GAP(
        q_a=draw(_PROB),
        q_a_given_b=draw(_PROB),
        q_b=draw(_PROB),
        q_b_given_a=draw(_PROB),
    )


@ci_settings(10)
@given(truth=gaps(), seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_learn_gap_pair_recovers_truth(truth, seed):
    log = generate_synthetic_log(
        [("a", "b", truth)], num_users=1200, rng=seed
    )
    learned = learn_gap_pair(log, "a", "b")
    assert learned.contains_truth(truth, slack=4.0), (
        truth,
        learned.gap,
        learned.halfwidths,
    )


@ci_settings(10)
@given(
    leaves=st.integers(min_value=4, max_value=12),
    probability=st.floats(min_value=0.1, max_value=0.9, allow_nan=False),
    episodes=st.integers(min_value=10, max_value=60),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_em_log_likelihood_monotone(leaves, probability, episodes, seed):
    graph = star_digraph(leaves, probability=probability)
    corpus = generate_ic_episodes(graph, episodes, rng=seed)
    result = em_learn_probabilities(graph, corpus, max_iterations=20)
    trace = result.log_likelihoods
    assert len(trace) == result.iterations + 1
    assert all(
        after >= before - 1e-9 for before, after in zip(trace, trace[1:])
    )
