"""Benchmark: Table 3 — improvement over baselines, random opposite seeds.

Shape check (paper): with random opposite seeds Copying is very weak
(copying uninfluential nodes), so the improvement over Copying is large.
"""

from repro.experiments import table3_improvement_random


def bench_table3_improvement_random(benchmark, bench_scale, save_table):
    result = benchmark.pedantic(
        lambda: table3_improvement_random(bench_scale), rounds=1, iterations=1
    )
    save_table(result, "table3_improvement_random")
    sim_rows = [r for r in result.rows if r["problem"] == "SelfInfMax"]
    assert all(r["impr_vs_copying_pct"] > 0.0 for r in sim_rows)
