"""Influence blocking under mutual competition (appendix B.4 regime).

A competitor's product A is already seeded at the network's hubs; we pick
B-seeds to *suppress* A's spread — the flip side of CompInfMax that mutual
competition (Q-) enables: cross-monotonicity reverses, so every B-seed can
only reduce sigma_A (Theorem 3).  The example compares the CELF greedy
blocker against blocking from random and high-degree seed sets.

Run:  python examples/competitive_blocking.py
"""

from repro import BlockingQuery, ComICSession, GAP
from repro.algorithms import (
    estimate_suppression,
    high_degree_seeds,
    random_seeds,
)
from repro.graph import power_law_digraph, weighted_cascade_probabilities


def main() -> None:
    graph = weighted_cascade_probabilities(power_law_digraph(400, rng=33))
    # Two strongly competing items: adopting one nearly shuts out the other.
    gaps = GAP(q_a=0.8, q_a_given_b=0.1, q_b=0.8, q_b_given_a=0.1)
    print(f"network: {graph.num_nodes} nodes, {graph.num_edges} edges")
    print(f"mutually competitive: {gaps.is_mutually_competitive}")

    seeds_a = high_degree_seeds(graph, 3)
    baseline = estimate_suppression(graph, gaps, seeds_a, [], runs=400, rng=1)
    print(f"A seeded at hubs {seeds_a}; suppression with no B-seeds: "
          f"{baseline.mean:.2f} (must be 0)")

    k = 4
    # Restrict greedy candidates to the 40 highest-degree nodes: blocking
    # from the periphery is hopeless and this keeps the demo quick.
    candidates = high_degree_seeds(graph, 40)
    session = ComICSession(graph, gaps, rng=2)
    blocked = session.run(BlockingQuery(
        seeds_a=tuple(seeds_a), k=k, runs=120, candidates=tuple(candidates),
    ))
    blockers = blocked.seeds
    print(f"CELF blocker estimate during selection: {blocked.estimate:.1f}")

    contenders = {
        "greedy blocker": blockers,
        "high-degree": high_degree_seeds(graph, k, exclude=seeds_a),
        "random": random_seeds(graph, k, rng=3),
    }
    for name, seeds_b in contenders.items():
        result = estimate_suppression(
            graph, gaps, seeds_a, seeds_b, runs=400, rng=4
        )
        print(f"suppression({name:>15}) = {result.mean:6.1f} ± {result.stderr:.1f}")


if __name__ == "__main__":
    main()
