"""`PipelineConfig`: the frozen, JSON-round-trippable pipeline recipe.

One config fixes everything the pipeline may do — which edge-probability
backend fits stage 1 (`"em"` or `"goyal"`) and its knobs, which item pair
stage 2 estimates, which queries stage 3 answers, the engine config those
queries run under, and the master ``seed`` every stage derives its random
stream from.  Like :class:`~repro.api.config.EngineConfig` it round-trips
losslessly through JSON (``from_json(to_json(c)) == c``) and rejects
unknown fields, so configs can be logged, shipped to the daemon
(``POST /pipeline/<graph>``), and replayed byte-identically.

:meth:`PipelineConfig.digest` is the content address the stage cache and
the debug DB key runs by: the SHA-256 of the canonical (sorted-keys,
no-whitespace) JSON, truncated to 16 hex chars — the same discipline as
:meth:`repro.store.PoolKey.digest`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Mapping, Optional, Union

from repro.api.config import EngineConfig
from repro.api.registry import query_from_dict
from repro.errors import PipelineError

__all__ = ["PipelineConfig", "EDGE_BACKENDS", "canonical_json", "digest_of"]

#: stage-1 edge-probability learners the pipeline can run.
EDGE_BACKENDS = ("em", "goyal")

ItemId = Union[int, str]


def canonical_json(payload: Any) -> str:
    """The canonical JSON text content addresses are computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def digest_of(payload: Any) -> str:
    """16-hex-char SHA-256 of ``payload``'s canonical JSON (PoolKey style)."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class PipelineConfig:
    """Everything one pipeline run is allowed to depend on.

    ``item_a`` / ``item_b`` name the item pair stage 2 estimates (they
    must appear in the action log; ``int`` or ``str`` so the config stays
    JSON-exact).  ``edge_backend`` selects the stage-1 learner: ``"em"``
    (Saito EM over cascade episodes, the ``em_*`` knobs) or ``"goyal"``
    (Goyal et al. counting over the action log, the ``goyal_*`` knobs).
    ``queries`` are the frozen query objects stage 3 answers against the
    fitted network, executed in order under ``engine``; ``seed`` is the
    master seed every stage derives its child stream from.
    """

    item_a: ItemId = "a"
    item_b: ItemId = "b"
    edge_backend: str = "em"
    em_max_iterations: int = 100
    em_tolerance: float = 1e-6
    em_initial: Optional[float] = None
    goyal_window: Optional[float] = None
    goyal_smoothing: float = 0.0
    queries: tuple = ()
    engine: EngineConfig = field(default_factory=EngineConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.edge_backend not in EDGE_BACKENDS:
            raise PipelineError(
                f"unknown edge_backend {self.edge_backend!r}; "
                f"expected one of {EDGE_BACKENDS}"
            )
        for name in ("item_a", "item_b"):
            value = getattr(self, name)
            if not isinstance(value, (int, str)) or isinstance(value, bool):
                raise PipelineError(
                    f"{name} must be an int or str (JSON-exact), got {value!r}"
                )
        if self.item_a == self.item_b:
            raise PipelineError(
                f"item_a and item_b must differ, both are {self.item_a!r}"
            )
        if self.em_max_iterations < 1:
            raise PipelineError(
                f"em_max_iterations must be >= 1, got {self.em_max_iterations}"
            )
        if self.em_tolerance < 0:
            raise PipelineError(
                f"em_tolerance must be non-negative, got {self.em_tolerance}"
            )
        if self.em_initial is not None and not 0.0 < self.em_initial < 1.0:
            raise PipelineError(
                f"em_initial must lie in (0, 1), got {self.em_initial}"
            )
        if self.goyal_window is not None and not self.goyal_window > 0:
            raise PipelineError(
                f"goyal_window must be > 0 (or None), got {self.goyal_window}"
            )
        if self.goyal_smoothing < 0:
            raise PipelineError(
                f"goyal_smoothing must be non-negative, got {self.goyal_smoothing}"
            )
        if not isinstance(self.queries, tuple):
            object.__setattr__(self, "queries", tuple(self.queries))
        for index, query in enumerate(self.queries):
            if not hasattr(query, "to_dict") or not getattr(
                query, "objective", ""
            ):
                raise PipelineError(
                    f"queries[{index}] is not a query object "
                    f"(got {type(query).__name__}); build one from "
                    "repro.api (SelfInfMaxQuery, ...)"
                )
        if not isinstance(self.engine, EngineConfig):
            raise PipelineError(
                f"engine must be an EngineConfig, got {type(self.engine).__name__}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise PipelineError(f"seed must be an int, got {self.seed!r}")

    # ------------------------------------------------------------------
    # JSON round-trip (EngineConfig discipline)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A plain-JSON-types dict; inverse of :meth:`from_dict`."""
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "queries":
                value = [q.to_dict() for q in value]
            elif f.name == "engine":
                value = value.to_dict()
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelineConfig":
        """Rebuild from :meth:`to_dict` output; unknown fields are errors."""
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise PipelineError(
                f"unknown PipelineConfig fields: {sorted(unknown)}"
            )
        known: dict[str, Any] = dict(data)
        if "queries" in known:
            payloads = known["queries"]
            if not isinstance(payloads, (list, tuple)):
                raise PipelineError(
                    "queries must be a list of query payloads "
                    "(query.to_dict output)"
                )
            try:
                known["queries"] = tuple(
                    q if hasattr(q, "to_dict") else query_from_dict(q)
                    for q in payloads
                )
            except (TypeError, ValueError) as exc:
                raise PipelineError(f"bad query payload: {exc}") from exc
        if "engine" in known and not isinstance(known["engine"], EngineConfig):
            known["engine"] = EngineConfig.from_dict(known["engine"])
        return cls(**known)

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "PipelineConfig":
        """Inverse of :meth:`to_json` (``from_json(to_json(c)) == c``)."""
        return cls.from_dict(json.loads(payload))

    def digest(self) -> str:
        """Content address of this config (16 hex chars)."""
        return digest_of(self.to_dict())
