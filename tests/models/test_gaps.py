"""Unit tests for the Global Adoption Probabilities."""

import pytest

from repro.errors import GapError
from repro.models import GAP, Relationship


class TestValidation:
    def test_valid(self):
        gap = GAP(0.1, 0.9, 0.5, 0.7)
        assert gap.q_a == 0.1

    @pytest.mark.parametrize("field", ["q_a", "q_a_given_b", "q_b", "q_b_given_a"])
    def test_out_of_range_rejected(self, field):
        values = {"q_a": 0.5, "q_a_given_b": 0.5, "q_b": 0.5, "q_b_given_a": 0.5}
        values[field] = 1.5
        with pytest.raises(GapError):
            GAP(**values)
        values[field] = -0.5
        with pytest.raises(GapError):
            GAP(**values)

    def test_from_mapping(self):
        gap = GAP.from_mapping(
            {"q_a": 0.1, "q_a_given_b": 0.2, "q_b": 0.3, "q_b_given_a": 0.4}
        )
        assert gap.as_tuple() == (0.1, 0.2, 0.3, 0.4)

    def test_from_mapping_missing_key(self):
        with pytest.raises(GapError, match="missing"):
            GAP.from_mapping({"q_a": 0.1})


class TestRelationships:
    def test_mutual_complementarity(self):
        gap = GAP(0.1, 0.9, 0.2, 0.8)
        assert gap.is_mutually_complementary
        assert not gap.is_mutually_competitive
        assert gap.relationship_of_a_toward_b() is Relationship.COMPLEMENTS
        assert gap.relationship_of_b_toward_a() is Relationship.COMPLEMENTS

    def test_mutual_competition(self):
        gap = GAP(0.9, 0.1, 0.8, 0.2)
        assert gap.is_mutually_competitive
        assert gap.relationship_of_a_toward_b() is Relationship.COMPETES

    def test_indifference_is_both(self):
        gap = GAP.independent(0.5, 0.5)
        assert gap.is_mutually_complementary
        assert gap.is_mutually_competitive
        assert gap.a_indifferent_to_b
        assert gap.b_indifferent_to_a
        assert gap.relationship_of_a_toward_b() is Relationship.INDIFFERENT

    def test_one_way_complementarity(self):
        gap = GAP(0.3, 0.8, 0.5, 0.5)
        assert gap.is_one_way_complementarity_for_a
        assert not GAP(0.3, 0.8, 0.5, 0.9).is_one_way_complementarity_for_a

    def test_rr_cim_regime(self):
        assert GAP(0.1, 0.9, 0.5, 1.0).is_rr_cim_regime
        assert not GAP(0.1, 0.9, 0.5, 0.9).is_rr_cim_regime
        assert not GAP(0.9, 0.1, 0.5, 1.0).is_rr_cim_regime


class TestReconsideration:
    def test_rho_matches_paper_formula(self):
        gap = GAP(q_a=0.2, q_a_given_b=0.9, q_b=0.5, q_b_given_a=0.5)
        # q_{A|B} = q_{A|∅} + (1 - q_{A|∅}) rho_A  (paper §3)
        assert gap.q_a + (1 - gap.q_a) * gap.rho_a == pytest.approx(gap.q_a_given_b)

    def test_rho_zero_under_competition(self):
        gap = GAP(q_a=0.9, q_a_given_b=0.2, q_b=0.5, q_b_given_a=0.5)
        assert gap.rho_a == 0.0

    def test_rho_defined_at_q_one(self):
        gap = GAP(q_a=1.0, q_a_given_b=1.0, q_b=0.5, q_b_given_a=0.5)
        assert gap.rho_a == 0.0

    def test_rho_b_symmetric(self):
        gap = GAP(q_a=0.5, q_a_given_b=0.5, q_b=0.2, q_b_given_a=0.6)
        assert gap.rho_b == pytest.approx((0.6 - 0.2) / 0.8)


class TestModifiers:
    def test_sandwich_bounds_selfinfmax(self):
        gap = GAP(0.3, 0.8, 0.5, 0.9)
        nu = gap.with_b_indifferent_high()
        mu = gap.with_b_indifferent_low()
        assert nu.q_b == nu.q_b_given_a == 0.9
        assert mu.q_b == mu.q_b_given_a == 0.5
        assert nu.b_indifferent_to_a and mu.b_indifferent_to_a

    def test_sandwich_bound_compinfmax(self):
        gap = GAP(0.3, 0.8, 0.5, 0.9)
        nu = gap.with_q_b_given_a_one()
        assert nu.q_b_given_a == 1.0
        assert nu.q_b == 0.5

    def test_swapped(self):
        gap = GAP(0.1, 0.2, 0.3, 0.4)
        assert gap.swapped().as_tuple() == (0.3, 0.4, 0.1, 0.2)
        assert gap.swapped().swapped() == gap


class TestSpecialCases:
    def test_classic_ic(self):
        gap = GAP.classic_ic()
        assert gap.q_a == 1.0
        assert gap.q_b == gap.q_b_given_a == 0.0

    def test_pure_competition(self):
        gap = GAP.pure_competition()
        assert gap.is_mutually_competitive
        assert gap.q_a == gap.q_b == 1.0
        assert gap.q_a_given_b == gap.q_b_given_a == 0.0
