"""Micro-benchmarks of the library's hot kernels.

Not tied to one paper artifact; these quantify the building blocks that
every experiment above is made of (and guard against performance
regressions)."""

import numpy as np

from repro.algorithms import high_degree_seeds
from repro.datasets import load_dataset
from repro.models import GAP, simulate, simulate_ic
from repro.models.sources import CoinSource, WorldSource
from repro.rng import make_rng
from repro.rrset import (
    RRCimGenerator,
    RRICGenerator,
    RRSimGenerator,
    RRSimPlusGenerator,
    greedy_max_coverage,
    greedy_max_coverage_legacy,
)

GAPS_SIM = GAP(0.3, 0.8, 0.5, 0.5)
GAPS_CIM = GAP(0.1, 0.9, 0.5, 1.0)


def _graph(bench_scale):
    return load_dataset("flixster", scale=bench_scale.scale, rng=3)


def bench_comic_simulation(benchmark, bench_scale):
    graph = _graph(bench_scale)
    seeds = high_degree_seeds(graph, 5)
    gen = make_rng(0)
    outcome = benchmark(
        lambda: simulate(graph, GAPS_SIM, seeds, seeds[:2], source=CoinSource(gen))
    )
    assert outcome.num_a_adopted >= 1


def bench_ic_simulation_vectorized(benchmark, bench_scale):
    graph = _graph(bench_scale)
    seeds = high_degree_seeds(graph, 5)
    gen = make_rng(0)
    active = benchmark(lambda: simulate_ic(graph, seeds, rng=gen))
    assert active.sum() >= len(seeds)


def bench_rr_ic_generation(benchmark, bench_scale):
    graph = _graph(bench_scale)
    generator = RRICGenerator(graph)
    gen = make_rng(1)
    benchmark(lambda: generator.generate(rng=gen))


def bench_rr_sim_generation(benchmark, bench_scale):
    graph = _graph(bench_scale)
    generator = RRSimGenerator(graph, GAPS_SIM, high_degree_seeds(graph, 10))
    gen = make_rng(1)
    benchmark(lambda: generator.generate(rng=gen))


def bench_rr_sim_plus_generation(benchmark, bench_scale):
    graph = _graph(bench_scale)
    generator = RRSimPlusGenerator(graph, GAPS_SIM, high_degree_seeds(graph, 10))
    gen = make_rng(1)
    benchmark(lambda: generator.generate(rng=gen))


def bench_rr_cim_generation(benchmark, bench_scale):
    graph = _graph(bench_scale)
    generator = RRCimGenerator(graph, GAPS_CIM, high_degree_seeds(graph, 10))
    gen = make_rng(1)
    benchmark(lambda: generator.generate(rng=gen))


#: Batch size for the ``generate_batch`` kernels; per-RR-set cost is the
#: measured time divided by this.
BATCH = 512


def bench_rr_ic_generation_batched(benchmark, bench_scale):
    graph = _graph(bench_scale)
    generator = RRICGenerator(graph)
    gen = make_rng(1)
    pool = benchmark(lambda: generator.generate_batch(BATCH, rng=gen))
    assert len(pool) == BATCH


def bench_rr_sim_generation_batched(benchmark, bench_scale):
    graph = _graph(bench_scale)
    generator = RRSimGenerator(graph, GAPS_SIM, high_degree_seeds(graph, 10))
    gen = make_rng(1)
    pool = benchmark(lambda: generator.generate_batch(BATCH, rng=gen))
    assert len(pool) == BATCH


def bench_rr_sim_plus_generation_batched(benchmark, bench_scale):
    graph = _graph(bench_scale)
    generator = RRSimPlusGenerator(graph, GAPS_SIM, high_degree_seeds(graph, 10))
    gen = make_rng(1)
    pool = benchmark(lambda: generator.generate_batch(BATCH, rng=gen))
    assert len(pool) == BATCH


def bench_rr_cim_generation_batched(benchmark, bench_scale):
    graph = _graph(bench_scale)
    generator = RRCimGenerator(graph, GAPS_CIM, high_degree_seeds(graph, 10))
    gen = make_rng(1)
    pool = benchmark(lambda: generator.generate_batch(BATCH, rng=gen))
    assert len(pool) == BATCH


def bench_rr_lt_generation_batched(benchmark, bench_scale):
    from repro.models.lt import normalize_lt_weights
    from repro.rrset import RRLTGenerator

    graph = normalize_lt_weights(_graph(bench_scale))
    generator = RRLTGenerator(graph)
    gen = make_rng(1)
    pool = benchmark(lambda: generator.generate_batch(BATCH, rng=gen))
    assert len(pool) == BATCH


def bench_greedy_max_coverage(benchmark, bench_scale):
    graph = _graph(bench_scale)
    generator = RRICGenerator(graph)
    pool = generator.generate_batch(2000, rng=7)
    seeds, covered, _ = benchmark(
        lambda: greedy_max_coverage(pool, graph.num_nodes, 10)
    )
    assert covered > 0


def bench_greedy_max_coverage_legacy(benchmark, bench_scale):
    graph = _graph(bench_scale)
    generator = RRICGenerator(graph)
    rr_sets = generator.generate_batch(2000, rng=7).to_list()
    seeds, covered, _ = benchmark(
        lambda: greedy_max_coverage_legacy(rr_sets, graph.num_nodes, 10)
    )
    assert covered > 0


def bench_world_source_alpha_lookup(benchmark):
    source = WorldSource(0)
    ids = np.arange(2000)

    def run():
        total = 0.0
        for v in ids:
            total += source.alpha(int(v), 0)
        return total

    benchmark(run)
