"""Equivalence classes of possible worlds (paper §5.1).

Although the threshold variables ``alpha`` make the space of possible
worlds uncountable, the cascade outcome only depends on which of (at most)
three *ranges* each threshold falls into — the ranges delimited by the two
relevant GAPs, half-open on the left as in the paper::

    [0, c0)   [c0, c1)   [c1, 1]      with  {c0, c1} = sorted(q_X|∅, q_X|Y)

Together with edge liveness, tie-break permutations and dual-seed coins,
this yields a *finite* number of equivalence classes, each with a closed-
form probability mass (the product of range widths, edge probabilities and
coin masses).  This module enumerates the classes and evaluates the exact
spread as the probability-weighted sum over one representative per class —
an independent implementation of Eq. (2) of the paper, used to cross-check
the decision-tree oracle.

Tie-breaking: under mutual complementarity (Q+) the permutation variables
are immaterial (Lemma 2), so a fixed representative permutation suffices
and the enumeration stays tractable; outside Q+ the function refuses
(:class:`~repro.errors.RegimeError`) rather than silently ignoring
permutations that could matter.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator

import numpy as np

from repro.errors import ConvergenceError, RegimeError
from repro.graph.digraph import DiGraph
from repro.models.comic import simulate
from repro.models.gaps import GAP
from repro.models.possible_world import FrozenWorldSource, PossibleWorld


def threshold_ranges(q_uncond: float, q_cond: float) -> list[tuple[float, float]]:
    """The positive-width threshold ranges ``[(low, width), ...]``.

    Ranges are ``[0, c0), [c0, c1), [c1, 1]`` with the two cuts sorted;
    zero-width ranges are dropped (they carry no probability mass).
    """
    c0, c1 = sorted((q_uncond, q_cond))
    bounds = [0.0, c0, c1, 1.0]
    ranges = []
    for low, high in zip(bounds, bounds[1:]):
        if high > low:
            ranges.append((low, high - low))
    return ranges


def _representative(low: float, width: float) -> float:
    """A point strictly inside the half-open range ``[low, low + width)``."""
    return low + width / 2.0


def enumerate_equivalence_classes(
    graph: DiGraph,
    gaps: GAP,
    *,
    dual_seeded_nodes: Iterable[int] = (),
    max_classes: int = 2_000_000,
) -> Iterator[tuple[float, PossibleWorld]]:
    """Yield ``(probability, representative_world)`` per equivalence class.

    ``dual_seeded_nodes`` lists nodes whose tau coin matters (nodes seeded
    with both items); only those coins are enumerated.  Requires Q+ (see
    module docstring).  Raises :class:`ConvergenceError` when the class
    count would exceed ``max_classes``.
    """
    if not gaps.is_mutually_complementary:
        raise RegimeError(
            "equivalence-class enumeration relies on Lemma 2 (tie-breaking "
            "immaterial), which requires mutual complementarity (Q+); got "
            f"{gaps}"
        )
    n, m = graph.num_nodes, graph.num_edges
    ranges_a = threshold_ranges(gaps.q_a, gaps.q_a_given_b)
    ranges_b = threshold_ranges(gaps.q_b, gaps.q_b_given_a)
    duals = sorted({int(v) for v in dual_seeded_nodes})

    total = (
        len(ranges_a) ** n
        * len(ranges_b) ** n
        * 2 ** m
        * 2 ** len(duals)
    )
    if total > max_classes:
        raise ConvergenceError(
            f"{total} equivalence classes exceed the limit of {max_classes}; "
            "this enumeration is only feasible on tiny instances"
        )

    priority = np.linspace(0.05, 0.95, m) if m else np.empty(0)
    edge_probs = graph.edge_probabilities

    for alpha_a_choice in itertools.product(range(len(ranges_a)), repeat=n):
        alpha_a = np.array(
            [_representative(*ranges_a[i]) for i in alpha_a_choice]
        )
        mass_a = float(np.prod([ranges_a[i][1] for i in alpha_a_choice])) if n else 1.0
        for alpha_b_choice in itertools.product(range(len(ranges_b)), repeat=n):
            alpha_b = np.array(
                [_representative(*ranges_b[i]) for i in alpha_b_choice]
            )
            mass_b = float(np.prod([ranges_b[i][1] for i in alpha_b_choice])) if n else 1.0
            for live_bits in itertools.product((True, False), repeat=m):
                live = np.asarray(live_bits, dtype=bool)
                mass_edges = 1.0
                for eid in range(m):
                    p = float(edge_probs[eid])
                    mass_edges *= p if live_bits[eid] else (1.0 - p)
                    if mass_edges == 0.0:
                        break
                if mass_edges == 0.0:
                    continue
                for tau_bits in itertools.product((True, False), repeat=len(duals)):
                    tau = np.ones(n, dtype=bool)
                    for node, bit in zip(duals, tau_bits):
                        tau[node] = bit
                    mass = mass_a * mass_b * mass_edges * 0.5 ** len(duals)
                    if mass == 0.0:
                        continue
                    yield mass, PossibleWorld(
                        live=live,
                        priority=priority,
                        alpha_a=alpha_a,
                        alpha_b=alpha_b,
                        tau_a_first=tau,
                    )


def exact_spread_via_equivalence_classes(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: Iterable[int],
    seeds_b: Iterable[int],
    *,
    max_classes: int = 2_000_000,
) -> tuple[float, float]:
    """Exact ``(sigma_A, sigma_B)`` by summing over equivalence classes.

    Implements Eq. (2): ``sigma_A = sum_W Pr[W] * sigma_A^W``.  Independent
    of (and cross-checked against) the decision-tree oracle in
    :mod:`repro.models.exact`.
    """
    seeds_a = [int(s) for s in seeds_a]
    seeds_b = [int(s) for s in seeds_b]
    duals = set(seeds_a) & set(seeds_b)
    sigma_a = 0.0
    sigma_b = 0.0
    total_mass = 0.0
    for mass, world in enumerate_equivalence_classes(
        graph, gaps, dual_seeded_nodes=duals, max_classes=max_classes
    ):
        outcome = simulate(
            graph, gaps, seeds_a, seeds_b, source=FrozenWorldSource(world)
        )
        sigma_a += mass * outcome.num_a_adopted
        sigma_b += mass * outcome.num_b_adopted
        total_mass += mass
    if abs(total_mass - 1.0) > 1e-9:
        raise ConvergenceError(
            f"equivalence-class masses sum to {total_mass}, expected 1.0"
        )
    return sigma_a, sigma_b
